"""Shared result types for pilot-application scenarios."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class MemoryDemandPoint:
    """Memory demand observed at one point in scenario time."""

    time_s: float
    demand_bytes: int
    provisioned_bytes: int

    @property
    def satisfied(self) -> bool:
        """True when the VM had at least as much memory as it needed."""
        return self.provisioned_bytes >= self.demand_bytes

    @property
    def headroom_bytes(self) -> int:
        return self.provisioned_bytes - self.demand_bytes


@dataclass
class AppReport:
    """What a pilot scenario reports back.

    Attributes:
        name: Scenario identifier.
        scale_up_events / scale_down_events: Elasticity actions taken.
        scale_latencies_s: Latency of each scale action.
        demand_trace: Sampled demand vs provisioned memory.
        details: Scenario-specific extras.
    """

    name: str
    scale_up_events: int = 0
    scale_down_events: int = 0
    scale_latencies_s: list[float] = field(default_factory=list)
    demand_trace: list[MemoryDemandPoint] = field(default_factory=list)
    details: dict[str, float] = field(default_factory=dict)

    @property
    def mean_scale_latency_s(self) -> float:
        if not self.scale_latencies_s:
            return 0.0
        return sum(self.scale_latencies_s) / len(self.scale_latencies_s)

    @property
    def demand_satisfaction(self) -> float:
        """Fraction of sampled points where demand was satisfied."""
        if not self.demand_trace:
            return 1.0
        satisfied = sum(1 for p in self.demand_trace if p.satisfied)
        return satisfied / len(self.demand_trace)

    @property
    def peak_demand_bytes(self) -> int:
        if not self.demand_trace:
            return 0
        return max(p.demand_bytes for p in self.demand_trace)

    @property
    def mean_provisioned_bytes(self) -> float:
        if not self.demand_trace:
            return 0.0
        return (sum(p.provisioned_bytes for p in self.demand_trace)
                / len(self.demand_trace))

    def provisioning_efficiency(self) -> float:
        """Mean provisioned memory relative to static peak provisioning.

        Below 1.0 means elasticity used less memory-time than a
        conventional deployment sized for the peak.
        """
        peak = self.peak_demand_bytes
        if peak == 0:
            return 1.0
        return self.mean_provisioned_bytes / peak
