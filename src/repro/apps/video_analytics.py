"""Pilot 1: real-time video surveillance analytics.

"In serious cases, including terrorist events, 100,000 hours of video or
more may need to be reviewed quickly to find key intelligence.  Video
analytics algorithms are used to cut down this workload, but the
computational requirements are event-driven and so cannot be scheduled
or predicted" (§V).

The scenario models investigations arriving as a Poisson process; each
brings a video corpus whose in-memory working set is proportional to the
footage hours.  The analytics VM scales its memory up when an
investigation opens and back down when it closes, measuring how fast the
platform delivers the capacity (the time-to-insight lever the paper
claims).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.base import AppReport, MemoryDemandPoint
from repro.core.system import DisaggregatedRack
from repro.errors import ConfigurationError
from repro.units import gib

#: Working-set footprint per 1000 hours of footage under review
#: (decoded frame caches, feature indexes).
BYTES_PER_KILOHOUR = gib(2)


@dataclass(frozen=True)
class InvestigationEvent:
    """One investigation: when it opens and how much footage it brings."""

    event_id: str
    arrival_s: float
    video_hours: float

    def __post_init__(self) -> None:
        if self.video_hours <= 0:
            raise ConfigurationError(
                f"{self.event_id}: footage hours must be positive")

    @property
    def memory_demand_bytes(self) -> int:
        """Working set the analytics pipeline needs for this corpus."""
        return int(self.video_hours / 1000.0 * BYTES_PER_KILOHOUR)


def generate_investigations(count: int, rng: np.random.Generator,
                            mean_interarrival_s: float = 3600.0,
                            mean_video_hours: float = 20_000.0
                            ) -> list[InvestigationEvent]:
    """Poisson arrivals with log-normal-ish corpus sizes.

    Corpus sizes are drawn from an exponential around the mean (most
    cases are modest; rare ones reach the 100k-hour regime the paper
    cites), floored at 500 hours.
    """
    if count < 1:
        raise ConfigurationError(f"need >= 1 event, got {count}")
    arrivals = np.cumsum(rng.exponential(mean_interarrival_s, size=count))
    hours = np.maximum(500.0, rng.exponential(mean_video_hours, size=count))
    return [
        InvestigationEvent(f"case-{i}", float(arrivals[i]), float(hours[i]))
        for i in range(count)
    ]


class VideoAnalyticsScenario:
    """Runs investigations against one analytics VM on the rack."""

    def __init__(self, system: DisaggregatedRack, vm_id: str,
                 max_segment_bytes: int = gib(16)) -> None:
        self.system = system
        self.vm_id = vm_id
        self.max_segment_bytes = max_segment_bytes

    def run(self, events: list[InvestigationEvent]) -> AppReport:
        """Process *events* sequentially: scale up for each case, analyze,
        scale back down.  Reports scale latencies and the demand trace."""
        report = AppReport(name="video-analytics")
        hosted = self.system.hosting(self.vm_id)
        baseline = hosted.vm.configured_ram_bytes

        for event in sorted(events, key=lambda e: e.arrival_s):
            demand = event.memory_demand_bytes
            report.demand_trace.append(MemoryDemandPoint(
                event.arrival_s, demand + baseline,
                hosted.vm.configured_ram_bytes))

            segments = []
            remaining = demand
            while remaining > 0:
                chunk = min(remaining, self.max_segment_bytes)
                result = self.system.scale_up(self.vm_id, chunk)
                report.scale_up_events += 1
                report.scale_latencies_s.append(result.total_latency_s)
                segments.append(result.segment)
                remaining -= chunk

            report.demand_trace.append(MemoryDemandPoint(
                event.arrival_s, demand + baseline,
                hosted.vm.configured_ram_bytes))

            # The analysis itself runs here in the prototype; once the
            # case closes, the capacity goes back to the pool.
            for segment in segments:
                self.system.scale_down(self.vm_id, segment.segment_id)
                report.scale_down_events += 1

        report.details["events"] = float(len(events))
        report.details["peak_case_gib"] = max(
            e.memory_demand_bytes for e in events) / gib(1)
        return report
