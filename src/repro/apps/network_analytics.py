"""Pilot 3: network analytics at very high rates (§V).

Two modes, as the paper specifies:

* **Online analysis** — "inspecting every single frame that travels
  across the physical link": a classification accelerator hosted on a
  dACCELBRICK tags frames of interest at line rate (100 GbE).
* **Offline analysis** — "packets that were marked as relevant during
  the online analysis can be studied during a second stage with a more
  exhaustive emphasis": a compute VM sized elastically to the marked
  dataset crunches it; memory hotplug removes the postponement a
  fixed-size node would impose.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.base import AppReport
from repro.core.system import DisaggregatedRack
from repro.errors import ConfigurationError
from repro.hardware.accelerator import Bitstream, ReconfigurationMiddleware
from repro.units import gbps, gib

#: The line the probe taps (standardized 100 GbE, §V).
LINE_RATE_BPS = gbps(100)

#: Average captured frame size on the monitored link.
MEAN_FRAME_BYTES = 850

#: Offline working set per GiB of marked capture (indexes, flow state).
OFFLINE_MEMORY_FACTOR = 1.5

#: Offline crunch throughput per VM, bytes of capture per second.
OFFLINE_SCAN_BPS = 2 * gib(1)


@dataclass(frozen=True)
class OnlineStageResult:
    """Outcome of the line-rate classification stage."""

    frames_inspected: int
    frames_marked: int
    capture_bytes: int
    stage_duration_s: float
    sustained_rate_bps: float
    reconfiguration_s: float

    @property
    def mark_fraction(self) -> float:
        if self.frames_inspected == 0:
            return 0.0
        return self.frames_marked / self.frames_inspected

    @property
    def keeps_line_rate(self) -> bool:
        """True when the accelerator sustained the full line rate."""
        return self.sustained_rate_bps >= LINE_RATE_BPS


class NetworkAnalyticsScenario:
    """Online classification on a dACCELBRICK + elastic offline VM."""

    def __init__(self, system: DisaggregatedRack, vm_id: str,
                 accelerator_throughput_bps: float = 1.2 * LINE_RATE_BPS,
                 mark_probability: float = 0.02) -> None:
        """Create the scenario.

        Args:
            system: The rack (must contain at least one dACCELBRICK).
            vm_id: The offline-analysis VM (already booted).
            accelerator_throughput_bps: Classification throughput of the
                deployed bitstream; must exceed the line rate for the
                online mode to be lossless.
            mark_probability: Fraction of frames tagged as relevant.
        """
        if not system.accelerator_bricks:
            raise ConfigurationError(
                "network analytics needs a dACCELBRICK in the rack")
        if not 0 < mark_probability <= 1:
            raise ConfigurationError("mark probability must be in (0, 1]")
        self.system = system
        self.vm_id = vm_id
        self.accel_brick = system.accelerator_bricks[0]
        self.accelerator_throughput_bps = accelerator_throughput_bps
        self.mark_probability = mark_probability
        self.middleware = ReconfigurationMiddleware(self.accel_brick.slot)

    # -- online stage --------------------------------------------------------------

    def run_online(self, duration_s: float,
                   rng: np.random.Generator) -> OnlineStageResult:
        """Classify *duration_s* worth of 100 GbE traffic.

        Deploys the classification bitstream through the §II middleware
        (upload + PCAP reconfiguration), then streams frames through it.
        """
        if duration_s <= 0:
            raise ConfigurationError("duration must be positive")
        bitstream = Bitstream("flow-classifier", size_bytes=gib(1) // 64,
                              resource_cost=70)
        self.middleware.receive_bitstream(bitstream)
        reconf_s = self.middleware.reconfigure("flow-classifier")
        self.accel_brick.slot.start()

        offered_bytes = int(LINE_RATE_BPS / 8 * duration_s)
        frames = offered_bytes // MEAN_FRAME_BYTES
        marked = int(rng.binomial(frames, self.mark_probability))
        capture_bytes = marked * MEAN_FRAME_BYTES
        sustained = min(self.accelerator_throughput_bps, LINE_RATE_BPS)

        self.accel_brick.slot.stop()
        return OnlineStageResult(
            frames_inspected=int(frames),
            frames_marked=marked,
            capture_bytes=capture_bytes,
            stage_duration_s=duration_s,
            sustained_rate_bps=sustained,
            reconfiguration_s=reconf_s,
        )

    # -- offline stage ----------------------------------------------------------------

    def run_offline(self, online: OnlineStageResult) -> AppReport:
        """Deep-analyze the marked capture on the elastic VM.

        The VM scales up to hold the whole working set (capture plus
        indexes), scans it, then returns the memory.  The report's
        ``details`` include the postponement a fixed-memory node would
        have suffered (processing in chunks that fit local DRAM).
        """
        report = AppReport(name="network-analytics-offline")
        hosted = self.system.hosting(self.vm_id)

        working_set = int(online.capture_bytes * OFFLINE_MEMORY_FACTOR)
        working_set = max(working_set, 1)
        segments = []
        remaining = working_set
        chunk_limit = gib(16)
        while remaining > 0:
            chunk = min(remaining, chunk_limit)
            result = self.system.scale_up(self.vm_id, chunk)
            report.scale_up_events += 1
            report.scale_latencies_s.append(result.total_latency_s)
            segments.append(result.segment)
            remaining -= chunk

        scan_time_s = online.capture_bytes / OFFLINE_SCAN_BPS
        elastic_total_s = sum(report.scale_latencies_s) + scan_time_s

        # Fixed-node counterpart: only local DRAM available; the scan
        # runs in passes, re-reading the capture from storage each pass.
        local_bytes = hosted.vm.initial_ram_bytes
        passes = max(1, -(-working_set // max(local_bytes, 1)))
        storage_reread_s = (passes - 1) * (online.capture_bytes / OFFLINE_SCAN_BPS)
        fixed_total_s = scan_time_s + storage_reread_s * 2.5

        for segment in segments:
            self.system.scale_down(self.vm_id, segment.segment_id)
            report.scale_down_events += 1

        report.details["working_set_gib"] = working_set / gib(1)
        report.details["scan_time_s"] = scan_time_s
        report.details["elastic_total_s"] = elastic_total_s
        report.details["fixed_node_total_s"] = fixed_total_s
        report.details["speedup"] = (fixed_total_s / elastic_total_s
                                     if elastic_total_s > 0 else 1.0)
        return report
