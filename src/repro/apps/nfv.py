"""Pilot 2: NFV edge computing with a collaborative-cryptography key server.

"The load of NFV applications varies according to a daily traffic
pattern, with a very low load at night and peaks during day hours.
Given the sensibility of the information in the Key Server database,
scale-out techniques should be avoided to replicate critical information
and thus, elasticity in the memory usage provided by dRedBox can help to
cope with the traffic peaks" (§V).

The scenario runs a key-server VM through a diurnal day: every sampling
interval it derives the memory the TLS session/key cache needs from the
traffic level and scales the VM up or down to track it — never spawning
a second VM.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.apps.base import AppReport, MemoryDemandPoint
from repro.core.system import DisaggregatedRack
from repro.errors import ConfigurationError
from repro.units import gib

#: Session-cache bytes per unit of traffic (requests/s).
BYTES_PER_RPS = 2 * 1024 * 1024


@dataclass(frozen=True)
class DiurnalTrafficModel:
    """A day-shaped load curve: low at night, peaking mid-day.

    ``load(t) = trough + (peak - trough) * shape(t)`` where shape is a
    raised cosine with its minimum at ``night_hour``.
    """

    peak_rps: float = 4000.0
    trough_rps: float = 400.0
    night_hour: float = 3.0

    def __post_init__(self) -> None:
        if self.trough_rps < 0 or self.peak_rps <= self.trough_rps:
            raise ConfigurationError("need peak_rps > trough_rps >= 0")

    def load_rps(self, hour_of_day: float) -> float:
        """Traffic at *hour_of_day* (0-24, fractional allowed)."""
        phase = 2.0 * math.pi * (hour_of_day - self.night_hour) / 24.0
        shape = 0.5 * (1.0 - math.cos(phase))
        return self.trough_rps + (self.peak_rps - self.trough_rps) * shape

    def demand_bytes(self, hour_of_day: float) -> int:
        """Key/session cache footprint at *hour_of_day*."""
        return int(self.load_rps(hour_of_day) * BYTES_PER_RPS)


class KeyServerScenario:
    """Tracks a diurnal day with memory elasticity only (no scale-out)."""

    def __init__(self, system: DisaggregatedRack, vm_id: str,
                 traffic: DiurnalTrafficModel | None = None,
                 step_bytes: int = gib(1),
                 headroom_fraction: float = 0.15) -> None:
        """Create the scenario.

        Args:
            system: The rack hosting the key-server VM.
            vm_id: The key-server VM (already booted).
            traffic: Load model (defaults to the standard day shape).
            step_bytes: Scaling granularity (one segment per step).
            headroom_fraction: Safety margin provisioned above demand.
        """
        if not 0 <= headroom_fraction < 1:
            raise ConfigurationError("headroom fraction must be in [0, 1)")
        self.system = system
        self.vm_id = vm_id
        self.traffic = traffic or DiurnalTrafficModel()
        self.step_bytes = step_bytes
        self.headroom_fraction = headroom_fraction
        self._segments: list = []

    def run(self, hours: int = 24, samples_per_hour: int = 2,
            rng: np.random.Generator | None = None) -> AppReport:
        """Walk the day, scaling the VM to track demand.

        Optional *rng* adds ±10% load noise per sample.
        """
        report = AppReport(name="nfv-key-server")
        hosted = self.system.hosting(self.vm_id)
        base = hosted.vm.initial_ram_bytes

        total_samples = hours * samples_per_hour
        for step in range(total_samples):
            hour = (step / samples_per_hour) % 24.0
            demand = self.traffic.demand_bytes(hour)
            if rng is not None:
                demand = int(demand * float(rng.uniform(0.9, 1.1)))
            target = base + int(demand * (1.0 + self.headroom_fraction))

            current = hosted.vm.configured_ram_bytes
            if target > current:
                shortfall = target - current
                steps_up = math.ceil(shortfall / self.step_bytes)
                for _ in range(steps_up):
                    result = self.system.scale_up(self.vm_id, self.step_bytes)
                    self._segments.append(result.segment)
                    report.scale_up_events += 1
                    report.scale_latencies_s.append(result.total_latency_s)
            elif current - target >= self.step_bytes and self._segments:
                surplus = current - target
                steps_down = min(surplus // self.step_bytes,
                                 len(self._segments))
                for _ in range(int(steps_down)):
                    segment = self._segments.pop()
                    steps = self.system.scale_down(
                        self.vm_id, segment.segment_id)
                    report.scale_down_events += 1
                    report.scale_latencies_s.append(sum(steps.values()))

            report.demand_trace.append(MemoryDemandPoint(
                time_s=step * 3600.0 / samples_per_hour,
                demand_bytes=base + demand,
                provisioned_bytes=hosted.vm.configured_ram_bytes,
            ))

        report.details["peak_rps"] = self.traffic.peak_rps
        report.details["scale_out_vms_spawned"] = 0.0  # by design
        return report
