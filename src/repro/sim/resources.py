"""Contention primitives built on the DES engine.

Two primitives cover every queueing situation in the library:

* :class:`Resource` — a counted semaphore with a FIFO wait queue.  Used for
  serialized controllers (the SDM-C critical section), switch-port pools and
  memory-controller service slots.
* :class:`Store` — an unbounded FIFO of items with blocking ``get``.  Used
  for request queues between software components.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, Optional

from repro.errors import SimulationError
from repro.sim.engine import Event, Simulator


class Request(Event):
    """A pending claim on a :class:`Resource` slot.

    Yield the request to wait for the slot; pass it back to
    :meth:`Resource.release` when done.
    """

    __slots__ = ("resource",)

    def __init__(self, sim: Simulator, resource: "Resource") -> None:
        super().__init__(sim)
        self.resource = resource


class Resource:
    """A counted resource with *capacity* slots and FIFO granting."""

    def __init__(self, sim: Simulator, capacity: int = 1) -> None:
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._users: set[Request] = set()
        self._queue: Deque[Request] = deque()

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._queue)

    def request(self) -> Request:
        """Claim a slot; the returned event fires when the slot is granted."""
        req = Request(self.sim, self)
        if len(self._users) < self.capacity:
            self._users.add(req)
            req.succeed(req)
        else:
            self._queue.append(req)
        return req

    def release(self, request: Request) -> None:
        """Return a previously granted slot, waking the next waiter."""
        if request not in self._users:
            raise SimulationError("release of a request that does not hold a slot")
        self._users.discard(request)
        while self._queue and len(self._users) < self.capacity:
            nxt = self._queue.popleft()
            self._users.add(nxt)
            nxt.succeed(nxt)

    def cancel(self, request: Request) -> None:
        """Withdraw a queued request that has not been granted yet."""
        try:
            self._queue.remove(request)
        except ValueError:
            raise SimulationError("cannot cancel: request is not queued") from None

    def acquire(self) -> Generator[Event, Any, Request]:
        """Process-style helper: ``req = yield from resource.acquire()``."""
        req = self.request()
        yield req
        return req


class Store:
    """An unbounded FIFO store of items with blocking ``get``.

    ``put`` never blocks (the paper's request queues are unbounded software
    queues); ``get`` returns an event that fires with the next item.
    """

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    @property
    def size(self) -> int:
        """Number of items currently buffered."""
        return len(self._items)

    @property
    def waiting(self) -> int:
        """Number of blocked ``get`` calls."""
        return len(self._getters)

    def put(self, item: Any) -> None:
        """Deposit *item*, waking the oldest blocked getter if any."""
        if self._getters:
            getter = self._getters.popleft()
            getter.succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Event that fires with the next available item (FIFO order)."""
        # Drawn via the simulator so processed get-events recycle
        # through its free-list pool (admission queues churn these).
        event = self.sim.event()
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def peek(self) -> Optional[Any]:
        """The next item without removing it, or ``None`` when empty."""
        return self._items[0] if self._items else None
