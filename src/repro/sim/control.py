"""Execution contexts for control-plane processes on the DES kernel.

Every orchestration operation in the library exists in two forms:

* a **process generator** (``*_process`` methods) that runs on a
  :class:`~repro.sim.engine.Simulator`, acquires the SDM-C reservation
  critical section as a real :class:`~repro.sim.resources.Resource`, and
  charges its latency on the simulated clock — so concurrent requests
  queue and serialize, and queueing delay is observable;
* a **synchronous wrapper** (the historical API) that spins up a private
  one-shot context, runs the process to completion, and returns its
  result.  By construction the private context has no other traffic, so
  the synchronous path is *zero-contention*: the latencies it reports
  are pure service time with no queueing delay.

:class:`ControlContext` bundles what a control-plane process needs — the
simulator, the shared reservation critical section, and a tracer — and
:func:`run_sync` implements the wrapper convention.

A context also hosts **named reservation domains** (:meth:`ControlContext.domain`):
lazily created capacity-1 resources keyed by name.  A sharded SDM
controller (:class:`~repro.orchestration.sharding.ShardedSdmController`)
uses one domain per shard, so reservations in different shards proceed
in parallel while reservations inside one shard still serialize FIFO.
The legacy ``ctx.reservation`` attribute remains the default
(un-sharded) domain.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.errors import SimulationError
from repro.sim.engine import ProcessGenerator, Simulator
from repro.sim.queues import QueueLike
from repro.sim.resources import Request, Resource
from repro.sim.trace import Tracer

#: Trace category under which reservation queueing delay is recorded.
RESERVE_WAIT = "sdm.reserve.wait"


class ControlContext:
    """Shared state of control-plane processes on one simulator.

    Attributes:
        sim: The discrete-event simulator the processes run on.
        reservation: The SDM-C critical section (§IV.C roles b, c):
            capacity-1 by default, so concurrent reserve operations
            serialize in FIFO order with measurable queueing delay.
        tracer: Records timestamped control-plane events.
    """

    def __init__(self, sim: Optional[Simulator] = None,
                 reservation_capacity: int = 1,
                 tracer: Optional[Tracer] = None,
                 queue: QueueLike = None) -> None:
        if sim is not None and queue is not None:
            raise SimulationError(
                "pass either an existing simulator or a queue backend "
                "for a new one, not both")
        self.sim = sim if sim is not None else Simulator(queue=queue)
        self.reservation = Resource(self.sim,
                                    capacity=reservation_capacity)
        self._domains: dict[str, Resource] = {}
        self.tracer = tracer if tracer is not None else Tracer(
            lambda: self.sim.now)

    @property
    def reservation_queue_depth(self) -> int:
        """Requests currently waiting for the default critical section."""
        return self.reservation.queue_length

    @property
    def total_reservation_queue_depth(self) -> int:
        """Waiters across the default domain and every named domain."""
        return (self.reservation.queue_length
                + sum(r.queue_length for r in self._domains.values()))

    def domain(self, name: str, capacity: int = 1) -> Resource:
        """The named reservation domain, lazily created on first use.

        Domains model independently serialized controller shards: each
        is its own capacity-1 (by default) FIFO resource on this
        context's simulator.  The *capacity* argument only applies on
        creation; later calls return the existing resource.
        """
        resource = self._domains.get(name)
        if resource is None:
            resource = Resource(self.sim, capacity=capacity)
            self._domains[name] = resource
        return resource

    def domain_names(self) -> list[str]:
        """Names of every domain created on this context, sorted."""
        return sorted(self._domains)

    def enter_reservation(self, label: str) -> ProcessGenerator:
        """Acquire the critical section, tracing the queueing delay.

        Process-style helper (``grant = yield from
        ctx.enter_reservation(label)``): queues FIFO on the
        reservation, records the wait under ``sdm.reserve.wait`` with
        *label*, and returns the grant the caller must pass to
        ``ctx.reservation.release`` (in a ``finally``).
        """
        enqueued = self.sim.now
        grant: Request = yield from self.reservation.acquire()
        self.tracer.record(RESERVE_WAIT, label, self.sim.now - enqueued)
        return grant

    def enter_domain(self, name: str, label: str) -> ProcessGenerator:
        """Acquire the named domain, tracing the wait like
        :meth:`enter_reservation` (label ``<name>:<label>``)."""
        enqueued = self.sim.now
        grant: Request = yield from self.domain(name).acquire()
        self.tracer.record(RESERVE_WAIT, f"{name}:{label}",
                           self.sim.now - enqueued)
        return grant

    @classmethod
    def ephemeral(cls) -> "ControlContext":
        """A private context for one synchronous (zero-contention) call."""
        return cls()


def run_sync(process_factory: Callable[[ControlContext],
                                       ProcessGenerator]) -> Any:
    """Run one control process to completion on a private context.

    This is the synchronous compatibility wrapper used by the historical
    call-per-request APIs: *process_factory* receives a fresh
    :class:`ControlContext`, the returned generator is run as the only
    process on the private simulator, and its return value is handed
    back.  With no competing traffic the reservation critical section is
    always free, so no queueing delay accrues — the wrapper preserves
    the exact latency accounting of the pre-DES synchronous code.
    """
    ctx = ControlContext.ephemeral()
    completion = ctx.sim.process(process_factory(ctx))
    return ctx.sim.run(until=completion)
