"""Deterministic, named random-number streams.

Every stochastic element of the simulation (workload generation, measurement
noise, jitter on latency components) draws from its own named stream so that

* results are reproducible for a given base seed, and
* adding a new consumer of randomness never perturbs existing streams.

Streams are :class:`numpy.random.Generator` instances seeded from the base
seed combined with a stable (CRC-32) hash of the stream name.
"""

from __future__ import annotations

import zlib

import numpy as np


def stable_stream_seed(base_seed: int, name: str) -> int:
    """Combine *base_seed* with a platform-independent hash of *name*.

    Python's builtin ``hash`` is salted per-interpreter-run, so CRC-32 is
    used instead to keep streams stable across runs and machines.
    """
    return (int(base_seed) & 0xFFFF_FFFF) ^ zlib.crc32(name.encode("utf-8"))


class RngRegistry:
    """Factory and cache of named random streams."""

    def __init__(self, base_seed: int = 2018) -> None:
        self.base_seed = int(base_seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the stream for *name*, creating it on first use.

        Repeated calls with the same name return the *same* generator
        object, so draws continue where they left off.
        """
        if name not in self._streams:
            seed = stable_stream_seed(self.base_seed, name)
            self._streams[name] = np.random.default_rng(seed)
        return self._streams[name]

    def fresh(self, name: str) -> np.random.Generator:
        """Return a brand-new generator for *name*, resetting its state."""
        seed = stable_stream_seed(self.base_seed, name)
        self._streams[name] = np.random.default_rng(seed)
        return self._streams[name]

    def spawn(self, name: str, index: int) -> np.random.Generator:
        """An indexed sub-stream, e.g. one per VM: ``spawn("vm", 7)``."""
        return self.stream(f"{name}[{index}]")

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def __len__(self) -> int:
        return len(self._streams)
