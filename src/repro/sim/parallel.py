"""Conservative time-window parallel simulation over OS processes.

The repo's simulations are deterministic discrete-event programs; this
module lets a model that decomposes into **loosely coupled logical
processes** (LPs) run each LP on its own :class:`~repro.sim.engine.
Simulator` — optionally in its own OS process — while preserving the
exact event order a single-process run would produce.

The synchronization scheme is classic conservative (Chandy–Misra
null-message-free, star topology): one **hub** LP exchanges messages
with N **satellite** LPs, satellites never talk to each other directly,
and every message is delivered a fixed **lookahead** ``L`` after it was
sent.  That latency is the physics that makes parallelism safe: an LP
positioned at time ``t`` cannot be affected by anything a peer does
after ``t - L``, so the runner alternates bounded grants —

1. the satellites are granted the window up to
   ``min(c + L, (a + L) + L)`` (exclusive), where ``c`` is the hub's
   next event time (the hub sends nothing arriving before ``c + L``)
   and ``a`` is the earliest *possible* satellite send — the minimum
   over every satellite's **influence time** and every in-flight
   command arrival.  The ``(a + L) + L`` term covers hub-mediated
   influence: a satellite sending at ``a`` can wake the hub (arrival
   ``a + L``) into commanding a *different* satellite (arriving no
   earlier than ``(a + L) + L``).  All satellites execute the window
   **concurrently** on the process backend;
2. the satellites report their next event and influence times; with
   ``a'`` the new influence minimum, every message they will ever
   send arrives at or after ``a' + L``, so the hub advances to
   ``a' + L`` (exclusive) — capped, symmetrically, at its own
   ``(first_send + L) + L`` once it emits a command mid-window (the
   earliest a reply can return) — consuming the messages collected at
   the barrier and producing the next round's commands.

An LP's **influence time** is the earliest simulated time at which it
could emit a message — its lookahead contribution beyond the link
latency.  A reactive LP that only ever *replies* (the pod control
planes) reports ``inf`` whenever no request is outstanding: its local
pipeline events then gate nobody, quiet pods cost nothing, and busy
pods advance concurrently instead of lock-stepping on each other's
internal timers.  LPs that cannot bound their sends report their next
event time (every pending event might send — always safe, never
fast).  Both horizon caps are computed as two *separate* rounded
additions, matching the two ``fl(t + L)`` round-offs the physical
chain accumulates — the algebraic ``a + 2L`` can land one ulp above
the representable arrival it must not outrun.

Both grants are provably monotonic and every delivery lands at or
after its receiver's clock; each round either processes an event or
ends the run, so the protocol can neither deadlock nor livelock
(a genuinely stuck model — nothing pending anywhere, hub unfinished —
raises :class:`~repro.errors.ParallelSimError` instead of spinning).

Windows therefore adapt to event density — quiet stretches are crossed
in one grant (an idle side reports ``inf`` and the other side runs to
exhaustion), busy stretches advance at least one event cluster per
round — and the result is **event-order deterministic**: the grant
horizons are pure functions of simulator state, messages are applied in
``(arrival, lp, seq)`` order, and no LP ever observes wall-clock, so
the inline backend and a process backend with any worker count produce
bit-identical simulations.

Spawn safety: worker processes are started from the ``spawn`` context
(no inherited interpreter state — the fork-safety minefield of an
event engine full of generators does not arise), LPs are built *inside*
the worker from a picklable ``(factory, kwargs)`` spec, and messages
must be plain data — :class:`~repro.sim.engine.Event` and
:class:`~repro.sim.engine.Simulator` refuse pickling loudly.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable, Mapping, Optional, Protocol, Sequence

from repro.errors import ParallelSimError

_INF = float("inf")


@dataclass(frozen=True)
class WireMessage:
    """One cross-LP message: plain data riding the barrier exchange.

    ``arrival_s`` must be ``sent_s`` plus the configured lookahead —
    the runner checks the invariant, because a message arriving sooner
    than the lookahead promises would break every grant already issued.
    """

    #: The LP this message is addressed to (or originated from).
    lp_id: str
    #: Simulated send time.
    sent_s: float
    #: Simulated delivery time (``sent_s + lookahead``).
    arrival_s: float
    #: Per-sender sequence number: ties at one arrival time are applied
    #: in ``(arrival_s, lp_id, seq)`` order, deterministically.
    seq: int
    #: The payload — a plain (picklable) dataclass or mapping.
    body: Any


@dataclass
class LpReply:
    """What one satellite LP returns from an :meth:`SatelliteLP.advance`."""

    #: Messages emitted during the window, addressed to the hub.
    messages: list[WireMessage] = field(default_factory=list)
    #: The LP's next local event time after the window (``inf`` = idle).
    next_time_s: float = _INF
    #: Optional load/status snapshot (plain data) taken at the window
    #: edge; ``None`` when nothing changed since the previous window.
    status: Any = None
    #: Events the LP processed inside the window (throughput metric).
    events_processed: int = 0
    #: Wall-clock seconds the LP spent executing the window.
    busy_s: float = 0.0
    #: Earliest simulated time the LP could emit a message after the
    #: window: ``inf`` = cannot send until commanded (a purely reactive
    #: LP with nothing outstanding), ``None`` = unknown — the runner
    #: falls back to ``next_time_s`` (always safe: every pending event
    #: might send).
    influence_s: Optional[float] = None


class SatelliteLP(Protocol):
    """One satellite logical process (its own simulator inside)."""

    lp_id: str

    def deliver(self, messages: Sequence[WireMessage]) -> None:
        """Schedule inbound *messages* at their arrival times.

        Arrivals are guaranteed to lie at or beyond the LP's last
        granted horizon, so scheduling them can never rewrite the past.
        """
        ...  # pragma: no cover - protocol

    def advance(self, horizon_s: float) -> LpReply:
        """Execute every local event strictly before *horizon_s*."""
        ...  # pragma: no cover - protocol

    def next_time(self) -> float:
        """The LP's next local event time (``inf`` when idle) — polled
        once at startup to seed the first round's influence bound
        (conservatively: until the LP's first reply the runner assumes
        any pending event might send)."""
        ...  # pragma: no cover - protocol


class Hub(Protocol):
    """The coordinating LP the satellites exchange messages with."""

    @property
    def finished(self) -> bool:
        """True once the simulation's goal event has been processed."""
        ...  # pragma: no cover - protocol

    def next_time(self) -> float:
        """The hub's next local event time (``inf`` when idle)."""
        ...  # pragma: no cover - protocol

    def take_outboxes(self) -> dict[str, list[WireMessage]]:
        """Drain the commands generated since the last barrier, keyed
        by destination LP."""
        ...  # pragma: no cover - protocol

    def deliver(self, messages: Sequence[WireMessage]) -> None:
        """Accept satellite messages (sorted by arrival) for delivery."""
        ...  # pragma: no cover - protocol

    def note_status(self, lp_id: str, status: Any) -> None:
        """Record a satellite's barrier status snapshot."""
        ...  # pragma: no cover - protocol

    def advance(self, horizon_s: float) -> None:
        """Execute hub events strictly before *horizon_s* (the hub may
        stop early once :attr:`finished` turns true).

        A hub that emits commands *during* its window must additionally
        stop before ``(first_send_time + lookahead) + lookahead`` (two
        separate additions — the reply chain's exact float arithmetic):
        the earliest possible reply to a command sent at ``t`` arrives
        ``L`` after the satellite received it at ``t + L``, and a hub
        that advanced past that point would receive the reply in its
        own past.  The satellites' reported influence times cannot
        protect it — they were reported *before* the command was
        delivered.
        """
        ...  # pragma: no cover - protocol


# ---------------------------------------------------------------------------
# fleet backends
# ---------------------------------------------------------------------------

#: A picklable LP constructor: ``factory(**kwargs)`` -> list of LPs.
LpFactory = Callable[..., Sequence[SatelliteLP]]


@dataclass
class RoundTiming:
    """Wall-clock accounting of one barrier round (bench support)."""

    #: Per-LP busy seconds inside the round.
    lp_busy_s: dict[str, float] = field(default_factory=dict)

    @property
    def total_s(self) -> float:
        return sum(self.lp_busy_s.values())

    @property
    def critical_s(self) -> float:
        return max(self.lp_busy_s.values()) if self.lp_busy_s else 0.0


class Fleet:
    """Common bookkeeping of the satellite-execution backends."""

    def __init__(self) -> None:
        self.lp_ids: list[str] = []
        #: Cumulative events processed per LP across all rounds.
        self.events_processed: dict[str, int] = {}
        #: Per-round wall-clock accounting (populated every round).
        self.round_timings: list[RoundTiming] = []

    def build(self, factory: LpFactory, **kwargs: Any) -> list[str]:
        raise NotImplementedError

    def begin_advance(self, horizon_s: float,
                      outboxes: Mapping[str, list[WireMessage]]) -> None:
        """Dispatch one granted window to every satellite.

        On the process backend this returns as soon as the grant is on
        the wire, so the caller can execute hub work *while* the
        satellites run; :meth:`finish_advance` then blocks for the
        replies.  The inline backend runs the window synchronously in
        :meth:`finish_advance` — same observable semantics, no overlap.
        """
        raise NotImplementedError

    def finish_advance(self) -> dict[str, LpReply]:
        """Collect the replies of the window started by
        :meth:`begin_advance`."""
        raise NotImplementedError

    def advance_all(self, horizon_s: float,
                    outboxes: Mapping[str, list[WireMessage]]
                    ) -> dict[str, LpReply]:
        """One synchronous barrier round (dispatch + collect)."""
        self.begin_advance(horizon_s, outboxes)
        return self.finish_advance()

    def call(self, lp_id: str, method: str, *args: Any) -> Any:
        """Invoke ``lp.<method>(*args)`` on one LP and return the
        (picklable) result — the stats-collection escape hatch."""
        raise NotImplementedError

    def close(self) -> None:
        """Release every resource (idempotent)."""

    def _note(self, replies: Mapping[str, LpReply]) -> None:
        timing = RoundTiming()
        for lp_id, reply in replies.items():
            self.events_processed[lp_id] = (
                self.events_processed.get(lp_id, 0)
                + reply.events_processed)
            timing.lp_busy_s[lp_id] = reply.busy_s
        self.round_timings.append(timing)

    # -- context manager ----------------------------------------------------

    def __enter__(self) -> "Fleet":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class InlineFleet(Fleet):
    """Every satellite runs in the calling process — the serial
    backend.  Bit-identical to any process backend by construction:
    the grants, deliveries and per-LP execution are the same code."""

    def __init__(self) -> None:
        super().__init__()
        self._lps: dict[str, SatelliteLP] = {}
        self._pending: Optional[tuple[float,
                                      Mapping[str, list[WireMessage]]]] = None

    def build(self, factory: LpFactory, **kwargs: Any) -> list[str]:
        lps = factory(**kwargs)
        self._lps = {lp.lp_id: lp for lp in lps}
        self.lp_ids = sorted(self._lps)
        return self.lp_ids

    def begin_advance(self, horizon_s: float,
                      outboxes: Mapping[str, list[WireMessage]]) -> None:
        if self._pending is not None:
            raise ParallelSimError(
                "begin_advance called with a window already in flight")
        self._pending = (horizon_s, outboxes)

    def finish_advance(self) -> dict[str, LpReply]:
        if self._pending is None:
            raise ParallelSimError(
                "finish_advance called without a window in flight")
        horizon_s, outboxes = self._pending
        self._pending = None
        replies: dict[str, LpReply] = {}
        for lp_id in self.lp_ids:
            lp = self._lps[lp_id]
            inbound = outboxes.get(lp_id)
            started = perf_counter()
            if inbound:
                lp.deliver(inbound)
            reply = lp.advance(horizon_s)
            reply.busy_s = perf_counter() - started
            replies[lp_id] = reply
        self._note(replies)
        return replies

    def call(self, lp_id: str, method: str, *args: Any) -> Any:
        return getattr(self._lps[lp_id], method)(*args)

    def close(self) -> None:
        self._lps = {}


def _worker_main(conn: Any) -> None:  # pragma: no cover - child process
    """Entry point of one worker process (spawn context).

    Serves a tiny command protocol on its pipe: ``build`` constructs
    this worker's share of the LPs from the picklable factory spec,
    ``advance`` runs one granted window over each hosted LP (in lp-id
    order — determinism does not depend on which worker hosts which
    LP), ``call`` proxies a method invocation, ``stop`` exits.  Any
    exception is reported back as an ``("error", ...)`` reply rather
    than killing the worker silently.
    """
    lps: dict[str, SatelliteLP] = {}
    while True:
        try:
            request = conn.recv()
        except EOFError:
            break
        command = request[0]
        try:
            if command == "build":
                _, factory, kwargs = request
                built = factory(**kwargs)
                lps = {lp.lp_id: lp for lp in built}
                conn.send(("built", sorted(lps)))
            elif command == "advance":
                _, horizon_s, outboxes = request
                replies: dict[str, LpReply] = {}
                for lp_id in sorted(lps):
                    lp = lps[lp_id]
                    inbound = outboxes.get(lp_id)
                    started = perf_counter()
                    if inbound:
                        lp.deliver(inbound)
                    reply = lp.advance(horizon_s)
                    reply.busy_s = perf_counter() - started
                    replies[lp_id] = reply
                conn.send(("replies", replies))
            elif command == "call":
                _, lp_id, method, args = request
                conn.send(("result",
                           getattr(lps[lp_id], method)(*args)))
            elif command == "stop":
                conn.send(("stopped",))
                break
            else:
                conn.send(("error", f"unknown command {command!r}"))
        except Exception as exc:  # noqa: BLE001 - reported to the parent
            conn.send(("error",
                       f"{type(exc).__name__}: {exc}\n"
                       f"{traceback.format_exc()}"))
    conn.close()


class ProcessFleet(Fleet):
    """Satellites spread round-robin over ``worker_count`` OS processes.

    Workers are started from the multiprocessing **spawn** context and
    build their LPs locally from the factory spec, so nothing but plain
    data ever crosses a pipe.  A worker that dies mid-round surfaces as
    a :class:`~repro.errors.ParallelSimError` naming the worker — never
    a hang — and a worker-side exception carries its traceback home.
    """

    def __init__(self, worker_count: int, *, start_method: str = "spawn"
                 ) -> None:
        super().__init__()
        if worker_count < 1:
            raise ParallelSimError(
                f"need >= 1 worker process, got {worker_count}")
        import multiprocessing

        self.worker_count = worker_count
        self._ctx = multiprocessing.get_context(start_method)
        self._pipes: list[Any] = []
        self._workers: list[Any] = []
        #: lp id -> worker index hosting it.
        self._home: dict[str, int] = {}
        #: True between begin_advance and finish_advance.
        self._in_flight = False

    def _start(self) -> None:
        for index in range(self.worker_count):
            parent_conn, child_conn = self._ctx.Pipe()
            worker = self._ctx.Process(
                target=_worker_main, args=(child_conn,),
                name=f"repro-sim-worker-{index}", daemon=True)
            worker.start()
            child_conn.close()
            self._pipes.append(parent_conn)
            self._workers.append(worker)

    def _send(self, index: int, request: tuple) -> None:
        try:
            self._pipes[index].send(request)
        except (OSError, ValueError) as exc:
            code = self._workers[index].exitcode
            raise ParallelSimError(
                f"worker {index} is gone (exit code {code}); cannot "
                f"dispatch {request[0]!r} — the simulation cannot "
                f"continue") from exc

    def _recv(self, index: int) -> Any:
        try:
            reply = self._pipes[index].recv()
        except (EOFError, OSError) as exc:
            code = self._workers[index].exitcode
            raise ParallelSimError(
                f"worker {index} died mid-barrier "
                f"(exit code {code}); the simulation cannot continue"
            ) from exc
        if reply[0] == "error":
            raise ParallelSimError(
                f"worker {index} failed: {reply[1]}")
        return reply

    def build(self, factory: LpFactory, **kwargs: Any) -> list[str]:
        if not self._workers:
            self._start()
        # Partitioning is round-robin over the *factory's* LP order;
        # results cannot depend on it (each LP is self-contained), but
        # a stable split keeps worker load repeatable.
        probe = factory(**kwargs)
        lp_ids = [lp.lp_id for lp in probe]
        del probe
        shares: list[list[str]] = [[] for _ in range(self.worker_count)]
        for position, lp_id in enumerate(lp_ids):
            index = position % self.worker_count
            shares[index].append(lp_id)
            self._home[lp_id] = index
        for index, share in enumerate(shares):
            self._send(index,
                       ("build", _PartitionFactory(factory, share), kwargs))
        hosted: list[str] = []
        for index in range(self.worker_count):
            hosted.extend(self._recv(index)[1])
        self.lp_ids = sorted(hosted)
        return self.lp_ids

    def begin_advance(self, horizon_s: float,
                      outboxes: Mapping[str, list[WireMessage]]) -> None:
        if self._in_flight:
            raise ParallelSimError(
                "begin_advance called with a window already in flight")
        per_worker: list[dict[str, list[WireMessage]]] = [
            {} for _ in range(self.worker_count)]
        for lp_id, messages in outboxes.items():
            try:
                home = self._home[lp_id]
            except KeyError:
                raise ParallelSimError(
                    f"no worker hosts LP {lp_id!r}") from None
            per_worker[home][lp_id] = messages
        for index in range(self.worker_count):
            self._send(index, ("advance", horizon_s, per_worker[index]))
        self._in_flight = True

    def finish_advance(self) -> dict[str, LpReply]:
        if not self._in_flight:
            raise ParallelSimError(
                "finish_advance called without a window in flight")
        self._in_flight = False
        replies: dict[str, LpReply] = {}
        for index in range(self.worker_count):
            replies.update(self._recv(index)[1])
        self._note(replies)
        return replies

    def call(self, lp_id: str, method: str, *args: Any) -> Any:
        index = self._home[lp_id]
        self._send(index, ("call", lp_id, method, args))
        return self._recv(index)[1]

    def close(self) -> None:
        for index, worker in enumerate(self._workers):
            if worker.is_alive():
                try:
                    self._pipes[index].send(("stop",))
                    self._pipes[index].recv()
                except (EOFError, OSError, BrokenPipeError):
                    pass
            worker.join(timeout=5.0)
            if worker.is_alive():  # pragma: no cover - defensive
                worker.terminate()
            self._pipes[index].close()
        self._workers = []
        self._pipes = []
        self._home = {}


class _PartitionFactory:
    """Picklable wrapper: builds only one worker's share of the LPs."""

    def __init__(self, factory: LpFactory, keep: Sequence[str]) -> None:
        self.factory = factory
        self.keep = frozenset(keep)

    def __call__(self, **kwargs: Any) -> list[SatelliteLP]:
        return [lp for lp in self.factory(**kwargs)
                if lp.lp_id in self.keep]


def make_fleet(workers: int, *, start_method: str = "spawn") -> Fleet:
    """``workers == 0`` -> :class:`InlineFleet` (the serial backend);
    ``workers >= 1`` -> :class:`ProcessFleet` with that many OS
    processes."""
    if workers < 0:
        raise ParallelSimError(f"worker count must be >= 0, got {workers}")
    if workers == 0:
        return InlineFleet()
    return ProcessFleet(workers, start_method=start_method)


# ---------------------------------------------------------------------------
# the window runner
# ---------------------------------------------------------------------------

@dataclass
class WindowRunReport:
    """What one conservative run did (bench + diagnostics)."""

    rounds: int = 0
    #: Events processed per satellite LP.
    lp_events: dict[str, int] = field(default_factory=dict)
    #: Wall-clock spent inside satellite windows, summed over LPs.
    lp_busy_s: float = 0.0
    #: Wall-clock of the per-round slowest LP, summed over rounds —
    #: the satellite-side critical path an ideal one-core-per-LP
    #: machine would pay.
    lp_critical_s: float = 0.0
    #: Hub wall-clock inside granted windows — executed *while* the
    #: satellites run their window on the process backend (the
    #: pipelined grant), so it only costs wall-clock where it exceeds
    #: the round's slowest satellite.
    hub_overlapped_s: float = 0.0
    #: Per-round ``max(slowest satellite, overlapped hub)`` summed
    #: over rounds: the combined critical path of an ideal
    #: one-core-per-LP machine, accounting for the hub/satellite
    #: overlap.  Add the off-round runner overhead (total wall minus
    #: busy minus overlapped hub) for the full lower bound on
    #: parallel wall-clock.
    critical_path_s: float = 0.0


def run_windows(hub: Hub, fleet: Fleet, lookahead_s: float,
                max_rounds: Optional[int] = None) -> WindowRunReport:
    """Drive *hub* and *fleet* to completion in conservative windows.

    The invariants (see the module docstring): satellites execute
    strictly below ``hub.next_time() + lookahead``, the hub strictly
    below ``min(satellite next times) + lookahead``, and messages cross
    only at barriers.  Lookahead must be positive — with zero lookahead
    no side can ever promise the other a non-empty window and the
    protocol degenerates to a deadlock, so it is rejected up front.

    A stalled barrier (hub not finished, yet neither side has an event
    and no message is in flight) raises :class:`~repro.errors.
    ParallelSimError` instead of spinning forever; so does exceeding
    *max_rounds* when given.
    """
    if not (lookahead_s > 0.0):
        raise ParallelSimError(
            f"conservative synchronization needs a positive lookahead "
            f"(got {lookahead_s}); with zero lookahead no process can "
            f"grant any other a window")
    if lookahead_s == _INF or lookahead_s != lookahead_s:
        raise ParallelSimError(
            f"lookahead must be finite, got {lookahead_s}")
    report = WindowRunReport()
    #: Per-LP influence times as of the last barrier — the earliest
    #: each LP could send.  Seeded by a startup next-event poll (until
    #: an LP's first reply, any pending event might send).
    influences: dict[str, float] = {
        lp_id: fleet.call(lp_id, "next_time")
        for lp_id in fleet.lp_ids}
    satellites_next = min(influences.values(), default=_INF)
    while not hub.finished:
        if max_rounds is not None and report.rounds >= max_rounds:
            raise ParallelSimError(
                f"window runner exceeded {max_rounds} rounds without "
                f"finishing")
        hub_next = hub.next_time()
        outboxes = hub.take_outboxes()
        # The stall check runs *here*, after the outbox drain: a
        # command the hub emitted late in its last overlapped window
        # is in flight but only becomes visible at this drain — an
        # end-of-round check would misread that round (hub idle,
        # satellites idle, command still boxed) as a dead simulation.
        if (hub_next == _INF and satellites_next == _INF
                and not any(outboxes.values())):
            raise ParallelSimError(
                "stalled barrier: the hub is not finished but no LP "
                "has a pending event and no message is in flight — "
                "the model is waiting on something that will never "
                "happen")
        # Earliest possible satellite send this round: a reported
        # influence time or an in-flight command about to be delivered
        # (which may trigger an immediate reply).
        influence = min(influences.values(), default=_INF)
        for messages in outboxes.values():
            for message in messages:
                if message.arrival_s < influence:
                    influence = message.arrival_s
        # The influence cap is two *separate* rounded additions, not
        # ``influence + 2 * lookahead_s``: the causal chain it guards
        # against (satellite send -> hub reaction -> counter-command)
        # accumulates two ``fl(t + L)`` round-offs, and the chained
        # form can land one ulp below the algebraic ``t + 2L``.
        satellite_horizon = min(hub_next + lookahead_s,
                                (influence + lookahead_s) + lookahead_s)
        fleet.begin_advance(satellite_horizon, outboxes)
        # Pipelined hub grant: while the satellites execute their
        # window, the hub runs to ``influence + L`` — every message a
        # satellite can emit this window is sent at or after its last
        # reported influence time (or the arrival of a command just
        # dispatched), so nothing can reach the hub below that bound.
        # Work this round's replies unlock is *deferred to the next
        # round's* grant, where the refreshed influence times admit
        # it — one round of extra latency in wall-clock only (event
        # order is bound-independent), in exchange for the hub never
        # executing serially between windows.  With no possible sender
        # (``influence == inf``) the hub runs freely; its own send cap
        # still stops it at ``(first_send + L) + L``.
        overlap_started = perf_counter()
        hub.advance(influence + lookahead_s if influence != _INF
                    else _INF)
        overlapped_s = perf_counter() - overlap_started
        report.hub_overlapped_s += overlapped_s
        replies = fleet.finish_advance()
        round_timing = fleet.round_timings[-1]
        report.critical_path_s += max(round_timing.critical_s,
                                      overlapped_s)
        inbound: list[WireMessage] = []
        satellites_next = _INF
        for lp_id in sorted(replies):
            reply = replies[lp_id]
            for message in reply.messages:
                if message.arrival_s != message.sent_s + lookahead_s:
                    raise ParallelSimError(
                        f"LP {lp_id!r} emitted a message sent at "
                        f"{message.sent_s} arriving at "
                        f"{message.arrival_s}; arrival must be exactly "
                        f"send time + lookahead ({lookahead_s})")
            inbound.extend(reply.messages)
            influences[lp_id] = (reply.influence_s
                                 if reply.influence_s is not None
                                 else reply.next_time_s)
            satellites_next = min(satellites_next, reply.next_time_s)
            if reply.status is not None:
                hub.note_status(lp_id, reply.status)
        if inbound:
            inbound.sort(key=lambda m: (m.arrival_s, m.lp_id, m.seq))
            hub.deliver(inbound)
        report.rounds += 1
    report.lp_events = dict(fleet.events_processed)
    report.lp_busy_s = sum(t.total_s for t in fleet.round_timings)
    report.lp_critical_s = sum(t.critical_s for t in fleet.round_timings)
    return report
