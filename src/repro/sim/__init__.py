"""Discrete-event simulation kernel.

The dReDBox paper evaluated its prototype on real hardware with wall-clock
instrumentation.  This package is the substitute substrate: a small,
deterministic discrete-event simulation (DES) kernel in the style of SimPy.

* :mod:`repro.sim.engine` — the event loop: :class:`Simulator`,
  generator-based :class:`Process` coroutines, timeouts, condition
  events, cancellation and event-object recycling.
* :mod:`repro.sim.queues` — pluggable pending-event backends: the
  calendar-queue/timer-wheel (default) and the classic binary heap.
* :mod:`repro.sim.resources` — contention primitives (:class:`Resource`,
  :class:`Store`) used to model serialized controllers and queues.
* :mod:`repro.sim.rng` — named, reproducible random-number streams.
* :mod:`repro.sim.trace` — structured event tracing and counters.
* :mod:`repro.sim.control` — control-plane execution contexts: the
  shared reservation critical section and the synchronous-wrapper
  convention (``run_sync``).
"""

from repro.sim.control import ControlContext, run_sync
from repro.sim.engine import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    Simulator,
    Timeout,
    default_queue_backend,
)
from repro.sim.queues import (
    CalendarEventQueue,
    EventQueue,
    HeapEventQueue,
    QUEUE_BACKENDS,
)
from repro.sim.resources import Resource, Store
from repro.sim.rng import RngRegistry, stable_stream_seed
from repro.sim.trace import TraceRecord, Tracer

__all__ = [
    "AllOf",
    "AnyOf",
    "CalendarEventQueue",
    "ControlContext",
    "Event",
    "EventQueue",
    "HeapEventQueue",
    "Interrupt",
    "Process",
    "QUEUE_BACKENDS",
    "Resource",
    "RngRegistry",
    "Simulator",
    "Store",
    "Timeout",
    "TraceRecord",
    "Tracer",
    "default_queue_backend",
    "run_sync",
    "stable_stream_seed",
]
