"""Core discrete-event simulation engine.

The engine follows the classic event-heap design: a priority queue of
``(time, priority, sequence, event)`` entries, popped in order, with each
popped event running its callbacks.  Model code is written as generator
functions ("processes") that ``yield`` events; the :class:`Process` wrapper
resumes the generator whenever the yielded event triggers.

The kernel is deliberately small but complete enough for the whole library:
timeouts, process joining, failure propagation, interrupts, and ``AnyOf`` /
``AllOf`` condition events.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

from repro.errors import SimulationError

#: Default scheduling priority; lower numbers run first at equal times.
NORMAL_PRIORITY = 1
#: Priority used for immediate resumption of processes (runs before normal).
URGENT_PRIORITY = 0


class Event:
    """A happening at a point in simulated time.

    An event starts *pending*, becomes *triggered* once a value (or an
    exception) has been scheduled for it, and *processed* after its
    callbacks have run.  Callbacks receive the event itself.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_triggered", "_processed")

    #: Sentinel distinguishing "no value yet" from an explicit ``None``.
    PENDING = object()

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.callbacks: list[Callable[["Event"], None]] = []
        self._value: Any = Event.PENDING
        self._ok = True
        self._triggered = False
        self._processed = False

    # -- state inspection ---------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has a scheduled outcome."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once callbacks have been executed."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True when the event carries a value rather than an exception."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event outcome; raises if the event is still pending."""
        if self._value is Event.PENDING:
            raise SimulationError(f"{self!r} has not been triggered yet")
        return self._value

    # -- triggering ---------------------------------------------------------

    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Schedule this event to succeed with *value* after *delay*."""
        if self._triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        self._triggered = True
        self._ok = True
        self._value = value
        self.sim.schedule(self, delay=delay)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Schedule this event to fail with *exception* after *delay*."""
        if self._triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError(f"fail() needs an exception, got {exception!r}")
        self._triggered = True
        self._ok = False
        self._value = exception
        self.sim.schedule(self, delay=delay)
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self._processed else (
            "triggered" if self._triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires a fixed delay after its creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"timeout delay must be >= 0, got {delay}")
        super().__init__(sim)
        self.delay = delay
        self._triggered = True
        self._value = value
        sim.schedule(self, delay=delay)


class Interrupt(Exception):
    """Thrown into a process when :meth:`Process.interrupt` is called."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


ProcessGenerator = Generator[Event, Any, Any]


class Process(Event):
    """A running generator coroutine; also an event (fires on completion).

    The wrapped generator yields :class:`Event` instances.  When a yielded
    event succeeds, its value is sent back into the generator; when it
    fails, the exception is thrown into the generator (and considered
    handled if the generator survives the throw).
    """

    __slots__ = ("_generator", "_waiting_on")

    def __init__(self, sim: "Simulator", generator: ProcessGenerator) -> None:
        if not hasattr(generator, "send"):
            raise SimulationError(
                f"process requires a generator, got {type(generator).__name__}")
        super().__init__(sim)
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        # Bootstrap: resume the generator at the current simulation time.
        bootstrap = Event(sim)
        bootstrap.callbacks.append(self._resume)
        bootstrap.succeed()

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is an error; interrupting a process
        that is waiting on an event detaches it from that event.
        """
        if not self.is_alive:
            raise SimulationError("cannot interrupt a finished process")
        target = self._waiting_on
        if target is not None and self._resume in target.callbacks:
            target.callbacks.remove(self._resume)
        self._waiting_on = None
        carrier = Event(self.sim)
        carrier.callbacks.append(self._resume)
        carrier.fail(Interrupt(cause))

    # -- generator driving ----------------------------------------------------

    def _resume(self, trigger: Event) -> None:
        """Advance the generator with the outcome of *trigger*."""
        self._waiting_on = None
        while True:
            try:
                if trigger._ok:
                    yielded = self._generator.send(
                        None if trigger._value is Event.PENDING else trigger._value)
                else:
                    yielded = self._generator.throw(trigger._value)
            except StopIteration as stop:
                self.succeed(stop.value)
                return
            except Interrupt as exc:
                # An unhandled interrupt terminates the process as a failure.
                self.fail(exc)
                return
            except Exception as exc:
                self.fail(exc)
                return

            if not isinstance(yielded, Event):
                error = SimulationError(
                    f"process yielded {yielded!r}; processes must yield events")
                self._generator.close()
                self.fail(error)
                return
            if yielded.sim is not self.sim:
                error = SimulationError(
                    "process yielded an event bound to a different simulator")
                self._generator.close()
                self.fail(error)
                return

            if yielded._processed:
                # Already-processed events resume the generator immediately,
                # within this same callback, preserving causal time.
                trigger = yielded
                continue
            self._waiting_on = yielded
            yielded.callbacks.append(self._resume)
            return


class _Condition(Event):
    """Base for events that aggregate the outcome of several events."""

    __slots__ = ("_events", "_outstanding")

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        self._events = list(events)
        for event in self._events:
            if event.sim is not sim:
                raise SimulationError(
                    "condition mixes events from different simulators")
        self._outstanding = len(self._events)
        if not self._events:
            self.succeed({})
            return
        for event in self._events:
            if event._processed:
                self._observe(event)
            else:
                event.callbacks.append(self._observe)

    def _observe(self, event: Event) -> None:
        raise NotImplementedError

    def _collect(self) -> dict[Event, Any]:
        """Values of all constituents that have already *occurred*.

        Checks ``_processed`` (the event fired), not ``_triggered`` —
        timeouts are born triggered but have not happened yet.
        """
        return {
            event: event._value
            for event in self._events
            if event._processed and event._ok
        }


class AllOf(_Condition):
    """Succeeds when every constituent event has succeeded.

    Fails as soon as any constituent fails, with that event's exception.
    The success value is a dict mapping each event to its value.
    """

    __slots__ = ()

    def _observe(self, event: Event) -> None:
        if self._triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._outstanding -= 1
        if self._outstanding == 0:
            self.succeed(self._collect())


class AnyOf(_Condition):
    """Succeeds when the first constituent event succeeds.

    Fails only if the *first* event to trigger fails.  The success value is
    a dict of all constituents that had succeeded by that moment.
    """

    __slots__ = ()

    def _observe(self, event: Event) -> None:
        if self._triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self.succeed(self._collect())


class Simulator:
    """The event loop: owns the clock and the pending-event heap."""

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[tuple[float, int, int, Event]] = []
        self._sequence = 0

    @property
    def now(self) -> float:
        """Current simulated time, in seconds."""
        return self._now

    # -- scheduling -----------------------------------------------------------

    def schedule(self, event: Event, delay: float = 0.0,
                 priority: int = NORMAL_PRIORITY) -> None:
        """Enqueue a triggered *event* to be processed after *delay*."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        self._sequence += 1
        heapq.heappush(self._heap, (self._now + delay, priority, self._sequence, event))

    # -- event factories --------------------------------------------------------

    def event(self) -> Event:
        """Create a pending event bound to this simulator."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires after *delay* seconds."""
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator) -> Process:
        """Start a process from *generator*; returns its completion event."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that fires when all of *events* have succeeded."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that fires when the first of *events* succeeds."""
        return AnyOf(self, events)

    # -- running ----------------------------------------------------------------

    def step(self) -> None:
        """Process exactly one event from the heap."""
        if not self._heap:
            raise SimulationError("simulation heap is empty")
        when, _priority, _seq, event = heapq.heappop(self._heap)
        self._now = when
        callbacks, event.callbacks = event.callbacks, []
        event._processed = True
        for callback in callbacks:
            callback(event)
        if not event._ok and not callbacks:
            # A failed event nobody waited on would silently swallow the
            # error; surface it instead (mirrors SimPy's behaviour).
            raise event._value

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` when idle."""
        return self._heap[0][0] if self._heap else float("inf")

    def run(self, until: "float | Event | None" = None) -> Any:
        """Run the simulation.

        * ``until=None`` — run until no events remain.
        * ``until=<float>`` — run until the clock reaches that time.
        * ``until=<Event>`` — run until that event is processed and return
          its value (re-raising its exception if it failed).
        """
        if until is None:
            while self._heap:
                self.step()
            return None

        if isinstance(until, Event):
            sentinel = until
            if sentinel.sim is not self:
                raise SimulationError("cannot run until a foreign event")
            while not sentinel._processed:
                if not self._heap:
                    raise SimulationError(
                        "simulation ran out of events before the target event fired")
                self.step()
            if not sentinel._ok:
                raise sentinel._value
            return sentinel._value

        horizon = float(until)
        if horizon < self._now:
            raise SimulationError(
                f"cannot run until {horizon}; clock is already at {self._now}")
        while self._heap and self._heap[0][0] <= horizon:
            self.step()
        self._now = horizon
        return None
