"""Core discrete-event simulation engine.

The engine follows the classic event-queue design: pending
``(time, priority, sequence, event)`` entries are popped in order and
each popped event runs its callbacks.  Model code is written as
generator functions ("processes") that ``yield`` events; the
:class:`Process` wrapper resumes the generator whenever the yielded
event triggers.

The kernel is deliberately small but complete enough for the whole
library: timeouts, process joining, failure propagation, interrupts,
``AnyOf`` / ``AllOf`` condition events, and event cancellation.

Throughput machinery (the kernel is a product metric — see
``experiments/kernel_bench.py``):

* the pending-event structure is pluggable
  (:mod:`repro.sim.queues`): ``Simulator(queue="calendar")`` selects
  the calendar-queue/timer-wheel backend (the default — O(1) for the
  short-delay timeout swarms of the data mover and control plane),
  ``queue="heap"`` the classic binary heap;
* ``run()`` drives a tight inlined loop instead of calling
  :meth:`Simulator.step` per event;
* processed :class:`Timeout`, :class:`Event`, :class:`AllOf` and
  :class:`AnyOf` objects are recycled through per-simulator free-list
  pools when nothing else references them (checked via
  ``sys.getrefcount``), so steady-state workloads allocate almost no
  event objects;
* :meth:`Event.cancel` drops an abandoned scheduled event from the
  queue without processing it, so e.g. losing timeout branches no
  longer ride the queue to end-of-run as tombstones.

Every behaviour above preserves determinism: the
``(time, priority, sequence)`` total order is unique, so any backend
and any pooling decision produces bit-identical simulations.
"""

from __future__ import annotations

from contextlib import contextmanager
from sys import getrefcount
from typing import Any, Callable, Generator, Iterable, Iterator, Optional

from repro.errors import SimulationError
from repro.sim.queues import EventQueue, QueueLike, make_queue

#: Default scheduling priority; lower numbers run first at equal times.
NORMAL_PRIORITY = 1
#: Priority used for immediate resumption of processes (runs before normal).
URGENT_PRIORITY = 0

#: Queue backend used by ``Simulator()`` when none is requested.
DEFAULT_QUEUE_BACKEND = "calendar"

#: Per-pool cap on recycled event objects (bounds idle pool memory).
POOL_LIMIT = 1024

_INF = float("inf")


@contextmanager
def default_queue_backend(name: str) -> Iterator[None]:
    """Temporarily change the backend new :class:`Simulator`\\ s use.

    Lets benchmarks and tests run unmodified multi-simulator code
    (control plane, federation) on a chosen backend without threading a
    parameter through every constructor::

        with default_queue_backend("heap"):
            run_federation(...)
    """
    global DEFAULT_QUEUE_BACKEND
    previous = DEFAULT_QUEUE_BACKEND
    # Fail fast on unknown names before any simulator is built.
    make_queue(name)
    DEFAULT_QUEUE_BACKEND = name
    try:
        yield
    finally:
        DEFAULT_QUEUE_BACKEND = previous


class Event:
    """A happening at a point in simulated time.

    An event starts *pending*, becomes *triggered* once a value (or an
    exception) has been scheduled for it, and *processed* after its
    callbacks have run.  Callbacks receive the event itself.  A pending
    or triggered event can be *cancelled*, after which it never
    processes.

    Once processed (or cancelled), ``callbacks`` is ``None`` — late
    registration is a bug and fails loudly.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_triggered",
                 "_processed", "_cancelled")

    #: Sentinel distinguishing "no value yet" from an explicit ``None``.
    PENDING = object()

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = Event.PENDING
        self._ok = True
        self._triggered = False
        self._processed = False
        self._cancelled = False

    def _reset(self) -> None:
        """Return to the freshly constructed state (pool reuse).

        Recycled events arrive with their (cleared) callbacks list
        still attached — reuse it rather than allocating a fresh one.
        """
        if self.callbacks is None:
            self.callbacks = []
        self._value = Event.PENDING
        self._ok = True
        self._triggered = False
        self._processed = False
        self._cancelled = False

    # -- state inspection ---------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has a scheduled outcome."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once callbacks have been executed."""
        return self._processed

    @property
    def cancelled(self) -> bool:
        """True once the event has been withdrawn via :meth:`cancel`."""
        return self._cancelled

    @property
    def ok(self) -> bool:
        """True when the event carries a value rather than an exception."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event outcome; raises if the event is still pending."""
        if self._value is Event.PENDING:
            raise SimulationError(f"{self!r} has not been triggered yet")
        return self._value

    # -- triggering ---------------------------------------------------------

    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Schedule this event to succeed with *value* after *delay*."""
        if self._triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        if self._cancelled:
            raise SimulationError(f"{self!r} has been cancelled")
        self._triggered = True
        self._ok = True
        self._value = value
        self.sim.schedule(self, delay=delay)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Schedule this event to fail with *exception* after *delay*."""
        if self._triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        if self._cancelled:
            raise SimulationError(f"{self!r} has been cancelled")
        if not isinstance(exception, BaseException):
            raise SimulationError(f"fail() needs an exception, got {exception!r}")
        self._triggered = True
        self._ok = False
        self._value = exception
        self.sim.schedule(self, delay=delay)
        return self

    def cancel(self) -> "Event":
        """Withdraw this event: it will never trigger nor process.

        A pending event becomes un-triggerable; a triggered (scheduled)
        event is dropped from the queue without running its callbacks,
        and its waiter references are released immediately instead of
        riding the queue to end-of-run as a tombstone.  Only cancel
        events nothing else is waiting on (e.g. the losing timeout of a
        race this code owns) — a stranded waiter never resumes.

        Cancelling a processed or already cancelled event is an error.
        """
        if self._processed:
            raise SimulationError(
                f"cannot cancel {self!r}: already processed")
        if self._cancelled:
            raise SimulationError(f"{self!r} is already cancelled")
        self._cancelled = True
        if self._triggered:
            self.sim._queue.note_cancel(self)
        self.callbacks = None
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = ("cancelled" if self._cancelled else
                 "processed" if self._processed else
                 "triggered" if self._triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"

    def __reduce__(self):
        # Events are process-local by construction: they reference their
        # simulator (whose queue references every other pending event)
        # and recycle through per-simulator free-list pools, so a
        # pickled event could neither be detached from its engine nor
        # safely resurrected in another process.  The parallel
        # federation's message protocol (repro.federation.messages)
        # carries plain dataclasses instead; anything trying to ship an
        # event across a process boundary is a bug — fail loudly.
        raise TypeError(
            f"{type(self).__name__} objects are process-local and "
            "cannot be pickled; cross-process protocols must carry "
            "plain messages (see repro.sim.parallel)")


class Timeout(Event):
    """An event that fires a fixed delay after its creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        # ``not (delay >= 0)`` also catches NaN, which compares false
        # against everything and would corrupt the queue order.
        if not (delay >= 0) or delay == _INF:
            raise SimulationError(
                f"timeout delay must be finite and >= 0, got {delay}")
        super().__init__(sim)
        self.delay = delay
        self._triggered = True
        self._value = value
        sim.schedule(self, delay=delay)


class Interrupt(Exception):
    """Thrown into a process when :meth:`Process.interrupt` is called."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


ProcessGenerator = Generator[Event, Any, Any]


class Process(Event):
    """A running generator coroutine; also an event (fires on completion).

    The wrapped generator yields :class:`Event` instances.  When a yielded
    event succeeds, its value is sent back into the generator; when it
    fails, the exception is thrown into the generator (and considered
    handled if the generator survives the throw).
    """

    __slots__ = ("_generator", "_waiting_on")

    def __init__(self, sim: "Simulator", generator: ProcessGenerator) -> None:
        if not hasattr(generator, "send"):
            raise SimulationError(
                f"process requires a generator, got {type(generator).__name__}")
        super().__init__(sim)
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        # Bootstrap: resume the generator at the current simulation time
        # (sim.event() draws the carrier from the recycling pool).
        bootstrap = sim.event()
        bootstrap.callbacks.append(self._resume)
        bootstrap.succeed()

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is an error; interrupting a process
        that is waiting on an event detaches it from that event.
        """
        if not self.is_alive:
            raise SimulationError("cannot interrupt a finished process")
        target = self._waiting_on
        if (target is not None and target.callbacks
                and self._resume in target.callbacks):
            target.callbacks.remove(self._resume)
        self._waiting_on = None
        carrier = self.sim.event()
        carrier.callbacks.append(self._resume)
        carrier.fail(Interrupt(cause))

    # -- generator driving ----------------------------------------------------

    def _resume(self, trigger: Event) -> None:
        """Advance the generator with the outcome of *trigger*."""
        self._waiting_on = None
        while True:
            try:
                if trigger._ok:
                    yielded = self._generator.send(
                        None if trigger._value is Event.PENDING else trigger._value)
                else:
                    yielded = self._generator.throw(trigger._value)
            except StopIteration as stop:
                self.succeed(stop.value)
                return
            except Interrupt as exc:
                # An unhandled interrupt terminates the process as a failure.
                self.fail(exc)
                return
            except Exception as exc:
                self.fail(exc)
                return

            if not isinstance(yielded, Event):
                error = SimulationError(
                    f"process yielded {yielded!r}; processes must yield events")
                self._generator.close()
                self.fail(error)
                return
            if yielded.sim is not self.sim:
                error = SimulationError(
                    "process yielded an event bound to a different simulator")
                self._generator.close()
                self.fail(error)
                return

            if yielded._processed:
                # Already-processed events resume the generator immediately,
                # within this same callback, preserving causal time.
                trigger = yielded
                continue
            if yielded._cancelled:
                error = SimulationError(
                    "process yielded a cancelled event, which can never fire")
                self._generator.close()
                self.fail(error)
                return
            self._waiting_on = yielded
            yielded.callbacks.append(self._resume)
            return


class _Condition(Event):
    """Base for events that aggregate the outcome of several events."""

    __slots__ = ("_events", "_outstanding")

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        self._setup(events)

    def _setup(self, events: Iterable[Event]) -> None:
        """Bind to the constituent *events* (construction and pool reuse)."""
        self._events = list(events)
        sim = self.sim
        for event in self._events:
            if event.sim is not sim:
                raise SimulationError(
                    "condition mixes events from different simulators")
            if event._cancelled:
                raise SimulationError(
                    "condition includes a cancelled event, "
                    "which can never fire")
        self._outstanding = len(self._events)
        if not self._events:
            self.succeed({})
            return
        observe = self._observe
        for event in self._events:
            if self._triggered:
                # Already decided (an early constituent had fired):
                # never register on the rest — registrations past this
                # point would be the exact leak _detach exists to plug.
                break
            if event._processed:
                observe(event)
            else:
                event.callbacks.append(observe)

    def _observe(self, event: Event) -> None:
        raise NotImplementedError

    def _detach(self) -> None:
        """Unhook from constituents that have not fired.

        Called as soon as the condition's outcome is decided.  Without
        it, every still-pending constituent would keep a reference to
        this condition (and its collected values) until processed —
        losing events of an ``AnyOf`` race would drag the condition to
        end-of-run.
        """
        observe = self._observe
        for event in self._events:
            if not event._processed:
                callbacks = event.callbacks
                if callbacks is not None:
                    try:
                        callbacks.remove(observe)
                    except ValueError:
                        pass
        self._events = []

    def _collect(self) -> dict[Event, Any]:
        """Values of all constituents that have already *occurred*.

        Checks ``_processed`` (the event fired), not ``_triggered`` —
        timeouts are born triggered but have not happened yet.
        """
        return {
            event: event._value
            for event in self._events
            if event._processed and event._ok
        }


class AllOf(_Condition):
    """Succeeds when every constituent event has succeeded.

    Fails as soon as any constituent fails, with that event's exception.
    The success value is a dict mapping each event to its value.
    """

    __slots__ = ()

    def _observe(self, event: Event) -> None:
        if self._triggered:
            return
        if not event._ok:
            self.fail(event._value)
            self._detach()
            return
        self._outstanding -= 1
        if self._outstanding == 0:
            self.succeed(self._collect())
            self._detach()


class AnyOf(_Condition):
    """Succeeds when the first constituent event succeeds.

    Fails only if the *first* event to trigger fails.  The success value is
    a dict of all constituents that had succeeded by that moment.
    """

    __slots__ = ()

    def _observe(self, event: Event) -> None:
        if self._triggered:
            return
        if not event._ok:
            self.fail(event._value)
            self._detach()
            return
        self.succeed(self._collect())
        self._detach()


class Simulator:
    """The event loop: owns the clock and the pending-event queue."""

    def __init__(self, queue: QueueLike = None) -> None:
        self._now = 0.0
        self._queue: EventQueue = make_queue(
            queue, default=DEFAULT_QUEUE_BACKEND)
        self._sequence = 0
        self._events_processed = 0
        # Free lists of processed event objects, keyed by exact type
        # (subclasses like resources.Request are deliberately absent:
        # only types whose lifecycle the kernel fully owns recycle).
        self._pools: dict[type, list] = {
            Timeout: [], Event: [], AllOf: [], AnyOf: []}
        self._timeout_pool = self._pools[Timeout]
        self._event_pool = self._pools[Event]

    @property
    def now(self) -> float:
        """Current simulated time, in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total events processed so far (the bench's events/sec base)."""
        return self._events_processed

    @property
    def queue_backend(self) -> str:
        """Name of the active event-queue backend."""
        return self._queue.name

    @property
    def queue_peak_size(self) -> int:
        """High-water mark of pending events (the bench's peak queue)."""
        return self._queue.peak_size

    @property
    def queue_size(self) -> int:
        """Pending (live) events right now."""
        return len(self._queue)

    # -- scheduling -----------------------------------------------------------

    def schedule(self, event: Event, delay: float = 0.0,
                 priority: int = NORMAL_PRIORITY) -> None:
        """Enqueue a triggered *event* to be processed after *delay*."""
        # ``not (delay >= 0)`` also catches NaN: NaN compares false
        # against everything, so the historical ``delay < 0`` check let
        # it through to silently corrupt the queue's total order.
        if not (delay >= 0):
            if delay != delay:
                raise SimulationError(
                    "cannot schedule at a NaN delay")
            raise SimulationError(
                f"cannot schedule into the past (delay={delay})")
        if delay == _INF:
            raise SimulationError("cannot schedule at an infinite delay")
        self._sequence = sequence = self._sequence + 1
        self._queue.push(self._now + delay, priority, sequence, event)

    # -- event factories --------------------------------------------------------

    def event(self) -> Event:
        """Create a pending event bound to this simulator."""
        pool = self._event_pool
        if pool:
            event = pool.pop()
            event._reset()
            return event
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires after *delay* seconds."""
        pool = self._timeout_pool
        if not pool:
            return Timeout(self, delay, value)
        if not (delay >= 0) or delay == _INF:
            raise SimulationError(
                f"timeout delay must be finite and >= 0, got {delay}")
        timeout = pool.pop()
        # A pooled Timeout needs no full _reset: it was recycled with a
        # cleared callbacks list attached, ``_triggered``/``_ok`` are
        # still True (a Timeout can neither fail nor recycle cancelled),
        # so only the per-use fields change.
        timeout._processed = False
        timeout._value = value
        timeout.delay = delay
        self._sequence = sequence = self._sequence + 1
        self._queue.push(self._now + delay, NORMAL_PRIORITY, sequence,
                         timeout)
        return timeout

    def process(self, generator: ProcessGenerator) -> Process:
        """Start a process from *generator*; returns its completion event."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that fires when all of *events* have succeeded."""
        pool = self._pools[AllOf]
        if pool:
            condition = pool.pop()
            condition._reset()
            condition._setup(events)
            return condition
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that fires when the first of *events* succeeds."""
        pool = self._pools[AnyOf]
        if pool:
            condition = pool.pop()
            condition._reset()
            condition._setup(events)
            return condition
        return AnyOf(self, events)

    # -- running ----------------------------------------------------------------

    # The event-processing body is deliberately inlined into step() and
    # each run() loop: one method call per event costs ~15% throughput
    # at kernel_bench scale.  Keep the four copies in sync.

    def step(self) -> None:
        """Process exactly one event from the queue."""
        entry = self._queue.pop()
        if entry is None:
            raise SimulationError("simulation queue is empty")
        self._now = entry[0]
        event = entry[3]
        entry = None  # release the entry tuple so recycling can trigger
        callbacks = event.callbacks
        event.callbacks = None
        event._processed = True
        for callback in callbacks:
            callback(event)
        self._events_processed += 1
        if not event._ok and not callbacks:
            # A failed event nobody waited on would silently swallow the
            # error; surface it instead (mirrors SimPy's behaviour).
            raise event._value
        if getrefcount(event) == 2:
            pool = self._pools.get(type(event))
            if pool is not None and len(pool) < POOL_LIMIT:
                # Hand the cleared callbacks list back to the event so
                # its next _reset (or the pooled-timeout fast path)
                # skips a list allocation.
                callbacks.clear()
                event.callbacks = callbacks
                pool.append(event)

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` when idle."""
        return self._queue.peek()

    def run_window(self, horizon: float) -> int:
        """Process every event **strictly before** *horizon*.

        The conservative-synchronization primitive
        (:mod:`repro.sim.parallel`): a logical process granted a time
        window ``[now, horizon)`` executes exactly the events inside
        it — an event scheduled *at* the horizon stays pending, because
        a message from another process may still arrive there.  On
        return the clock rests at *horizon* (when finite; an infinite
        grant leaves it at the last processed event), so later
        cross-process deliveries — guaranteed to arrive at or after
        the horizon — can never be scheduled into this window's past.

        Returns the number of events processed.
        """
        if not (horizon >= self._now):
            raise SimulationError(
                f"cannot run a window to {horizon}; clock is already "
                f"at {self._now}")
        peek = self._queue.peek
        step = self.step
        count = self._events_processed
        while peek() < horizon:
            step()
        if horizon != _INF:
            self._now = horizon
        return self._events_processed - count

    def __reduce__(self):
        raise TypeError(
            "Simulator objects are process-local and cannot be "
            "pickled; build one per process instead (see "
            "repro.sim.parallel)")

    def run(self, until: "float | Event | None" = None) -> Any:
        """Run the simulation.

        * ``until=None`` — run until no events remain.
        * ``until=<float>`` — run until the clock reaches that time
          (events scheduled exactly at that time are processed).
        * ``until=<Event>`` — run until that event is processed and return
          its value (re-raising its exception if it failed).
        """
        pools = self._pools
        refcount = getrefcount
        count = 0

        if until is None:
            pop = self._queue.pop
            try:
                while True:
                    entry = pop()
                    if entry is None:
                        return None
                    self._now = entry[0]
                    event = entry[3]
                    entry = None
                    callbacks = event.callbacks
                    event.callbacks = None
                    event._processed = True
                    for callback in callbacks:
                        callback(event)
                    count += 1
                    if not event._ok and not callbacks:
                        raise event._value
                    if refcount(event) == 2:
                        pool = pools.get(type(event))
                        if pool is not None and len(pool) < POOL_LIMIT:
                            callbacks.clear()
                            event.callbacks = callbacks
                            pool.append(event)
            finally:
                self._events_processed += count

        if isinstance(until, Event):
            sentinel = until
            if sentinel.sim is not self:
                raise SimulationError("cannot run until a foreign event")
            pop = self._queue.pop
            try:
                while not sentinel._processed:
                    entry = pop()
                    if entry is None:
                        raise SimulationError(
                            "simulation ran out of events before the "
                            "target event fired")
                    self._now = entry[0]
                    event = entry[3]
                    entry = None
                    callbacks = event.callbacks
                    event.callbacks = None
                    event._processed = True
                    for callback in callbacks:
                        callback(event)
                    count += 1
                    if not event._ok and not callbacks:
                        raise event._value
                    if refcount(event) == 2:
                        pool = pools.get(type(event))
                        if pool is not None and len(pool) < POOL_LIMIT:
                            callbacks.clear()
                            event.callbacks = callbacks
                            pool.append(event)
            finally:
                self._events_processed += count
            if not sentinel._ok:
                raise sentinel._value
            return sentinel._value

        horizon = float(until)
        if not (horizon >= self._now):
            raise SimulationError(
                f"cannot run until {horizon}; clock is already at "
                f"{self._now}")
        pop_until = self._queue.pop_until
        try:
            while True:
                entry = pop_until(horizon)
                if entry is None:
                    break
                self._now = entry[0]
                event = entry[3]
                entry = None
                callbacks = event.callbacks
                event.callbacks = None
                event._processed = True
                for callback in callbacks:
                    callback(event)
                count += 1
                if not event._ok and not callbacks:
                    raise event._value
                if refcount(event) == 2:
                    pool = pools.get(type(event))
                    if pool is not None and len(pool) < POOL_LIMIT:
                        callbacks.clear()
                        event.callbacks = callbacks
                        pool.append(event)
        finally:
            self._events_processed += count
        self._now = horizon
        return None
