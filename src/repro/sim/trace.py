"""Structured tracing for simulations.

The hardware prototype was instrumented with logic analyzers and wall
clocks; the simulation equivalent is a :class:`Tracer` that components call
to record timestamped, categorized events.  Experiment drivers query the
trace to compute the statistics the paper's figures report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One timestamped observation.

    Attributes:
        time: Simulated time of the observation, in seconds.
        category: Dotted subsystem name, e.g. ``"sdm.reserve"``.
        label: Human-readable identifier of the subject, e.g. ``"vm-3"``.
        data: Arbitrary payload (numbers, dicts) attached by the emitter.
    """

    time: float
    category: str
    label: str
    data: Any = None


@dataclass
class IntervalStats:
    """Aggregate statistics over a set of measured durations."""

    count: int = 0
    total: float = 0.0
    minimum: float = float("inf")
    maximum: float = float("-inf")
    samples: list[float] = field(default_factory=list)

    def add(self, duration: float) -> None:
        self.count += 1
        self.total += duration
        self.minimum = min(self.minimum, duration)
        self.maximum = max(self.maximum, duration)
        self.samples.append(duration)

    @property
    def mean(self) -> float:
        """Arithmetic mean of recorded durations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0


class Tracer:
    """Collects :class:`TraceRecord` entries and interval measurements."""

    def __init__(self, clock: Callable[[], float]) -> None:
        self._clock = clock
        self._records: list[TraceRecord] = []
        self._counters: dict[str, int] = {}
        self._open_intervals: dict[tuple[str, str], float] = {}
        self._intervals: dict[str, IntervalStats] = {}

    # -- point events ---------------------------------------------------------

    def record(self, category: str, label: str, data: Any = None) -> TraceRecord:
        """Append a timestamped record and return it."""
        rec = TraceRecord(self._clock(), category, label, data)
        self._records.append(rec)
        return rec

    def count(self, counter: str, amount: int = 1) -> int:
        """Increment a named counter; returns the new value."""
        self._counters[counter] = self._counters.get(counter, 0) + amount
        return self._counters[counter]

    # -- intervals --------------------------------------------------------------

    def begin(self, category: str, label: str) -> None:
        """Open an interval keyed by ``(category, label)``."""
        self._open_intervals[(category, label)] = self._clock()

    def end(self, category: str, label: str) -> float:
        """Close a previously opened interval; returns its duration."""
        key = (category, label)
        if key not in self._open_intervals:
            raise KeyError(f"no open interval for {key}")
        start = self._open_intervals.pop(key)
        duration = self._clock() - start
        self._intervals.setdefault(category, IntervalStats()).add(duration)
        return duration

    # -- queries ------------------------------------------------------------------

    @property
    def records(self) -> list[TraceRecord]:
        """All records, in emission order."""
        return list(self._records)

    def counter(self, counter: str) -> int:
        """Current value of a counter (0 if never incremented)."""
        return self._counters.get(counter, 0)

    def intervals(self, category: str) -> IntervalStats:
        """Interval statistics for *category* (empty stats if none)."""
        return self._intervals.get(category, IntervalStats())

    def select(self, category: Optional[str] = None,
               label: Optional[str] = None) -> Iterator[TraceRecord]:
        """Iterate records filtered by category and/or label."""
        for rec in self._records:
            if category is not None and rec.category != category:
                continue
            if label is not None and rec.label != label:
                continue
            yield rec

    def clear(self) -> None:
        """Drop all collected data (counters, records, intervals)."""
        self._records.clear()
        self._counters.clear()
        self._open_intervals.clear()
        self._intervals.clear()
