"""Pluggable event-queue backends for the DES kernel.

The :class:`~repro.sim.engine.Simulator` pops pending events in
``(time, priority, sequence)`` order.  That total order is unique
(sequence numbers never repeat), so *any* backend that respects it is
bit-identical to any other — which is what lets the queue be swapped
for throughput without touching determinism.

Two backends cover the workload space:

* :class:`HeapEventQueue` — the classic binary heap of tuples
  (``heapq``).  O(log n) per operation, insensitive to the event-time
  distribution.  This is the seed kernel's structure.
* :class:`CalendarEventQueue` — a calendar queue (Brown 1988): a
  slotted timer wheel.  A lone entry lives directly in the slot array
  (colliding entries share a small heap), so an insert is one store
  (O(1) for the occupancy the resizer maintains) and the dequeue
  serves the cursor's slot paying only its local ordering cost.  Slot count and width adapt to
  the live population, and a pathological distribution (almost all
  events far beyond the cursor, defeating the wheel) trips an explicit
  fallback to a single binary heap — never worse than the baseline,
  O(1) in the common case.

The common case this is built for is the short-delay timeout swarm of
``repro.datamover`` (link-scheduler grants, prefetcher issue, cache
write-back) and the admission traffic of ``repro.cluster``: millions of
events a few microseconds-to-milliseconds ahead of *now*, exactly the
shape a timer wheel turns into constant-time work.

Cancellation (:meth:`~repro.sim.engine.Event.cancel`) is lazy: the
queue decrements its live count immediately and drops the entry when it
surfaces, so cancelled events are never processed and never hold up
``run()`` — but no O(n) structure surgery happens on the hot path.
The calendar additionally counts its tombstones and compacts them away
in one rebuild once they outnumber the live population, so
cancellation-heavy traffic (admission guard timers, ``AnyOf`` losers)
cannot accrete an ever-deepening graveyard; the heap keeps the seed's
fully-lazy discipline and pays the graveyard's log factor instead.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import TYPE_CHECKING, Callable, Optional, Union

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Event

#: An entry as stored by every backend: ``(time, priority, seq, event)``.
#: Tuples compare left-to-right in C, and the unique sequence number
#: guarantees the event object itself is never compared.
Entry = "tuple[float, int, int, Event]"

_INF = float("inf")


class EventQueue:
    """Interface every scheduler backend implements.

    Entries are pushed with a monotonically increasing *sequence*; the
    backend must pop them in ``(time, priority, sequence)`` order and
    silently discard entries whose event has been cancelled.
    ``__len__`` reports *live* (non-cancelled) entries.  The engine
    guarantees pushed times never precede the time of the last popped
    entry (no scheduling into the past).
    """

    #: Short name used by ``Simulator(queue="...")`` and reporting.
    name = "abstract"

    __slots__ = ()

    def push(self, time: float, priority: int, sequence: int,
             event: "Event") -> None:
        raise NotImplementedError

    def pop(self) -> "Optional[Entry]":
        """Remove and return the next live entry, or ``None`` if empty."""
        raise NotImplementedError

    def pop_until(self, horizon: float) -> "Optional[Entry]":
        """Like :meth:`pop`, but only if the next live entry's time is
        ``<= horizon``; otherwise leave it queued and return ``None``."""
        raise NotImplementedError

    def peek(self) -> float:
        """Time of the next live entry, or ``inf`` when empty."""
        raise NotImplementedError

    def note_cancel(self, event: "Event") -> None:
        """Account for *event*'s cancellation (entry dropped lazily)."""
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError


class HeapEventQueue(EventQueue):
    """Binary-heap backend: the seed kernel's ``heapq`` of tuples."""

    name = "heap"

    __slots__ = ("_heap", "_live", "peak_size")

    def __init__(self) -> None:
        self._heap: list = []
        self._live = 0
        #: High-water mark of live entries (the bench's "peak heap").
        self.peak_size = 0

    def push(self, time: float, priority: int, sequence: int,
             event: "Event") -> None:
        heappush(self._heap, (time, priority, sequence, event))
        live = self._live = self._live + 1
        if live > self.peak_size:
            self.peak_size = live

    def pop(self):
        heap = self._heap
        while heap:
            entry = heappop(heap)
            if entry[3]._cancelled:
                continue
            self._live -= 1
            return entry
        return None

    def pop_until(self, horizon: float):
        heap = self._heap
        while heap:
            head = heap[0]
            if head[3]._cancelled:
                heappop(heap)
                continue
            if head[0] > horizon:
                return None
            self._live -= 1
            return heappop(heap)
        return None

    def peek(self) -> float:
        heap = self._heap
        while heap:
            head = heap[0]
            if head[3]._cancelled:
                heappop(heap)
                continue
            return head[0]
        return _INF

    def note_cancel(self, event: "Event") -> None:
        self._live -= 1

    def __len__(self) -> int:
        return self._live


class CalendarEventQueue(EventQueue):
    """Calendar-queue backend: a timer wheel with direct-resident slots.

    Geometry: ``count`` slots (a power of two) of ``width`` seconds
    each.  An entry's slot is ``int(time / width) & (count - 1)``, so
    one *year* (``count * width`` seconds) wraps around the wheel and a
    slot may simultaneously hold entries of future years.  The cursor
    tracks the slot of the next pending entry; a dequeue pops the
    cursor slot's head if it falls inside the cursor's time window and
    otherwise advances.

    A slot is ``None`` (empty), a single resident entry tuple (the
    common case while the resizer keeps occupancy near one entry per
    slot), or — on collision — a small heap of entries.  Keeping the
    lone entry *in* the slot array instead of a one-element list makes
    the hot path one store/load with no container allocation and no
    ``heapq`` call, and walks over empty slots are sequential reads of
    a flat pointer array.

    Self-tuning: when the live population crosses one entry per slot
    (or falls below an eighth of that) the wheel rebuilds, re-deriving
    the slot count and width from the population and a sampled
    10th-90th percentile span of pending times, targeting ~0.5 entries
    per slot — at that load most slots hold zero or one entry, so the
    collision path stays rare (Poisson: at occupancy 1 nearly two
    thirds of inserts would collide).  If the cursor keeps sweeping
    whole years without finding work (a far-future spike the wheel
    cannot cover — the calendar queue's known pathology), the queue
    falls back to a single binary heap and retries the wheel at the
    next rebuild trigger.
    """

    name = "calendar"

    #: Slot-count bounds (powers of two).
    MIN_SLOTS = 16
    MAX_SLOTS = 1 << 22

    #: Live entries per slot a rebuild aims for.  The next rebuild
    #: triggers when occupancy leaves the band [target/4, target*4],
    #: so the population must double twice (or halve twice) between
    #: rebuilds — the thresholds cannot fight the target.
    TARGET_OCCUPANCY = 0.5

    #: Full-year cursor sweeps (between rebuilds) tolerated before the
    #: wheel is declared beaten and the heap fallback engages.
    MAX_FRUITLESS_SWEEPS = 8

    __slots__ = ("_slots", "_count", "_mask", "_width", "_inv_width",
                 "_cur", "_live", "_debris", "_grow_at", "_shrink_at",
                 "_sweeps", "_heap", "peak_size")

    def __init__(self, slot_count: int = 0,
                 slot_width: float = 0.0) -> None:
        count = slot_count or self.MIN_SLOTS
        if count & (count - 1):
            raise SimulationError(
                f"slot count must be a power of two, got {count}")
        self._live = 0
        self._debris = 0
        self._sweeps = 0
        #: Non-None when the pathology fallback is engaged.
        self._heap: Optional[list] = None
        self.peak_size = 0
        self._install(count, slot_width or 1e-6, base_time=0.0)

    def _install(self, count: int, width: float, base_time: float) -> None:
        """Adopt a new (count, width) geometry anchored at *base_time*."""
        self._count = count
        self._mask = count - 1
        self._width = width
        self._inv_width = 1.0 / width
        self._slots: list = [None] * count
        self._cur = int(base_time * self._inv_width)
        target = self.TARGET_OCCUPANCY
        # A x2 band around the rebuild sizing (which lands the live
        # population in [count*target/2, count*target]): tight enough
        # that a filled queue never rests above ~2x the target
        # occupancy — past that, slots hold collision heaps instead of
        # single resident tuples and every operation pays for it — yet
        # wide enough that a rebuild moves the population at least a
        # factor of two from both triggers (no thrash).
        self._grow_at = int(count * target * 2)
        self._shrink_at = (int(count * target * 0.5)
                           if count > self.MIN_SLOTS else 0)
        self._sweeps = 0

    # -- insertion ----------------------------------------------------------

    def push(self, time: float, priority: int, sequence: int,
             event: "Event") -> None:
        live = self._live = self._live + 1
        if live > self.peak_size:
            self.peak_size = live
        heap = self._heap
        if heap is not None:
            heappush(heap, (time, priority, sequence, event))
            if live > self._grow_at:
                self._rebuild()
            return
        slot = int(time * self._inv_width)
        cur = self._cur
        if slot < cur:
            # peek() may advance the cursor right up to the next pending
            # entry; a zero-delay push can then land "behind" it.  Clamp
            # into the cursor slot — the window check on pop tolerates
            # early heads, and no earlier entry can exist elsewhere.
            slot = cur
        slots = self._slots
        idx = slot & self._mask
        bucket = slots[idx]
        if bucket is None:
            slots[idx] = (time, priority, sequence, event)
        elif bucket.__class__ is tuple:
            # Collision: promote the resident entry to a two-entry heap.
            # Entry tuples order by (time, priority, sequence) and the
            # sequence is unique, so the comparison never reaches the
            # event object.
            entry = (time, priority, sequence, event)
            slots[idx] = [entry, bucket] if entry < bucket else [bucket,
                                                                 entry]
        else:
            heappush(bucket, (time, priority, sequence, event))
        if live > self._grow_at:
            self._rebuild()

    # -- geometry adaptation ------------------------------------------------

    def _pending_entries(self) -> list:
        """Every pending live entry (cancelled debris is dropped here)."""
        if self._heap is not None:
            return [e for e in self._heap if not e[3]._cancelled]
        out = []
        append = out.append
        for bucket in self._slots:
            if bucket is None:
                continue
            if bucket.__class__ is tuple:
                if not bucket[3]._cancelled:
                    append(bucket)
            else:
                for e in bucket:
                    if not e[3]._cancelled:
                        append(e)
        return out

    @classmethod
    def _derive_width(cls, entries: list, count: int,
                      fallback: float) -> float:
        """Slot width from a sampled 10th-90th percentile time span.

        Percentiles rather than min/max keep one far-future outlier
        from stretching the width until every near-term event shares a
        single slot.  Aims at :data:`TARGET_OCCUPANCY` live entries per
        slot across the span.
        """
        if not entries:
            return fallback
        stride = max(1, len(entries) // 1024)
        times = sorted(e[0] for e in entries[::stride])
        lo = times[int(len(times) * 0.10)]
        hi = times[int((len(times) - 1) * 0.90)]
        span = hi - lo
        if span <= 0.0:
            return fallback
        # The sampled window holds ~80% of the population; spread it
        # over enough slots that the whole population averages the
        # target occupancy.
        spread = max(1, int(len(entries) * 0.8 / cls.TARGET_OCCUPANCY))
        return max(span / spread, 1e-12)

    def _rebuild(self) -> None:
        """Re-derive geometry from the pending population and reload.

        Triggered by population thresholds and by the pathology
        detector.  Entering here always exits heap-fallback mode first;
        the fallback re-engages only if the fresh wheel is also beaten.
        """
        entries = self._pending_entries()
        live = len(entries)
        self._live = live
        self._debris = 0  # rebuilds drop every cancelled entry
        count = self._count
        target = self.TARGET_OCCUPANCY
        # Size for the target occupancy (grow to live/target slots,
        # shrink only below half of it, so the two loops cannot fight).
        while live > count * target and count < self.MAX_SLOTS:
            count <<= 1
        while live < count * target * 0.5 and count > self.MIN_SLOTS:
            count >>= 1
        base = min((e[0] for e in entries), default=self._cur * self._width)
        width = self._derive_width(entries, count, fallback=self._width)
        self._heap = None
        self._install(count, width, base_time=base)
        if live > self._grow_at:
            # count is pinned at MAX_SLOTS; leave the grow trigger below
            # the population and every subsequent push re-runs this
            # whole rebuild.  Park it at 2x so growth stays geometric.
            self._grow_at = live * 2
        slots = self._slots
        mask = self._mask
        inv_width = self._inv_width
        cur = self._cur
        collided = []
        for entry in entries:
            slot = int(entry[0] * inv_width)
            idx = (slot if slot > cur else cur) & mask
            bucket = slots[idx]
            if bucket is None:
                slots[idx] = entry
            elif bucket.__class__ is tuple:
                bucket = [bucket, entry]
                slots[idx] = bucket
                collided.append(bucket)
            else:
                bucket.append(entry)
        for bucket in collided:
            heapify(bucket)

    def _fall_back_to_heap(self) -> None:
        """The wheel is beaten: collapse every slot into one heap."""
        entries = self._pending_entries()
        heapify(entries)
        self._heap = entries
        self._slots = []
        self._debris = 0
        # Retry the wheel once the population has doubled or collapsed;
        # without moving the thresholds a stable population would
        # re-trip the detector immediately after every rebuild.
        self._grow_at = max(self._grow_at, len(entries) * 2)
        self._shrink_at = max(1, len(entries) // 2)

    # -- removal ------------------------------------------------------------

    def _jump(self) -> Optional[int]:
        """Year-sweep recovery: locate the earliest pending slot.

        Called when the cursor swept a whole year without serving an
        entry.  Returns the slot of the earliest pending entry (an
        O(count) scan), ``None`` when nothing is pending, or ``-1``
        after tripping the heap fallback (repeated sweeps mean the
        distribution has beaten the wheel).
        """
        self._sweeps += 1
        if self._sweeps > self.MAX_FRUITLESS_SWEEPS:
            self._fall_back_to_heap()
            return -1
        earliest = _INF
        slots = self._slots
        for idx, bucket in enumerate(slots):
            if bucket is None:
                continue
            if bucket.__class__ is tuple:
                if bucket[3]._cancelled:
                    slots[idx] = None
                elif bucket[0] < earliest:
                    earliest = bucket[0]
                continue
            while bucket and bucket[0][3]._cancelled:
                heappop(bucket)
            if bucket:
                if bucket[0][0] < earliest:
                    earliest = bucket[0][0]
            else:
                slots[idx] = None
        if earliest == _INF:
            return None
        return int(earliest * self._inv_width)

    # pop / pop_until / peek inline the cursor walk (a nested call per
    # event costs real throughput at kernel_bench scale); the three
    # copies must stay in sync.

    def pop(self):
        heap = self._heap
        if heap is not None:
            while heap:
                if heap[0][3]._cancelled:
                    heappop(heap)
                    continue
                self._live -= 1
                return heappop(heap)
            return None
        if not self._live:
            return None
        slots = self._slots
        mask = self._mask
        # The serve test recomputes the entry's home slot with the
        # same ``int(time * inv_width)`` arithmetic push uses, instead
        # of comparing times against an accumulated window edge —
        # boundary rounding must agree between insert and serve or an
        # exact-boundary entry strands in a passed slot for a year.
        inv_width = self._inv_width
        cur = self._cur
        year_end = cur + self._count
        while True:
            idx = cur & mask
            bucket = slots[idx]
            if bucket is not None:
                if bucket.__class__ is tuple:
                    if bucket[3]._cancelled:
                        slots[idx] = None
                    elif int(bucket[0] * inv_width) <= cur:
                        slots[idx] = None
                        self._cur = cur
                        live = self._live = self._live - 1
                        if live < self._shrink_at:
                            self._rebuild()
                        return bucket
                    # else: a future-year resident — advance past it.
                else:
                    while bucket:
                        head = bucket[0]
                        if head[3]._cancelled:
                            heappop(bucket)
                            continue
                        if int(head[0] * inv_width) <= cur:
                            self._cur = cur
                            live = self._live = self._live - 1
                            heappop(bucket)
                            if live < self._shrink_at:
                                self._rebuild()
                            return head
                        break
                    if not bucket:
                        slots[idx] = None
            cur += 1
            if cur >= year_end:
                cur = self._jump()
                if cur is None:
                    return None
                if cur < 0:  # fell back to a plain heap
                    return self.pop()
                year_end = cur + self._count

    def pop_until(self, horizon: float):
        heap = self._heap
        if heap is not None:
            while heap:
                head = heap[0]
                if head[3]._cancelled:
                    heappop(heap)
                    continue
                if head[0] > horizon:
                    return None
                self._live -= 1
                return heappop(heap)
            return None
        if not self._live:
            return None
        slots = self._slots
        mask = self._mask
        width = self._width
        cur = self._cur
        window_end = (cur + 1) * width
        year_end = cur + self._count
        while True:
            idx = cur & mask
            bucket = slots[idx]
            if bucket is not None:
                if bucket.__class__ is tuple:
                    if bucket[3]._cancelled:
                        slots[idx] = None
                    elif bucket[0] < window_end:
                        self._cur = cur
                        if bucket[0] > horizon:
                            return None
                        slots[idx] = None
                        live = self._live = self._live - 1
                        if live < self._shrink_at:
                            self._rebuild()
                        return bucket
                    # else: a future-year resident — advance past it.
                else:
                    while bucket:
                        head = bucket[0]
                        if head[3]._cancelled:
                            heappop(bucket)
                            continue
                        if head[0] < window_end:
                            self._cur = cur
                            if head[0] > horizon:
                                return None
                            live = self._live = self._live - 1
                            heappop(bucket)
                            if live < self._shrink_at:
                                self._rebuild()
                            return head
                        break
                    if not bucket:
                        slots[idx] = None
            cur += 1
            window_end += width
            if cur >= year_end:
                cur = self._jump()
                if cur is None:
                    return None
                if cur < 0:  # fell back to a plain heap
                    return self.pop_until(horizon)
                window_end = (cur + 1) * width
                year_end = cur + self._count

    def peek(self) -> float:
        heap = self._heap
        if heap is not None:
            while heap:
                head = heap[0]
                if head[3]._cancelled:
                    heappop(heap)
                    continue
                return head[0]
            return _INF
        if not self._live:
            return _INF
        slots = self._slots
        mask = self._mask
        width = self._width
        cur = self._cur
        window_end = (cur + 1) * width
        year_end = cur + self._count
        while True:
            idx = cur & mask
            bucket = slots[idx]
            if bucket is not None:
                if bucket.__class__ is tuple:
                    if bucket[3]._cancelled:
                        slots[idx] = None
                    elif bucket[0] < window_end:
                        self._cur = cur
                        return bucket[0]
                    # else: a future-year resident — advance past it.
                else:
                    while bucket:
                        head = bucket[0]
                        if head[3]._cancelled:
                            heappop(bucket)
                            continue
                        if head[0] < window_end:
                            self._cur = cur
                            return head[0]
                        break
                    if not bucket:
                        slots[idx] = None
            cur += 1
            window_end += width
            if cur >= year_end:
                cur = self._jump()
                if cur is None:
                    return _INF
                if cur < 0:  # fell back to a plain heap
                    return self.peek()
                window_end = (cur + 1) * width
                year_end = cur + self._count

    def note_cancel(self, event: "Event") -> None:
        live = self._live = self._live - 1
        debris = self._debris = self._debris + 1
        # Compact once tombstones outnumber live entries: a rebuild
        # drops every cancelled entry for free while redistributing.
        # The lazy heap backend cannot shed debris without
        # re-heapifying, so cancellation-heavy swarms (guard timers
        # that almost never fire) leave it paying log(live + debris)
        # per operation while the wheel stays sized to the live
        # population.  The counter overstates debris the cursor
        # already swept up — that only brings an occasional rebuild
        # forward, and rebuilds stay amortized O(1) per cancellation
        # at this threshold.
        if debris > live + 64:
            self._rebuild()

    def __len__(self) -> int:
        return self._live


#: Registry of backend names -> factory, for ``Simulator(queue="name")``.
QUEUE_BACKENDS: "dict[str, Callable[[], EventQueue]]" = {
    "heap": HeapEventQueue,
    "calendar": CalendarEventQueue,
}

#: Type accepted wherever a queue backend can be chosen.
QueueLike = Union[None, str, EventQueue, Callable[[], EventQueue]]


def make_queue(queue: QueueLike, default: str = "calendar") -> EventQueue:
    """Resolve a backend selector to a fresh :class:`EventQueue`.

    Accepts ``None`` (use *default*), a backend name from
    :data:`QUEUE_BACKENDS`, an :class:`EventQueue` instance (used as
    is), or a zero-argument factory/class.
    """
    if queue is None:
        queue = default
    if isinstance(queue, str):
        try:
            factory = QUEUE_BACKENDS[queue]
        except KeyError:
            known = ", ".join(sorted(QUEUE_BACKENDS))
            raise SimulationError(
                f"unknown event-queue backend {queue!r}; "
                f"known: {known}") from None
        return factory()
    if isinstance(queue, EventQueue):
        return queue
    if callable(queue):
        made = queue()
        if not isinstance(made, EventQueue):
            raise SimulationError(
                f"queue factory returned {type(made).__name__}, "
                f"not an EventQueue")
        return made
    raise SimulationError(
        f"queue must be a backend name, EventQueue or factory, "
        f"got {type(queue).__name__}")
