"""dReDBox reproduction: a full-stack rack-scale disaggregated datacenter.

A Python reproduction of *"dReDBox: Materializing a full-stack rack-scale
system prototype of a next-generation disaggregated datacenter"*
(Bielski et al., DATE 2018).

Quick start::

    from repro import RackBuilder, VmAllocationRequest, gib

    system = (RackBuilder("rack0")
              .with_compute_bricks(4, cores=16)
              .with_memory_bricks(4, modules=4, module_size=gib(16))
              .build())
    boot = system.boot_vm(VmAllocationRequest("vm-0", vcpus=4,
                                              ram_bytes=gib(8)))
    result = system.scale_up("vm-0", gib(2))
    print(result.total_latency_s)

Sub-packages (bottom-up):

* :mod:`repro.sim` — discrete-event simulation kernel.
* :mod:`repro.hardware` — bricks, trays, rack, MBO, RMST, glue logic.
* :mod:`repro.network` — optical circuit plane + packet plane.
* :mod:`repro.memory` — segments, allocation, remote access paths.
* :mod:`repro.datamover` — remote page cache, adaptive granularity,
  multi-queue link scheduling, prefetch (the DaeMon layer).
* :mod:`repro.software` — hotplug, kernel, hypervisor, scale-up.
* :mod:`repro.orchestration` — SDM controller, placement, OpenStack.
* :mod:`repro.core` — the assembled system.
* :mod:`repro.cluster` — event-driven control plane: tenant traces,
  admission queue, batched dispatch, defragmentation.
* :mod:`repro.tco` — the §VI TCO simulation study.
* :mod:`repro.apps` — the §V pilot applications.
* :mod:`repro.experiments` — one driver per paper table/figure.
"""

from repro.cluster.control_plane import ControlPlane
from repro.cluster.defrag import DefragmentationTask
from repro.cluster.trace import (
    TenantTrace,
    bursty_trace,
    diurnal_trace,
    poisson_trace,
)
from repro.core.builder import PodBuilder, RackBuilder
from repro.core.flows import TimedScaleUpHarness
from repro.core.metrics import snapshot
from repro.core.system import DisaggregatedRack, DisaggregatedSystem
from repro.datamover.mover import DataMover, MoverConfig
from repro.errors import ReproError
from repro.orchestration.requests import (
    MemoryAllocationRequest,
    VmAllocationRequest,
)
from repro.units import gbps, gib, mib

__version__ = "1.2.0"

__all__ = [
    "ControlPlane",
    "DataMover",
    "DefragmentationTask",
    "DisaggregatedRack",
    "DisaggregatedSystem",
    "MemoryAllocationRequest",
    "MoverConfig",
    "PodBuilder",
    "RackBuilder",
    "ReproError",
    "TenantTrace",
    "TimedScaleUpHarness",
    "VmAllocationRequest",
    "__version__",
    "bursty_trace",
    "diurnal_trace",
    "gbps",
    "gib",
    "mib",
    "poisson_trace",
    "snapshot",
]
