"""Exception hierarchy for the dReDBox reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to discriminate by subsystem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class SimulationError(ReproError):
    """Raised for misuse of the discrete-event simulation kernel."""


class HardwareError(ReproError):
    """Base class for errors originating in the hardware models."""


class PowerStateError(HardwareError):
    """An operation was attempted on a component in the wrong power state."""


class SlotError(HardwareError):
    """A tray/rack slot operation failed (occupied, empty, out of range)."""


class PortError(HardwareError):
    """A transceiver/port operation failed (no free port, bad wiring)."""


class SegmentTableError(HardwareError):
    """RMST misuse: overlapping segments, table full, missing mapping."""


class NetworkError(ReproError):
    """Base class for interconnect errors."""


class CircuitError(NetworkError):
    """Optical circuit setup/teardown failed (no path, port busy)."""


class FabricError(NetworkError):
    """Pod-fabric topology error (unknown rack, uplink exhaustion)."""


class LinkBudgetError(NetworkError):
    """An optical link violates its power budget or BER requirement."""


class RoutingError(NetworkError):
    """Packet-path routing failed (no lookup entry, unreachable node)."""


class MemoryError_(ReproError):
    """Base class for disaggregated-memory errors.

    Named with a trailing underscore to avoid shadowing the built-in
    :class:`MemoryError`.
    """


class AddressError(MemoryError_):
    """An address fell outside every mapped segment or overlapped one."""


class AllocationError(MemoryError_):
    """A segment/capacity allocation request could not be satisfied."""


class SoftwareError(ReproError):
    """Base class for system-software (kernel/hypervisor) errors."""


class HotplugError(SoftwareError):
    """Memory hotplug failed (misaligned block, bad state transition)."""


class HypervisorError(SoftwareError):
    """Hypervisor-level failure (unknown VM, DIMM slot exhaustion)."""


class BalloonError(SoftwareError):
    """Memory-balloon inflate/deflate request was invalid."""


class OrchestrationError(ReproError):
    """Base class for orchestration-plane errors."""


class ReservationError(OrchestrationError):
    """Resource reservation could not be satisfied or was double-committed."""


class PlacementError(OrchestrationError):
    """No placement satisfies the request under the active policy."""


class FederationError(OrchestrationError):
    """Multi-pod federation failure (unknown pod/tenant, bad policy)."""


class SchedulingError(ReproError):
    """TCO-study scheduler failure (workload cannot be admitted)."""


class ConfigurationError(ReproError):
    """Invalid user-supplied configuration or parameters."""


class TopologyError(ConfigurationError):
    """Invalid datacenter topology: a spec that fails validation or a
    builder given impossible rack/brick counts.

    ``path`` locates the offending field inside a declarative
    :mod:`repro.topology` spec (e.g. ``"domains[1].mtbf_s"``); builders
    raising on bad counts leave it empty.  The message always carries
    the path prefix, so catching as :class:`ConfigurationError` loses
    nothing.
    """

    def __init__(self, message: str, *, path: str = "") -> None:
        super().__init__(f"{path}: {message}" if path else message)
        self.path = path


class DataMoverError(ReproError):
    """Error in the remote-memory data-movement subsystem."""


class FaultError(ReproError):
    """Fault-injection misuse (unknown class/target, bad MTBF/MTTR,
    conflicting scripted outages)."""


class LifecycleError(OrchestrationError):
    """Illegal brick-lifecycle transition (e.g. active -> enrolled) or an
    operation attempted in the wrong lifecycle state."""


class MaintenanceError(OrchestrationError):
    """Rolling-maintenance failure (drain aborted, verify mismatch,
    overlapping drains on the same scope)."""


class ParallelSimError(SimulationError):
    """Conservative parallel-simulation failure (zero lookahead,
    stalled barrier, or a crashed worker process)."""
