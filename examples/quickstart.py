#!/usr/bin/env python
"""Quickstart: build a disaggregated rack, boot a VM, scale its memory.

Walks the paper's core flow end to end:

1. assemble a rack of dCOMPUBRICKs and dMEMBRICKs wired through the
   optical circuit switch (§II-III);
2. boot a VM whose memory exceeds the local DRAM of any compute brick —
   the SDM controller attaches remote segments at boot (§IV);
3. scale the running VM up and back down through the Scale-up API;
4. power off every unutilized brick (the §VI TCO lever).

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import RackBuilder, VmAllocationRequest, gib, snapshot


def main() -> None:
    # -- 1. assemble the rack ------------------------------------------------
    system = (RackBuilder("rack0")
              .with_compute_bricks(4, cores=16, local_memory=gib(4))
              .with_memory_bricks(4, modules=4, module_size=gib(16))
              .with_accelerator_bricks(1)
              .build())
    print(f"built: {system}")
    print(f"  optical switch: {system.fabric.switch.port_count} ports, "
          f"{system.fabric.switch.switching_time_s * 1e3:.0f} ms "
          f"reconfiguration")

    # -- 2. boot a VM bigger than any single brick's local DRAM ---------------
    info = system.boot_vm(
        VmAllocationRequest("vm-0", vcpus=8, ram_bytes=gib(24)))
    print(f"\nbooted {info.vm.vm_id} on {info.brick_id} "
          f"in {info.latency_s:.2f} s (simulated)")
    print(f"  guest RAM: {info.vm.configured_ram_bytes / gib(1):.0f} GiB "
          f"({len(info.boot_segments)} remote segments)")
    for segment in info.boot_segments:
        print(f"  - {segment.segment_id}: {segment.size / gib(1):.0f} GiB "
              f"on {segment.memory_brick_id} @ {segment.offset:#x}")

    # -- 3. runtime elasticity: the Scale-up API -------------------------------
    result = system.scale_up("vm-0", gib(8))
    print(f"\nscale-up of 8 GiB took {result.total_latency_s:.3f} s:")
    for step, latency in result.steps.items():
        print(f"  {step:<14s} {latency * 1e3:8.1f} ms")
    print(f"  guest RAM now: "
          f"{info.vm.configured_ram_bytes / gib(1):.0f} GiB")

    steps = system.scale_down("vm-0", result.segment.segment_id)
    print(f"scale-down took {sum(steps.values()):.3f} s")

    # -- 4. power off everything unutilized --------------------------------------
    before = snapshot(system)
    powered_off = system.power_off_idle()
    after = snapshot(system)
    print(f"\npowered off {len(powered_off)} idle bricks: "
          f"{before.power_draw_w:.0f} W -> {after.power_draw_w:.0f} W "
          f"({1 - after.power_draw_w / before.power_draw_w:.0%} saved)")

    print(f"\nfinal state: {after.vm_count} VM(s), "
          f"core utilization {after.core_utilization:.0%}, "
          f"memory utilization {after.memory_utilization:.0%}, "
          f"{after.active_circuits} optical circuit(s) lit")


if __name__ == "__main__":
    main()
