#!/usr/bin/env python
"""VM migration on a disaggregated rack (§I objective).

With memory on dMEMBRICKs, migrating a VM re-points its segments — swing
the optical circuit, program a fresh RMST entry, hotplug the windows on
the destination — instead of copying gigabytes over the network.  Only
the local-DRAM slice and the device state move.

Run:  python examples/live_migration.py
"""

from __future__ import annotations

from repro import RackBuilder, VmAllocationRequest, gib
from repro.core.migration import MigrationFlow


def main() -> None:
    system = (RackBuilder("migration-rack")
              .with_compute_bricks(3, cores=16, local_memory=gib(2))
              .with_memory_bricks(4, modules=4, module_size=gib(16))
              .build())

    info = system.boot_vm(
        VmAllocationRequest("db-vm", vcpus=8, ram_bytes=gib(48)))
    system.scale_up("db-vm", gib(8))
    print(f"booted db-vm on {info.brick_id}: "
          f"{info.vm.configured_ram_bytes / gib(1):.0f} GiB guest, "
          f"{len(info.boot_segments) + 1} remote segments")

    target = next(b.brick_id for b in system.compute_bricks
                  if b.brick_id != info.brick_id)
    print(f"\nmigrating db-vm -> {target} "
          f"(e.g. to drain {info.brick_id} for a technology refresh)")

    report = system.migrate_vm("db-vm", target)
    print("\nmigration ledger:")
    for step, latency in report.steps.items():
        print(f"  {step:<18s} {latency:8.3f} s")
    print(f"  {'total':<18s} {report.total_s:8.3f} s")

    print(f"\nbytes re-pointed (never moved): "
          f"{report.repointed_bytes / gib(1):6.1f} GiB")
    print(f"bytes actually copied:          "
          f"{report.copied_bytes / gib(1):6.2f} GiB")
    print(f"\nconventional full-copy estimate: "
          f"{report.conventional_estimate_s:.1f} s")
    print(f"disaggregated advantage:         "
          f"{report.speedup_vs_conventional:.1f}x faster")

    hosted = system.hosting("db-vm")
    print(f"\ndb-vm now running on {hosted.brick_id} with "
          f"{hosted.vm.configured_ram_bytes / gib(1):.0f} GiB — same "
          f"memory bricks, new compute brick.")

    # The advantage grows with guest size: the copied slice is bounded.
    flow = MigrationFlow(system)
    print("\nfull-copy estimates by guest size (the gap this avoids):")
    for size in (16, 64, 256):
        print(f"  {size:4d} GiB guest: "
              f"{flow.conventional_estimate_s(gib(size)):7.1f} s")


if __name__ == "__main__":
    main()
