#!/usr/bin/env python
"""Multi-tenant elasticity: balloons + hotplug across a rack's VMs.

The project objective (§I): "an appropriately revisited design of
virtual memory ballooning subsystem for elastic distribution of
disaggregated memory".  Two tenants with anti-correlated load share one
rack; the :class:`ElasticMemoryManager` shifts memory between them —
whole segments through the SDM hotplug path, sub-segment trims through
the balloons.

Run:  python examples/elastic_multi_tenant.py
"""

from __future__ import annotations

import math

from repro import RackBuilder, VmAllocationRequest, gib
from repro.orchestration.elasticity import ElasticMemoryManager


def main() -> None:
    system = (RackBuilder("tenant-rack")
              .with_compute_bricks(2, cores=16, local_memory=gib(4))
              .with_memory_bricks(2, modules=2, module_size=gib(8))
              .build())
    # A deliberately tight pool: 32 GiB of dMEMBRICK capacity that both
    # tenants could not peak on simultaneously.
    system.boot_vm(VmAllocationRequest("batch-tenant", vcpus=8,
                                       ram_bytes=gib(4)))
    system.boot_vm(VmAllocationRequest("web-tenant", vcpus=8,
                                       ram_bytes=gib(4)))

    manager = ElasticMemoryManager(system, step_bytes=gib(1),
                                   headroom_fraction=0.1)
    manager.manage("batch-tenant")
    manager.manage("web-tenant")

    print("anti-correlated demand over 12 intervals "
          "(batch peaks when web idles):\n")
    print(f"{'t':>3} {'batch demand':>13} {'web demand':>11} "
          f"{'batch prov.':>12} {'web prov.':>10} {'actions':>8}")

    base = gib(3)
    swing = gib(14)
    total_actions = 0
    for step in range(12):
        phase = 2.0 * math.pi * step / 12.0
        batch_demand = base + int(swing * 0.5 * (1 + math.cos(phase)))
        web_demand = base + int(swing * 0.5 * (1 - math.cos(phase)))
        manager.set_demand("batch-tenant", batch_demand)
        manager.set_demand("web-tenant", web_demand)
        report = manager.rebalance()
        total_actions += len(report.actions)

        batch_vm = system.hosting("batch-tenant").vm
        web_vm = system.hosting("web-tenant").vm
        print(f"{step:>3} {batch_demand / gib(1):>11.1f} G "
              f"{web_demand / gib(1):>9.1f} G "
              f"{batch_vm.ram_bytes / gib(1):>10.1f} G "
              f"{web_vm.ram_bytes / gib(1):>8.1f} G "
              f"{len(report.actions):>8}")
        if report.unmet_demand_bytes:
            print(f"    (unmet: {report.unmet_demand_bytes / gib(1):.1f} G)")

    pool_total = sum(b.capacity_bytes for b in system.memory_bricks)
    peak_sum = 2 * (base + swing)
    print(f"\npool: {pool_total / gib(1):.0f} GiB; sum of tenant peaks: "
          f"{peak_sum / gib(1):.0f} GiB — static provisioning could not "
          f"host both.")
    print(f"elastic redistribution carried both tenants with "
          f"{total_actions} adjustments.")


if __name__ == "__main__":
    main()
