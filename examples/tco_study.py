#!/usr/bin/env python
"""The §VI TCO value-proposition study, end to end.

Schedules every Table I workload mix onto a conventional and a
dReDBox-style datacenter of equal aggregate resources (Fig. 11), then
reports the power-off percentages (Fig. 12) and the normalized power
consumption (Fig. 13).

Run:  python examples/tco_study.py
"""

from __future__ import annotations

from repro.analysis.figures import render_grouped_bars
from repro.analysis.tables import render_table
from repro.tco.study import TcoStudy


def main() -> None:
    study = TcoStudy(node_count=64, cores_per_node=32, ram_per_node_gib=32,
                     demand_fraction=0.85, seed=2018)
    results = study.run_all()

    print(render_table(
        ["workload", "VMs", "conv. hosts off", "dCOMPUBRICKs off",
         "dMEMBRICKs off", "normalized power", "savings"],
        [(r.config_name, r.vm_count,
          f"{r.conventional_poweroff:.1%}",
          f"{r.compute_brick_poweroff:.1%}",
          f"{r.memory_brick_poweroff:.1%}",
          f"{r.normalized_power:.1%}",
          f"{r.energy_savings:.1%}")
         for r in results],
        title="TCO study: 64 nodes x 32 cores / 32 GB vs "
              "64+64 bricks (equal aggregates)"))

    print()
    print(render_grouped_bars(
        [r.config_name for r in results],
        {
            "conventional off %": [100 * r.conventional_poweroff
                                   for r in results],
            "dReDBox off %": [100 * r.disaggregated_poweroff
                              for r in results],
        },
        title="Fig. 12 rendition: powered-off units"))

    best = max(results, key=lambda r: r.energy_savings)
    print(f"\nheadline: up to "
          f"{max(r.best_brick_poweroff for r in results):.0%} of one brick "
          f"type powered off; best energy saving {best.energy_savings:.0%} "
          f"({best.config_name}).")
    print("conventional datacenters cannot follow: cores and memory are "
          "welded to the same mainboard.")


if __name__ == "__main__":
    main()
