#!/usr/bin/env python
"""Pilot application 1: event-driven video-surveillance analytics (§V).

Security organizations review up to "100,000 hours of video or more" per
investigation, and the arrival of investigations "cannot be scheduled or
predicted".  This scenario drives a stream of Poisson-arriving cases
against one analytics VM that scales its memory to each case's working
set — the elasticity dReDBox contributes.

Run:  python examples/video_surveillance.py
"""

from __future__ import annotations

import numpy as np

from repro import RackBuilder, VmAllocationRequest, gib
from repro.apps.video_analytics import (
    VideoAnalyticsScenario,
    generate_investigations,
)


def main() -> None:
    system = (RackBuilder("surveillance-rack")
              .with_compute_bricks(2, cores=16, local_memory=gib(4))
              .with_memory_bricks(6, modules=4, module_size=gib(16))
              .build())
    system.boot_vm(
        VmAllocationRequest("analytics-vm", vcpus=8, ram_bytes=gib(4)))
    print(f"rack: {system}")

    rng = np.random.default_rng(2018)
    events = generate_investigations(
        count=12, rng=rng,
        mean_interarrival_s=3600.0,
        mean_video_hours=20_000.0)
    print(f"\n{len(events)} investigations, "
          f"{min(e.video_hours for e in events):,.0f} - "
          f"{max(e.video_hours for e in events):,.0f} hours of footage each")

    scenario = VideoAnalyticsScenario(system, "analytics-vm")
    report = scenario.run(events)

    print(f"\nscale events: {report.scale_up_events} up / "
          f"{report.scale_down_events} down")
    print(f"mean time-to-capacity per case: "
          f"{report.mean_scale_latency_s:.3f} s (simulated)")
    print(f"largest case working set: "
          f"{report.details['peak_case_gib']:.1f} GiB")

    # The punchline: a conventional server would need to be provisioned
    # for the largest case at all times.
    peak = report.peak_demand_bytes / gib(1)
    print(f"\nstatic provisioning would hold {peak:.1f} GiB permanently;")
    print(f"elastic provisioning averaged "
          f"{report.mean_provisioned_bytes / gib(1):.1f} GiB "
          f"({report.provisioning_efficiency():.0%} of peak)")


if __name__ == "__main__":
    main()
