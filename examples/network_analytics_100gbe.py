#!/usr/bin/env python
"""Pilot application 3: network analytics at 100 GbE (§V).

Two modes, as the paper prescribes:

* **online** — every frame on the monitored 100 GbE link is classified
  at line rate by a reconfigurable accelerator on a dACCELBRICK
  (bitstream pushed and programmed through the PCAP middleware of §II);
* **offline** — the frames marked relevant are deep-analyzed on a
  compute VM whose memory is scaled to the capture's working set,
  removing the postponement a fixed-memory node would impose.

Run:  python examples/network_analytics_100gbe.py
"""

from __future__ import annotations

import numpy as np

from repro import RackBuilder, VmAllocationRequest, gib
from repro.apps.network_analytics import NetworkAnalyticsScenario


def main() -> None:
    system = (RackBuilder("probe-rack")
              .with_compute_bricks(2, cores=16, local_memory=gib(2))
              .with_memory_bricks(4, modules=4, module_size=gib(16))
              .with_accelerator_bricks(1)
              .build())
    system.boot_vm(
        VmAllocationRequest("offline-vm", vcpus=8, ram_bytes=gib(2)))

    scenario = NetworkAnalyticsScenario(system, "offline-vm",
                                        mark_probability=0.03)
    rng = np.random.default_rng(42)

    # -- online stage ---------------------------------------------------------
    online = scenario.run_online(duration_s=30.0, rng=rng)
    print("online stage (line-rate classification on the dACCELBRICK):")
    print(f"  bitstream programmed in {online.reconfiguration_s * 1e3:.1f} ms"
          f" via PCAP")
    print(f"  inspected {online.frames_inspected:,} frames in "
          f"{online.stage_duration_s:.0f} s")
    print(f"  sustained {online.sustained_rate_bps / 1e9:.0f} Gb/s "
          f"({'line rate held' if online.keeps_line_rate else 'DROPS!'})")
    print(f"  marked {online.frames_marked:,} frames "
          f"({online.mark_fraction:.2%}) -> "
          f"{online.capture_bytes / gib(1):.1f} GiB capture")

    # -- offline stage ----------------------------------------------------------
    report = scenario.run_offline(online)
    details = report.details
    print("\noffline stage (deep analysis on the elastic VM):")
    print(f"  working set: {details['working_set_gib']:.1f} GiB "
          f"(vs 2 GiB local DRAM)")
    print(f"  memory scaled in {report.scale_up_events} segment(s), "
          f"{report.mean_scale_latency_s:.3f} s each on average")
    print(f"  elastic completion:    {details['elastic_total_s']:8.1f} s")
    print(f"  fixed-node completion: {details['fixed_node_total_s']:8.1f} s "
          f"(multi-pass re-reads)")
    print(f"  speedup from disaggregated memory: "
          f"{details['speedup']:.1f}x")


if __name__ == "__main__":
    main()
