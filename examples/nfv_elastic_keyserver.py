#!/usr/bin/env python
"""Pilot application 2: NFV edge computing with an elastic key server (§V).

The key server holds private key material, so "scale-out techniques
should be avoided to replicate critical information" — the daily traffic
peaks must be absorbed by *memory elasticity* on a single VM instead.
This scenario walks a 24-hour diurnal load and scales the key-server
VM's session-cache memory to track it.

Run:  python examples/nfv_elastic_keyserver.py
"""

from __future__ import annotations

import numpy as np

from repro import RackBuilder, VmAllocationRequest, gib
from repro.apps.nfv import DiurnalTrafficModel, KeyServerScenario


def main() -> None:
    system = (RackBuilder("nfv-edge-rack")
              .with_compute_bricks(2, cores=16, local_memory=gib(4))
              .with_memory_bricks(4, modules=4, module_size=gib(16))
              .build())
    system.boot_vm(
        VmAllocationRequest("key-server", vcpus=4, ram_bytes=gib(2)))

    traffic = DiurnalTrafficModel(peak_rps=4000.0, trough_rps=400.0,
                                  night_hour=3.0)
    print("diurnal traffic profile (requests/s):")
    for hour in (0, 3, 6, 9, 12, 15, 18, 21):
        load = traffic.load_rps(float(hour))
        bar = "#" * int(load / 100)
        print(f"  {hour:02d}:00 {bar} {load:,.0f}")

    scenario = KeyServerScenario(system, "key-server", traffic=traffic,
                                 step_bytes=gib(1))
    report = scenario.run(hours=24, samples_per_hour=2,
                          rng=np.random.default_rng(7))

    print(f"\nover 24 h: {report.scale_up_events} scale-ups, "
          f"{report.scale_down_events} scale-downs, "
          f"0 VMs spawned (key material never replicated)")
    print(f"demand satisfied at {report.demand_satisfaction:.1%} "
          f"of samples")
    print(f"mean scale latency: {report.mean_scale_latency_s:.3f} s")

    peak_gib = report.peak_demand_bytes / gib(1)
    mean_gib = report.mean_provisioned_bytes / gib(1)
    print(f"\npeak demand {peak_gib:.1f} GiB; mean provisioned "
          f"{mean_gib:.1f} GiB "
          f"({report.provisioning_efficiency():.0%} of a static "
          f"peak-sized deployment)")
    print("the freed memory serves other tenants of the rack overnight.")


if __name__ == "__main__":
    main()
