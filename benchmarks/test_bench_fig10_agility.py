"""Bench: regenerate Fig. 10 (scale-up agility vs conventional scale-out).

Paper shape: per-VM average delay of dynamic memory scale-up is far
below conventional scale-out (VM spawning) at every concurrency level
(32/16/8 VMs posting within an interval); delay grows with concurrency
but stays an order of magnitude ahead.
"""

from __future__ import annotations

from repro.experiments.fig10_agility import run_fig10


def test_bench_fig10(benchmark, artifact_writer):
    result = benchmark.pedantic(
        run_fig10,
        kwargs={"sizes_gib": (1, 2, 4, 8), "concurrencies": (8, 16, 32)},
        rounds=1, iterations=1)
    artifact_writer("fig10", result.render())
    print(result.render())

    # Scale-up beats scale-out by >= 10x everywhere — "superior even
    # under the most extreme scale-up concurrency conditions tested".
    for cell in result.cells:
        speedup = result.speedup_vs_scale_out(cell.size_gib,
                                              cell.concurrency)
        assert speedup > 10, (cell.size_gib, cell.concurrency, speedup)

    # More aggressive concurrency -> higher mean delay (SDM-C queueing).
    for size in result.sizes_gib:
        assert (result.cell(size, 32).mean_delay_s
                >= result.cell(size, 8).mean_delay_s)

    # Bigger requests -> more hotplug sections -> higher delay.
    for concurrency in result.concurrencies:
        assert (result.cell(8, concurrency).mean_delay_s
                > result.cell(1, concurrency).mean_delay_s)

    # Scale-up stays in the seconds regime; scale-out in tens of seconds.
    assert max(cell.mean_delay_s for cell in result.cells) < 5.0
    assert min(result.scale_out_mean_s.values()) > 20.0
