"""Bench: regenerate Fig. 7 (BER vs received optical power).

Paper shape: all 10 Gb/s bi-directional links achieve BER below 1e-12
after 6-8 hops through the optical switch; more hops -> less received
power -> worse (but still closing) BER.
"""

from __future__ import annotations

from repro.experiments.fig7_ber import run_fig7
from repro.network.optical.ber import BER_TARGET


def test_bench_fig7(benchmark, artifact_writer):
    result = benchmark.pedantic(run_fig7, rounds=3, iterations=1)
    artifact_writer("fig7", result.render())
    print(result.render())

    # Every channel meets the FEC-free target in every measurement.
    assert all(m.meets_target for m in result.channels)

    # Hop plan: seven channels at 8 hops, one at 6 (the paper's setup).
    assert sorted(m.hops for m in result.channels) == [6] + [8] * 7

    # The six-hop channel enjoys ~2 dB more received power and a BER
    # orders of magnitude lower than any eight-hop channel.
    six_hop = result.channel(8)
    for measurement in result.channels:
        if measurement.hops == 8:
            assert six_hop.mean_received_dbm > measurement.mean_received_dbm
            assert six_hop.ber_stats.median < measurement.ber_stats.median

    # Received power sits in the regime the link budget predicts:
    # -3.7 dBm launch minus ~8-11 dB of path loss.
    for measurement in result.channels:
        assert -16.0 < measurement.mean_received_dbm < -10.0

    # BER medians stay below the target with margin (Q extrapolation).
    assert max(m.ber_stats.median for m in result.channels) < BER_TARGET
