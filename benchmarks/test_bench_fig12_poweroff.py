"""Bench: regenerate Fig. 12 (% unutilized resources powered off).

Paper shape: disaggregation never loses; unbalanced mixes power off up
to ~88% of one brick type while the conventional datacenter manages at
most ~15% of its hosts; balanced mixes show little difference.
"""

from __future__ import annotations

from repro.experiments.fig12_poweroff import run_fig12


def test_bench_fig12(benchmark, artifact_writer):
    result = benchmark.pedantic(run_fig12, rounds=3, iterations=1)
    artifact_writer("fig12", result.render())
    print(result.render())

    by_name = {r.config_name: r for r in result.results}

    # Headline numbers: up to ~88% of one brick type, conventional ~15%.
    assert 0.80 <= result.max_brick_poweroff <= 0.95
    assert result.max_conventional_poweroff <= 0.20

    # Disaggregated >= conventional for every mix.
    for r in result.results:
        assert r.disaggregated_poweroff >= r.conventional_poweroff - 1e-9

    # Direction of the imbalance decides which pool powers off.
    assert (by_name["High RAM"].compute_brick_poweroff
            > by_name["High RAM"].memory_brick_poweroff)
    assert (by_name["High CPU"].memory_brick_poweroff
            > by_name["High CPU"].compute_brick_poweroff)

    # Unbalanced mixes gain much more than the balanced one.
    assert (by_name["High RAM"].disaggregated_poweroff
            > 2 * by_name["Half Half"].disaggregated_poweroff)
