"""Ablation: hotplug section size vs scale-up agility.

DESIGN.md §4: the arm64 port of the era used 1 GiB SPARSEMEM sections
where x86-64 uses 128 MiB.  Bigger sections mean fewer per-section
operations when attaching a large segment (faster) but a coarser
allocation granule (internal fragmentation for small requests).
"""

from __future__ import annotations

from repro.analysis.tables import render_table
from repro.core.builder import RackBuilder
from repro.core.flows import TimedScaleUpHarness
from repro.orchestration.requests import VmAllocationRequest
from repro.units import gib, mib

SECTION_SIZES = {
    "128 MiB": mib(128),
    "512 MiB": mib(512),
    "1 GiB": gib(1),
}

REQUEST_GIB = 8


def _scale_up_delay(section_bytes: int) -> float:
    system = (RackBuilder("abl-hp")
              .with_compute_bricks(1, cores=8, local_memory=gib(2))
              .with_memory_bricks(2, modules=4, module_size=gib(16))
              .with_section_size(section_bytes)
              .build())
    system.boot_vm(VmAllocationRequest("vm-0", vcpus=4, ram_bytes=gib(1)))
    harness = TimedScaleUpHarness(system)
    harness.post_scale_up("vm-0", gib(REQUEST_GIB))
    (sample,) = harness.run()
    return sample.delay_s


def _sweep():
    return {name: _scale_up_delay(size)
            for name, size in SECTION_SIZES.items()}


def test_bench_ablation_hotplug(benchmark, artifact_writer):
    delays = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    table = render_table(
        ["section size", f"scale-up delay for {REQUEST_GIB} GiB (s)"],
        [(name, round(delay, 4)) for name, delay in delays.items()],
        title="Ablation: hotplug section size vs scale-up delay")
    artifact_writer("ablation_hotplug", table)
    print(table)

    # Coarser sections -> fewer add/online operations -> faster attach.
    assert delays["1 GiB"] < delays["512 MiB"] < delays["128 MiB"]

    # The effect is first-order: 8x fewer sections cuts the delay by
    # more than a third for a multi-GiB attach.
    assert delays["1 GiB"] < 0.67 * delays["128 MiB"]
