"""Bench: multi-pod federation under pods × rate × spill policy.

Shape assertions: the hot pod's capacity wall is real — the
pinned-to-home baseline's admitted fraction falls as the aggregate
arrival rate climbs — and spill-enabled placement admits at least as
much offered load as pinned at every cell, strictly more at the top
rate, sustaining a higher aggregate arrival rate at equal pod count
(the federation acceptance criterion).  Adding pods widens the spill
headroom further.
"""

from __future__ import annotations

from repro.experiments.federation import run_federation


def test_bench_federation(benchmark, artifact_writer):
    result = benchmark.pedantic(run_federation, rounds=1, iterations=1)
    artifact_writer("federation", result.render())
    print(result.render())

    rates = result.rates
    assert len(rates) >= 3
    top = rates[-1]

    for pods in result.pod_counts:
        pinned = [result.cell(pods, rate, "never") for rate in rates]
        spilled = [result.cell(pods, rate, "least-loaded")
                   for rate in rates]

        # The pinned baseline degrades with load: its admitted
        # fraction is (weakly) monotone falling and clearly degraded
        # at the top rate.
        fractions = [cell.admitted_fraction for cell in pinned]
        assert fractions == sorted(fractions, reverse=True)
        assert fractions[-1] < 0.8

        # Spill admits at least as much everywhere, strictly more at
        # the top rate, and actually used the spill path.
        for pinned_cell, spill_cell in zip(pinned, spilled):
            assert spill_cell.admitted >= pinned_cell.admitted
        assert spilled[-1].admitted > pinned[-1].admitted
        assert any(cell.spills > 0 for cell in spilled)

        # The acceptance criterion: spill-enabled federation sustains
        # a strictly higher aggregate arrival rate than pinned
        # placement at equal pod count.
        assert (result.sustained_rate(pods, "least-loaded")
                > result.sustained_rate(pods, "never"))

    # More pods -> more spill headroom at the top rate.
    if len(result.pod_counts) > 1:
        small = result.cell(result.pod_counts[0], top, "least-loaded")
        large = result.cell(result.pod_counts[-1], top, "least-loaded")
        assert large.admitted >= small.admitted
