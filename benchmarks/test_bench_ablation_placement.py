"""Ablation: SDM-C placement policy vs power-off opportunity.

DESIGN.md §4: the paper's controller makes a "power-consumption
conscious selection of resources".  This bench boots the same VM load
under the packing policy, first-fit, and a spread (load-balancing)
anti-policy, then compares how many bricks can be powered off.
"""

from __future__ import annotations

from repro.analysis.tables import render_table
from repro.core.builder import RackBuilder
from repro.core.metrics import snapshot
from repro.orchestration.placement import (
    FirstFitPolicy,
    PowerAwarePackingPolicy,
    SpreadPolicy,
)
from repro.orchestration.requests import VmAllocationRequest
from repro.units import gib

POLICIES = {
    "power-aware packing": PowerAwarePackingPolicy,
    "first-fit": FirstFitPolicy,
    "spread": SpreadPolicy,
}

VM_COUNT = 8


def _run_policy(policy_factory):
    system = (RackBuilder("abl-place")
              .with_compute_bricks(8, cores=16, local_memory=gib(2))
              .with_memory_bricks(8, modules=2, module_size=gib(8))
              .with_policy(policy_factory())
              .build())
    for index in range(VM_COUNT):
        system.boot_vm(VmAllocationRequest(
            f"vm-{index}", vcpus=2, ram_bytes=gib(4)))
    system.power_off_idle()
    snap = snapshot(system)
    return snap


def _sweep():
    return {name: _run_policy(factory)
            for name, factory in POLICIES.items()}


def test_bench_ablation_placement(benchmark, artifact_writer):
    snaps = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    table = render_table(
        ["policy", "bricks off", "off fraction", "power (W)"],
        [(name,
          snap.compute_bricks_off + snap.memory_bricks_off,
          f"{snap.bricks_off_fraction:.1%}",
          round(snap.power_draw_w, 1))
         for name, snap in snaps.items()],
        title="Ablation: placement policy vs power-off opportunity "
              f"({VM_COUNT} VMs, 8+8 bricks)")
    artifact_writer("ablation_placement", table)
    print(table)

    packing = snaps["power-aware packing"]
    spread = snaps["spread"]

    # The paper's policy powers off strictly more bricks than spreading
    # and draws less power for the same workload.
    assert packing.bricks_off_fraction > spread.bricks_off_fraction
    assert packing.power_draw_w < spread.power_draw_w

    # Spreading wakes every brick: nothing to power off.
    assert spread.bricks_off_fraction == 0.0

    # All policies host the same VMs — the workload is identical.
    assert all(snap.vm_count == VM_COUNT for snap in snaps.values())
