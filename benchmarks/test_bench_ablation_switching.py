"""Ablation: circuit-switched vs packet-switched remote-memory path.

DESIGN.md §4: the architecture's mainline is circuit switching "as a
means of minimizing the critical KPI of remote access latency"; the
packet path exists for port-constrained situations.  This bench
quantifies the design choice across transaction sizes.
"""

from __future__ import annotations

from repro.analysis.tables import render_table
from repro.hardware.bricks import ComputeBrick, MemoryBrick
from repro.hardware.rmst import SegmentEntry
from repro.memory.path import (
    CircuitAccessPath,
    PacketAccessPath,
    PacketPathBlocks,
)
from repro.memory.transactions import MemoryTransaction
from repro.network.optical.topology import OpticalFabric
from repro.units import gib

SIZES = (64, 256, 1024, 4096)


def _build_paths():
    compute = ComputeBrick("abl.cb")
    memory = MemoryBrick("abl.mb")
    fabric = OpticalFabric()
    fabric.attach_brick(compute)
    fabric.attach_brick(memory)
    circuit = fabric.connect(compute, memory)
    compute.rmst.install(SegmentEntry(
        "abl-seg", base=compute.local_memory_bytes, size=gib(2),
        remote_brick_id=memory.brick_id, remote_offset=0,
        egress_port_id=circuit.port_toward(compute).port_id))
    circuit_path = CircuitAccessPath(compute, memory, circuit)
    packet_path = PacketAccessPath(compute, memory)
    packet_path.ensure_routes()
    fec_path = PacketAccessPath(
        compute, memory,
        compute_blocks=PacketPathBlocks.for_brick("abl.cb", fec_enabled=True),
        memory_blocks=PacketPathBlocks.for_brick("abl.mb", fec_enabled=True))
    fec_path.ensure_routes()
    return compute, circuit_path, packet_path, fec_path


def _sweep():
    compute, circuit_path, packet_path, fec_path = _build_paths()
    base = compute.local_memory_bytes
    rows = []
    for size in SIZES:
        txn = MemoryTransaction.read(base, size)
        rows.append((
            size,
            circuit_path.access(txn).round_trip_ns,
            packet_path.access(txn).round_trip_ns,
            fec_path.access(txn).round_trip_ns,
        ))
    return rows


def test_bench_ablation_switching(benchmark, artifact_writer):
    rows = benchmark.pedantic(_sweep, rounds=5, iterations=1)
    table = render_table(
        ["size (B)", "circuit (ns)", "packet (ns)", "packet+FEC (ns)"],
        [(s, round(c, 1), round(p, 1), round(f, 1))
         for s, c, p, f in rows],
        title="Ablation: remote read round trip by interconnect mode")
    artifact_writer("ablation_switching", table)
    print(table)

    for size, circuit_ns, packet_ns, fec_ns in rows:
        # Circuit wins at every size; FEC always costs extra.
        assert circuit_ns < packet_ns < fec_ns, size

    # The circuit advantage (absolute ns) persists as payloads grow —
    # serialization is paid by both, the fixed blocks are not.
    advantages = [p - c for _s, c, p, _f in rows]
    assert min(advantages) > 500
