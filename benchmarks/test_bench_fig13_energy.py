"""Bench: regenerate Fig. 13 (power normalized to conventional).

Paper shape: powering down unutilized bricks translates into large
("almost 50%") energy savings on diverse/unbalanced workloads and near
parity on balanced ones.
"""

from __future__ import annotations

from repro.experiments.fig13_energy import run_fig13


def test_bench_fig13(benchmark, artifact_writer):
    result = benchmark.pedantic(run_fig13, rounds=3, iterations=1)
    artifact_writer("fig13", result.render())
    print(result.render())

    # Savings reach (and here exceed) the paper's ~50% on memory-heavy
    # mixes — our brick power split favours compute, see EXPERIMENTS.md.
    assert result.best_savings >= 0.45

    # Memory-heavy mixes save the most; balanced sits at parity.
    assert result.savings_for("High RAM") > 0.4
    assert result.savings_for("More RAM") > 0.4
    assert abs(result.savings_for("Half Half")) < 0.05

    # CPU-heavy mixes still save (memory bricks power off) but less,
    # since the memory share of a node's power is the smaller part.
    assert 0.05 < result.savings_for("High CPU") < \
        result.savings_for("High RAM")

    # Normalized power is a proper fraction everywhere except parity.
    for r in result.results:
        assert 0.2 < r.normalized_power < 1.05
