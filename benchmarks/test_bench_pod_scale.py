"""Bench: pod-size sweep — VM density and remote-memory latency 1..8 racks.

Shape assertions: capacity grows with pod size (the pool composes across
racks), the locality-first placement only spills across the pod switch
once a rack's memory is drained, and an inter-rack read is strictly —
but boundedly — slower than an intra-rack one (the interconnect
hierarchy as the dominant remote-latency term).
"""

from __future__ import annotations

from repro.experiments.pod_scale import run_pod_scale


def test_bench_pod_scale(benchmark, artifact_writer):
    result = benchmark.pedantic(
        run_pod_scale,
        kwargs={"rack_counts": (1, 2, 4, 8)},
        rounds=1, iterations=1)
    artifact_writer("pod_scale", result.render())
    print(result.render())

    cells = {cell.rack_count: cell for cell in result.cells}
    assert sorted(cells) == [1, 2, 4, 8]

    # Capacity scales with racks: each doubling of the pod at least
    # doubles VM capacity minus rounding (memory-bound packing).
    assert cells[2].vm_capacity > cells[1].vm_capacity
    assert cells[4].vm_capacity > cells[2].vm_capacity
    assert cells[8].vm_capacity > cells[4].vm_capacity
    assert cells[8].vm_capacity >= 4 * cells[1].vm_capacity

    # A single rack never crosses the pod switch.
    assert cells[1].remote_segment_count == 0
    assert cells[1].inter_rack_read_ns is None
    assert cells[1].uplinks_in_use == 0

    # Multi-rack pods spill once the local rack drains, and more racks
    # mean a larger remote share for the same per-rack memory.
    for racks in (2, 4, 8):
        assert cells[racks].remote_segment_count > 0
        assert cells[racks].uplinks_in_use > 0
    assert cells[8].remote_fraction >= cells[2].remote_fraction

    # The pod switch tier costs latency: strictly slower than
    # intra-rack, but within the same order of magnitude (circuit
    # switching adds fibre flight time, not store-and-forward hops).
    for racks in (2, 4, 8):
        cell = cells[racks]
        assert cell.inter_rack_read_ns > cell.intra_rack_read_ns
        assert cell.inter_over_intra < 10

    # Power grows with pod size (more bricks + lit switch ports).
    assert (cells[8].total_power_w > cells[4].total_power_w
            > cells[2].total_power_w > cells[1].total_power_w)
