"""Ablation: dMEMBRICK link provisioning vs delivered bandwidth.

Section II: memory-brick links "can be used to provide more aggregate
bandwidth, or can be partitioned by orchestrator software and assigned
to different dCOMPUBRICKs".  This bench sweeps the link count under a
fixed client load and shows bandwidth scaling until the wire stops
being the bottleneck.
"""

from __future__ import annotations

from repro.analysis.tables import render_table
from repro.memory.contention import MemoryContentionSim

LINK_COUNTS = (1, 2, 4, 8)
CLIENTS = 8
DURATION_S = 200e-6


def _sweep():
    results = {}
    for links in LINK_COUNTS:
        sim = MemoryContentionSim(link_count=links)
        results[links] = sim.run(client_count=CLIENTS, window=4,
                                 duration_s=DURATION_S)
    return results


def test_bench_ablation_links(benchmark, artifact_writer):
    results = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    table = render_table(
        ["links", "throughput (Gb/s)", "mean latency (ns)",
         "p99 latency (ns)"],
        [(links,
          round(r.throughput_bps / 1e9, 2),
          round(r.mean_latency_s * 1e9, 0),
          round(r.latency_percentile(99) * 1e9, 0))
         for links, r in results.items()],
        title=f"Ablation: dMEMBRICK links vs delivered bandwidth "
              f"({CLIENTS} clients, 64 B transactions)")
    artifact_writer("ablation_links", table)
    print(table)

    # More links -> more delivered bandwidth, monotonically.
    throughputs = [results[links].throughput_bps for links in LINK_COUNTS]
    assert throughputs == sorted(throughputs)

    # Going 1 -> 2 links nearly doubles throughput (wire-bound regime).
    assert results[2].throughput_bps > 1.8 * results[1].throughput_bps

    # Latency relief: mean latency drops as queueing disappears.
    assert results[4].mean_latency_s < results[1].mean_latency_s

    # Delivered bandwidth never exceeds the aggregate wire capacity.
    for links, result in results.items():
        wire = MemoryContentionSim(link_count=links).link_saturation_bps()
        assert result.throughput_bps <= wire
