"""Bench: rolling maintenance — zero-downtime drain, fenced rollback.

Shape assertions carry the PR's acceptance criteria: a full-pod
rolling drain of the hot pod commits while admission availability
holds >= 99.9 % of the no-drain baseline with bounded p99 inflation;
the drain+faults cell's correlated domain outage lands inside the
drain scope, fences it, and the rollback conserves every byte, hold
and claim; and the whole study is deterministic per seed.
"""

from __future__ import annotations

from repro.experiments.maintenance import (
    AVAILABILITY_FLOOR,
    run_maintenance,
)


def test_bench_maintenance(benchmark, artifact_writer):
    result = benchmark.pedantic(run_maintenance, rounds=1, iterations=1)
    artifact_writer("maintenance", result.render())
    print(result.render())

    baseline = result.cell("baseline")
    drain = result.cell("drain")
    faulted = result.cell("drain+faults")

    # The headline: planned maintenance consumes zero admission
    # availability — the drain cell admits >= 99.9 % of the baseline's
    # fraction, at a bounded latency tail.
    assert drain.drain_committed, drain.abort_reason
    assert drain.racks_retired == 2
    assert result.availability_ratio("drain") >= AVAILABILITY_FLOOR
    assert result.p99_inflation("drain") <= 1.5
    assert drain.tenants_migrated > 0
    assert drain.verify_failures == 0

    # The correlated outage fenced the drain; the rollback conserved.
    assert faulted.drain_aborted and not faulted.drain_committed
    assert faulted.domain_outages >= 1
    assert faulted.fault_count >= 1
    assert "fault" in faulted.abort_reason

    # Conservation holds in every cell — committed and rolled back.
    assert all(cell.conserved for cell in result.cells)

    # The baseline cell saw no faults and no drain machinery at all.
    assert baseline.fault_count == 0
    assert not baseline.drained
