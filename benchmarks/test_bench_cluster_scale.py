"""Bench: event-driven control plane under arrival rate × pod size.

Shape assertions: contention is really modeled — per-request p99
allocation latency and admission-queue depth rise with arrival rate —
and batched dispatch (one amortized configuration push per batch)
achieves a lower p99 than the per-request baseline at the highest
swept rate on every pod size.  One SDM-C serves the whole pod, so
adding racks does not add controller capacity: the per-request plane
saturates at the same arrival rate regardless of pod size.
"""

from __future__ import annotations

from repro.experiments.cluster_scale import run_cluster_scale


def test_bench_cluster_scale(benchmark, artifact_writer):
    result = benchmark.pedantic(run_cluster_scale, rounds=1, iterations=1)
    artifact_writer("cluster_scale", result.render())
    print(result.render())

    rates = result.rates
    assert len(rates) >= 3
    top = rates[-1]

    for racks in result.rack_counts:
        per_request = [result.cell(racks, rate, "per-request")
                       for rate in rates]

        # Contention is modeled: the per-request baseline's tail
        # latency and queue depth climb monotonically with load, and
        # the top rate drives the critical section past saturation.
        p99s = [cell.p99_ms for cell in per_request]
        queues = [cell.mean_queue_depth for cell in per_request]
        assert p99s == sorted(p99s)
        assert queues == sorted(queues)
        assert p99s[-1] > 3 * p99s[0]
        assert queues[-1] > 10 * max(queues[0], 0.1)

        # Batching beats per-request dispatch where it matters: at the
        # highest swept arrival rate.
        base = result.cell(racks, top, "per-request")
        batched = result.cell(racks, top, "batched")
        assert batched.p99_ms < base.p99_ms
        assert batched.p99_ms < 0.5 * base.p99_ms
        assert batched.mean_queue_depth < base.mean_queue_depth

        # The open-loop traffic was actually served.
        for cell in per_request:
            assert cell.completed + cell.rejected >= cell.completed > 0

    # Mixed-size churn fragments the pool; the stat is being tracked.
    one_rack_top = result.cell(result.rack_counts[0], top, "per-request")
    assert one_rack_top.peak_fragmentation > 0
