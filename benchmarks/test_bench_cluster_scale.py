"""Bench: event-driven control plane under rate × pod size × shards.

Shape assertions: contention is really modeled — with a single
reservation domain, per-request p99 allocation latency and
admission-queue depth rise with arrival rate — and batched dispatch
(one amortized configuration push per batch) achieves a lower p99 than
the per-request baseline at the highest swept rate on every pod size.
The sharding axis shows the controller capacity wall moving: at the
top rate on the multi-rack pod, per-rack reservation shards cut the
per-request p99 by at least 3x versus the single-domain controller
(the pre-sharding sweep recorded 2318 ms there), and batched-mode
queue depth falls with shard count.
"""

from __future__ import annotations

from repro.experiments.cluster_scale import run_cluster_scale


def test_bench_cluster_scale(benchmark, artifact_writer):
    result = benchmark.pedantic(run_cluster_scale, rounds=1, iterations=1)
    artifact_writer("cluster_scale", result.render())
    print(result.render())

    rates = result.rates
    assert len(rates) >= 3
    top = rates[-1]

    for racks in result.rack_counts:
        per_request = [result.cell(racks, rate, "per-request", shards=1)
                       for rate in rates]

        # Contention is modeled: the single-domain per-request
        # baseline's tail latency and queue depth climb monotonically
        # with load, and the top rate drives the critical section past
        # saturation.
        p99s = [cell.p99_ms for cell in per_request]
        queues = [cell.mean_queue_depth for cell in per_request]
        assert p99s == sorted(p99s)
        assert queues == sorted(queues)
        assert p99s[-1] > 3 * p99s[0]
        assert queues[-1] > 10 * max(queues[0], 0.1)

        # Batching beats per-request dispatch where it matters: at the
        # highest swept arrival rate.
        base = result.cell(racks, top, "per-request", shards=1)
        batched = result.cell(racks, top, "batched", shards=1)
        assert batched.p99_ms < base.p99_ms
        assert batched.p99_ms < 0.5 * base.p99_ms
        assert batched.mean_queue_depth < base.mean_queue_depth

        # The open-loop traffic was actually served.
        for cell in per_request:
            assert cell.completed + cell.rejected >= cell.completed > 0

        # Controller capacity scales with shard count: per-rack shards
        # move the saturation point, so the sharded per-request p99 at
        # the top rate beats the single-domain controller by >= 3x on
        # multi-rack pods, and the batched plane's backlog shrinks too.
        shard_axis = result.shard_counts(racks)
        if len(shard_axis) > 1:
            sharded = result.cell(racks, top, "per-request",
                                  shards=shard_axis[-1])
            assert sharded.p99_ms * 3 <= base.p99_ms
            sharded_batched = result.cell(racks, top, "batched",
                                          shards=shard_axis[-1])
            assert (sharded_batched.mean_queue_depth
                    <= batched.mean_queue_depth)

    # Mixed-size churn fragments the pool; the stat is being tracked.
    one_rack_top = result.cell(result.rack_counts[0], top, "per-request",
                               shards=1)
    assert one_rack_top.peak_fragmentation > 0
