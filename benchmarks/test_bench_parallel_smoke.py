"""Non-gating CI smoke for the parallel federation backend.

A reduced ``parallel_scaling`` run — the fixed 4-pod shape, a shorter
trace, workers 0 vs 2 only — asserting the *determinism* contract:
the process backend must fingerprint identically to the in-process
reference.  Throughput and the critical-path ratio are deliberately
not asserted here — shared CI runners are too noisy and too
core-starved for either; the perf claims live in
``BENCH_parallel.json`` and ``test_bench_parallel.py``.  Wired as its
own non-gating CI job alongside the other smokes; see
`.github/workflows/ci.yml`.
"""

from __future__ import annotations

from repro.experiments.parallel_scaling import run_parallel_scaling

SMOKE_TENANTS = 120


def test_parallel_backend_matches_reference():
    # run_parallel_scaling raises AssertionError itself on any
    # fingerprint divergence; the asserts below make the smoke's
    # pass criteria explicit in the report.
    result = run_parallel_scaling(worker_axis=(0, 2),
                                  tenant_count=SMOKE_TENANTS)
    reference = result.cell(0)
    processed = result.cell(2)
    assert reference.admitted > 0
    assert processed.fingerprint == reference.fingerprint
    assert processed.events == reference.events
    assert processed.rounds == reference.rounds
