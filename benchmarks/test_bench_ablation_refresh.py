"""Ablation: component-level vs server-level technology refresh.

The paper's stated on-going work (§VI): "delivering technology refreshes
at the component level instead of the server level" lowers procurement
TCO.  This bench sweeps the planning horizon and the brick modularity
premium.
"""

from __future__ import annotations

from repro.analysis.tables import render_table
from repro.tco.refresh import RefreshCostModel, RefreshStudy

HORIZONS = (6.0, 12.0, 18.0)
PREMIUMS = (1.0, 1.1, 1.2)


def _sweep():
    rows = []
    for premium in PREMIUMS:
        model = RefreshCostModel(brick_cost_premium=premium)
        study = RefreshStudy(unit_count=64, model=model)
        for horizon in HORIZONS:
            outcome = study.run(horizon)
            rows.append((premium, horizon, outcome))
    breakeven = RefreshStudy(unit_count=64).breakeven_premium(12.0)
    return rows, breakeven


def test_bench_ablation_refresh(benchmark, artifact_writer):
    rows, breakeven = benchmark.pedantic(_sweep, rounds=3, iterations=1)
    table = render_table(
        ["brick premium", "horizon (y)", "conventional ($)",
         "disaggregated ($)", "savings"],
        [(f"{premium:.2f}", horizon,
          round(outcome.conventional_total),
          round(outcome.disaggregated_total),
          f"{outcome.savings_fraction:.1%}")
         for premium, horizon, outcome in rows],
        title="Ablation: refresh procurement, component vs server level "
              "(compute 3 y / memory 6 y cadence)")
    footer = (f"breakeven modularity premium at 12 y: {breakeven:.2f}x "
              f"(bricks may cost this much more and still break even)")
    artifact_writer("ablation_refresh", table + "\n" + footer)
    print(table + "\n" + footer)

    by_key = {(premium, horizon): outcome
              for premium, horizon, outcome in rows}

    # With no premium, component-level refresh always wins on aligned
    # multi-cadence horizons.
    for horizon in HORIZONS:
        assert by_key[(1.0, horizon)].savings_fraction > 0.1

    # Higher premiums monotonically erode the savings.
    for horizon in HORIZONS:
        savings = [by_key[(premium, horizon)].savings_fraction
                   for premium in PREMIUMS]
        assert savings == sorted(savings, reverse=True)

    # The breakeven premium leaves real headroom for modular hardware.
    assert breakeven > 1.1
