"""Non-gating CI smoke for the declarative topology compiler.

Compiles every named template (S/M/L/XL) on the serial backend and
runs a reduced federation sweep on template S, asserting the compiled
spec actually drives the experiment end to end.  Wired as its own
non-gating CI job alongside the other tier smokes; see
`.github/workflows/ci.yml`.
"""

from __future__ import annotations

from repro.experiments.federation import run_federation
from repro.topology import TEMPLATE_NAMES, compile_spec


def test_every_template_compiles():
    for name in TEMPLATE_NAMES:
        compiled = compile_spec(name)
        spec = compiled.spec
        assert len(compiled.federation.pods) == spec.pods
        if spec.domains:
            assert compiled.failure_domains()
        compiled.close()


def test_reduced_federation_sweep_on_template_s():
    result = run_federation(arrival_rates_hz=(10,), tenant_count=20,
                            topology="S", spill_policy="least-loaded")
    assert result.cells
    assert all(cell.pod_count == 2 for cell in result.cells)
    assert all(cell.admitted + cell.rejected > 0 for cell in result.cells)
