"""Non-gating CI smoke for the federation tier (1 vs 2 pods).

A reduced `federation` run — one (high) aggregate arrival rate, a
small tenant count, one pod vs two pods with spill, plus the pinned
baseline at two pods — so a regression on the global placement path
(spill decisions, two-phase admission claims, inter-pod migration)
surfaces in PRs in seconds instead of the full sweep's minutes.
Wired as its own non-gating CI job alongside the shard smoke; see
`.github/workflows/ci.yml`.
"""

from __future__ import annotations

from repro.experiments.federation import run_federation

#: Reduced scale: enough offered load to overrun one pod at 20/s,
#: small enough to finish in seconds.
SMOKE_TENANTS = 60
SMOKE_RATE = 20.0


def test_federation_spill_smoke():
    one_pod = run_federation(
        pod_counts=(1,), arrival_rates_hz=(SMOKE_RATE,),
        tenant_count=SMOKE_TENANTS).cell(1, SMOKE_RATE, "least-loaded")
    two_pods = run_federation(
        pod_counts=(2,), arrival_rates_hz=(SMOKE_RATE,),
        tenant_count=SMOKE_TENANTS)
    pinned = two_pods.cell(2, SMOKE_RATE, "never")
    spill = two_pods.cell(2, SMOKE_RATE, "least-loaded")

    # One pod is past its capacity wall at this rate.
    assert one_pod.rejected > 0

    # Federating a second pod admits strictly more of the same offered
    # load, and spill beats pinned-to-home at equal pod count.
    assert spill.admitted > one_pod.admitted
    assert spill.admitted > pinned.admitted
    assert spill.rejected < pinned.rejected
    assert spill.spills > 0

    # Every cell served the traffic it admitted (accounting closes).
    for cell in (one_pod, pinned, spill):
        assert cell.admitted + cell.rejected == SMOKE_TENANTS
