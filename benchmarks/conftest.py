"""Shared helpers for the benchmark harness.

Every bench regenerates one paper artifact (table/figure), asserts the
paper's qualitative shape, and writes the rendered artifact to
``benchmarks/output/<name>.txt`` so the data survives captured stdout.
"""

from __future__ import annotations

from pathlib import Path

import pytest

OUTPUT_DIR = Path(__file__).parent / "output"


@pytest.fixture
def artifact_writer():
    """Returns a writer: ``write(name, text)`` -> output file path."""
    OUTPUT_DIR.mkdir(exist_ok=True)

    def write(name: str, text: str) -> Path:
        path = OUTPUT_DIR / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        return path

    return write
