"""Ablation: disaggregated re-point migration vs full-memory-copy.

One of the paper's objectives (§I) is "improved process/virtual machine
migration".  With memory on dMEMBRICKs, migrating a VM re-points its
segments (circuit + RMST swing + hotplug) instead of copying them; the
advantage grows with guest size because the copied slice stays constant.
"""

from __future__ import annotations

from repro.analysis.tables import render_table
from repro.core.builder import RackBuilder
from repro.orchestration.requests import VmAllocationRequest
from repro.units import gib

GUEST_SIZES_GIB = (8, 16, 32, 64)


def _migrate_once(ram_gib: int):
    system = (RackBuilder(f"mig-{ram_gib}")
              .with_compute_bricks(2, cores=16, local_memory=gib(2))
              .with_memory_bricks(max(2, ram_gib // 32 + 1),
                                  modules=4, module_size=gib(16))
              .build())
    info = system.boot_vm(VmAllocationRequest(
        "vm-0", vcpus=8, ram_bytes=gib(ram_gib)))
    target = next(b.brick_id for b in system.compute_bricks
                  if b.brick_id != info.brick_id)
    return system.migrate_vm("vm-0", target)


def _sweep():
    return {size: _migrate_once(size) for size in GUEST_SIZES_GIB}


def test_bench_ablation_migration(benchmark, artifact_writer):
    reports = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    table = render_table(
        ["guest RAM (GiB)", "re-point (s)", "full copy (s)", "speedup",
         "bytes copied (GiB)"],
        [(size,
          round(report.total_s, 2),
          round(report.conventional_estimate_s, 2),
          round(report.speedup_vs_conventional, 1),
          round(report.copied_bytes / gib(1), 2))
         for size, report in reports.items()],
        title="Ablation: disaggregated migration vs full memory copy")
    artifact_writer("ablation_migration", table)
    print(table)

    # Re-pointing beats copying at every size.
    for size, report in reports.items():
        assert report.speedup_vs_conventional > 1.5, size

    # The advantage grows with guest size (copy is linear in RAM, the
    # copied slice under disaggregation is bounded by local DRAM).
    speedups = [reports[size].speedup_vs_conventional
                for size in GUEST_SIZES_GIB]
    assert speedups == sorted(speedups)

    # The copied slice never exceeds local DRAM + device state.
    for report in reports.values():
        assert report.copied_bytes <= gib(2) + gib(1) // 32
