"""Bench: availability under fault injection, self-heal on vs off.

Shape assertions: at every swept failure rate (MTBF row) self-healing
cuts tenant-seconds of unavailability by at least the experiment's
:data:`~repro.experiments.availability.HEADLINE_SPEEDUP` target (the
ISSUE's >= 5x acceptance criterion), the deterministic scripted-outage
pair clears the same bar free of MTBF sampling variance, the zero-fault
row shows the injector's hooks are inert, and re-admission lands every
tenant it attempts at this load (the sweep runs with capacity
headroom — self-healing cannot conjure capacity at a pool's wall).
"""

from __future__ import annotations

from repro.experiments.availability import (
    HEADLINE_SPEEDUP,
    run_availability,
)


def test_bench_availability(benchmark, artifact_writer):
    result = benchmark.pedantic(run_availability, rounds=1, iterations=1)
    artifact_writer("availability", result.render())
    print(result.render())

    labels = result.labels
    assert "scripted" in labels and "none" in labels
    mtbf_labels = [label for label in labels
                   if label.startswith("mtbf=")]
    assert len(mtbf_labels) >= 3

    # The acceptance criterion, at every failure rate and for the
    # deterministic scripted pair.
    for label in mtbf_labels + ["scripted"]:
        assert result.downtime_reduction(label) >= HEADLINE_SPEEDUP, label

    # Faults actually fired, and harder rates fire more of them.
    for label in mtbf_labels + ["scripted"]:
        for heal in (True, False):
            assert result.cell(label, heal).faults > 0, (label, heal)
    by_rate = [result.cell(label, True).faults for label in mtbf_labels]
    assert by_rate == sorted(by_rate)  # axis sweeps MTBF downwards

    # Self-healing actually re-admitted pod-loss tenants somewhere,
    # and everything it attempted landed (headroom regime).
    healed_cells = [result.cell(label, True)
                    for label in mtbf_labels + ["scripted"]]
    assert any(cell.readmissions > 0 for cell in healed_cells)
    for cell in healed_cells:
        assert cell.readmission_success_rate == 1.0, cell.label

    # The zero-fault row: inert hooks, zero downtime, full admission.
    none = result.cell("none", True)
    assert none.faults == 0
    assert none.downtime_ts == 0.0
    assert none.admitted == result.tenant_count
