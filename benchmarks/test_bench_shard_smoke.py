"""Non-gating CI smoke for the controller path (sharded vs single).

A reduced `cluster_scale` run — one pod size, one (high) arrival rate,
a small request count, 1 shard vs per-rack shards — so a regression on
the SDM-C reservation path (lock scope growing, two-phase overhead,
offload breaking) surfaces in PRs in seconds instead of the full
sweep's minutes.  Wired as its own non-gating CI job; see
`.github/workflows/ci.yml`.
"""

from __future__ import annotations

from repro.experiments.cluster_scale import run_cluster_scale

#: Reduced scale: enough traffic to saturate a single reservation
#: domain at 70/s, small enough to finish in seconds.
SMOKE_ALLOCATIONS = 150


def test_controller_sharding_smoke():
    result = run_cluster_scale(
        rack_counts=(2,), arrival_rates_hz=(70,),
        allocation_count=SMOKE_ALLOCATIONS)

    single = result.cell(2, 70, "per-request", shards=1)
    sharded = result.cell(2, 70, "per-request", shards=2)

    # All traffic served in both configurations.
    for cell in (single, sharded):
        assert cell.completed == SMOKE_ALLOCATIONS
        assert cell.rejected == 0

    # The single domain is past saturation at this rate; per-rack
    # shards keep the tail at least 2x lower even at smoke scale.
    assert sharded.p99_ms * 2 <= single.p99_ms
    assert sharded.mean_queue_depth < single.mean_queue_depth
