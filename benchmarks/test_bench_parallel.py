"""Bench: parallel federation — worker sweep + critical-path speedup.

Runs the full ``parallel_scaling`` driver (the same code path that
emits ``BENCH_parallel.json``): the fixed 4-pod trace on the serial
direct controller, the in-process reference fleet, and 1/2/4 worker
processes.  Asserts the PR's two claims:

* **determinism** — every parallel cell fingerprints identically to
  the ``workers=0`` reference (the driver itself raises on divergence;
  re-asserted here so the bench report shows it), and
* **the structural speedup** — the critical-path decomposition of the
  reference run clears the floor below the 2.5x target.  The
  *measured* wall-clock column is recorded but not asserted: it is
  core-count-bound, and a 1-core runner can only time-slice four
  workers (the checked-in JSON carries the host's core count so
  readers can tell which regime produced it).

The structural assert uses a deliberately conservative floor — the
checked-in trajectory documents ~2.8x on a quiet machine against the
2.5x target; a loaded runner inflates the non-decomposed overhead
term and shaves the ratio.
"""

from __future__ import annotations

from repro.experiments.parallel_scaling import (
    DEFAULT_WORKER_AXIS,
    run_parallel_scaling,
)

#: Conservative floor for the structural speedup assert, below the
#: 2.5x target the checked-in ``BENCH_parallel.json`` clears (quiet-
#: machine trajectory: ~2.8x).  The decomposition subtracts measured
#: busy time from measured wall, so a noisy shared runner inflates
#: the "other" term and deflates the ratio — the floor absorbs that
#: without letting a real structural regression through.
SPEEDUP_FLOOR = 2.0


def test_bench_parallel(benchmark, artifact_writer):
    result = benchmark.pedantic(run_parallel_scaling, rounds=1,
                                iterations=1)
    artifact_writer("parallel", result.render())
    print(result.render())

    # One serial-direct context row plus every worker count.
    assert [cell.workers for cell in result.cells] == [
        None, *DEFAULT_WORKER_AXIS]

    # Determinism: identical observable state at every worker count.
    reference = result.cell(0)
    assert reference.admitted > 0
    for workers in DEFAULT_WORKER_AXIS[1:]:
        cell = result.cell(workers)
        assert cell.fingerprint == reference.fingerprint
        assert cell.events == reference.events
        assert cell.rounds == reference.rounds
        assert cell.admitted == reference.admitted
        assert cell.spills == reference.spills

    # The decomposition is sane: total busy bounds the critical path,
    # the pipelined hub really overlapped work, every round counted.
    assert reference.lp_busy_s >= reference.lp_critical_s > 0
    assert reference.critical_path_s >= reference.lp_critical_s
    assert reference.hub_overlapped_s > 0
    assert reference.rounds > 0

    # The tentpole: the 4-pod decomposition clears the floor (the
    # checked-in JSON clears the full 2.5x target).
    assert result.critical_path_speedup() >= SPEEDUP_FLOOR
