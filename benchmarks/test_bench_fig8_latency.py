"""Bench: regenerate Fig. 8 (remote-memory round-trip latency breakdown).

Paper shape: the packet-switched round trip is dominated by the on-brick
switch and MAC/PHY blocks on both bricks; optical propagation is a minor
contributor; FEC would add >100 ns per direction (hence the FEC-free
requirement); the mainline circuit path is substantially faster.
"""

from __future__ import annotations

from repro.experiments.fig8_latency import run_fig8


def test_bench_fig8(benchmark, artifact_writer):
    result = benchmark.pedantic(run_fig8, rounds=5, iterations=1)
    artifact_writer("fig8", result.render())
    print(result.render())

    # Round trip in the ~1-2 microsecond regime.
    assert 1000 <= result.packet_total_ns <= 2500

    # MAC/PHY is the single largest block class; propagation is minor.
    blocks = result.by_block
    assert blocks["mac_phy"] == max(blocks.values())
    assert blocks["propagation"] < 0.1 * result.packet_total_ns

    # Both bricks contribute comparably; the optical path does not.
    groups = result.by_group
    assert groups["dCOMPUBRICK"] > 5 * groups["optical path"]
    assert groups["dMEMBRICK"] > 5 * groups["optical path"]

    # The FEC penalty: > 100 ns per direction, 4 traversals round trip.
    assert result.fec_penalty_ns > 400

    # The circuit-switched mainline is the latency-minimizing design.
    assert result.circuit_total_ns < 0.6 * result.packet_total_ns
