"""Bench: kernel events/sec per queue backend across workload shapes.

Runs the full ``kernel_bench`` trajectory (the same code path that
emits ``BENCH_kernel.json``) and asserts its shape: every (shape,
backend) cell measured, backends bit-identical on final state, and
the calendar queue clearly ahead of the binary heap on the raw
timeout-swarm shape.  The perf assertion uses a deliberately
conservative floor — the checked-in trajectory documents ~3x on a
quiet machine; a shared runner only ever subtracts from both sides,
but not evenly.
"""

from __future__ import annotations

from repro.experiments.kernel_bench import BACKENDS, SHAPES, run_kernel_bench

#: Interleaved rounds per backend; 2 keeps the wall-clock of the
#: million-entry swarm inside a few minutes while still absorbing a
#: one-off stall on either side.
BENCH_REPS = 2

#: Conservative floor for the calendar-vs-heap ratio on the raw swarm
#: (quiet-machine trajectory: ~3x).
SWARM_SPEEDUP_FLOOR = 1.5


def test_bench_kernel(benchmark, artifact_writer):
    result = benchmark.pedantic(run_kernel_bench, rounds=1, iterations=1,
                                kwargs={"reps": BENCH_REPS})
    artifact_writer("kernel", result.render())
    print(result.render())

    # Every shape measured on every backend, nothing degenerate.
    assert result.shapes() == list(SHAPES)
    for shape in result.shapes():
        cells = [result.cell(shape, backend) for backend in BACKENDS]
        for cell in cells:
            assert cell.events > 0
            assert cell.best_s > 0
            assert cell.events_per_s > 0
        # run_kernel_bench already raised if fingerprints diverged;
        # the peak pending population must line up too.
        assert len({cell.peak_queue for cell in cells}) == 1
        assert len({cell.fingerprint for cell in cells}) == 1
        assert len({cell.events for cell in cells}) == 1

    # The tentpole: the calendar queue beats the heap outright on the
    # raw timeout swarm (pop/push/cancel against a million pending
    # grants plus a cancelled-guard backlog).
    assert result.speedup("timeout_swarm") > SWARM_SPEEDUP_FLOOR

    # End-to-end shapes execute real callbacks, so Amdahl's law caps
    # the ratio — but the calendar must never be a regression outside
    # noise on the repo's own traffic.
    for shape in ("engine_swarm", "admission_70rps", "federation_3pod"):
        assert result.speedup(shape) > 0.7
