"""Non-gating CI smoke for the rolling-maintenance tier.

The full maintenance bench runs the three-cell study and writes the
artifact; this smoke runs only the drain and drain+faults cells
head-to-head and asserts the two headlines — the drain commits with
full admission, and the scripted correlated outage aborts with
conservation holding.  Wired as its own non-gating CI job alongside
the availability and federation smokes; see
`.github/workflows/ci.yml`.
"""

from __future__ import annotations

from repro.experiments.maintenance import _run_cell
from repro.topology import template


def test_maintenance_drain_smoke():
    drain = _run_cell(template("M"), "drain", 2018, drain=True)
    faulted = _run_cell(template("M"), "drain+faults", 2018,
                        drain=True, faults=True)

    # The rolling drain committed both racks with zero rejections.
    assert drain.drain_committed, drain.abort_reason
    assert drain.racks_retired == 2
    assert drain.rejected == 0
    assert drain.tenants_migrated > 0
    assert drain.verify_failures == 0

    # The scripted in-scope outage fenced the drain deterministically.
    assert faulted.drain_aborted
    assert faulted.domain_outages >= 1
    assert "fault" in faulted.abort_reason

    # Both cells conserve capacity, holds and claims.
    assert drain.conserved and faulted.conserved

    # Identical offered load in both cells.
    assert drain.admitted + drain.rejected == \
        faulted.admitted + faulted.rejected
