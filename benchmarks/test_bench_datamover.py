"""Bench: the data-mover win over the uncached circuit path.

The acceptance shape: on a locality-heavy workload the mover's hit
ratio reaches at least 0.8 and its mean remote-read latency is at
least 2x lower than the uncached circuit path — at every pod size —
and the decoupled link scheduler never queues a demand miss behind
prefetch or write-back traffic (zero priority inversions), while the
FIFO baseline demonstrably does.
"""

from __future__ import annotations

from repro.experiments.datamover import run_datamover


def test_bench_datamover(benchmark, artifact_writer):
    result = benchmark.pedantic(
        run_datamover,
        kwargs={"rack_counts": (1, 2, 4, 8)},
        rounds=1, iterations=1)
    artifact_writer("datamover", result.render())
    print(result.render())

    cells = {cell.rack_count: cell for cell in result.cells}
    assert sorted(cells) == [1, 2, 4, 8]

    # Multi-rack cells measure a segment whose circuit crosses the pod
    # switch — the mover hides the worst interconnect tier.
    assert not cells[1].cross_rack
    for racks in (2, 4, 8):
        assert cells[racks].cross_rack

    for racks, cell in cells.items():
        adaptive = cell.policy("adaptive")
        # The headline criterion: >= 0.8 hit ratio and >= 2x lower mean
        # remote-read latency than the uncached circuit path.
        assert adaptive.hit_ratio >= 0.8
        assert adaptive.mean_ns * 2 <= cell.uncached_mean_ns
        assert adaptive.speedup >= 2.0

        # Page granularity beats line granularity on this dense walk
        # (spatial locality amortizes the round trip); adaptive tracks
        # the page policy once promoted.
        line, page = cell.policy("line"), cell.policy("page")
        assert page.hit_ratio > line.hit_ratio
        assert page.mean_ns < line.mean_ns
        assert adaptive.hit_ratio >= 0.95 * page.hit_ratio

        # Queue discipline: demand misses are never queued behind
        # prefetch/write-back under priority scheduling; the FIFO
        # baseline inverts and pays for it in the demand tail.
        priority = cell.discipline("priority")
        fifo = cell.discipline("fifo")
        assert priority.inversions == 0
        assert fifo.inversions > 0
        assert priority.p99_ns <= fifo.p99_ns
        assert priority.bulk_served > 0  # bulk still gets through

    # Crossing the pod switch raises the uncached baseline, and the
    # mover's hit latency does not grow with pod size — so the speedup
    # grows with distance.
    assert (cells[2].uncached_mean_ns > cells[1].uncached_mean_ns)
    assert (cells[2].policy("adaptive").speedup
            > cells[1].policy("adaptive").speedup)
