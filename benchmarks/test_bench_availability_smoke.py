"""Non-gating CI smoke for the fault-injection tier.

The full availability sweep runs nine traced cells; this smoke runs
only the deterministic scripted-outage pair (every fault class fires
exactly once on a fixed clock, no MTBF sampling) and asserts the
headline: self-healing cuts tenant-seconds of unavailability by at
least the >= 5x target.  Wired as its own non-gating CI job alongside
the federation smoke; see `.github/workflows/ci.yml`.
"""

from __future__ import annotations

from repro.experiments.availability import (
    HEADLINE_SPEEDUP,
    SCRIPTED_OUTAGES,
    _run_cell,
    _scripted_plan,
)
from repro.topology import template


def test_availability_scripted_smoke():
    healed = _run_cell(template("M"), "scripted", True, 2018,
                       plan=_scripted_plan(), classes=())
    unhealed = _run_cell(template("M"), "scripted", False, 2018,
                         plan=_scripted_plan(), classes=())

    # Every scripted outage fired, in both modes.
    assert healed.faults == len(SCRIPTED_OUTAGES)
    assert unhealed.faults == len(SCRIPTED_OUTAGES)

    # The headline, free of MTBF sampling variance: reactions beat
    # waiting out the hardware repair by the acceptance target.
    assert unhealed.downtime_ts >= (HEADLINE_SPEEDUP
                                    * healed.downtime_ts)

    # Pod loss was healed through the ledger, and every attempted
    # re-admission landed (the sweep runs with capacity headroom).
    assert healed.readmissions > 0
    assert healed.readmission_failures == 0

    # Both modes served the identical offered load to completion.
    assert healed.admitted + healed.rejected == unhealed.admitted + \
        unhealed.rejected
