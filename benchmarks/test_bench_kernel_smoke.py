"""Non-gating CI smoke for the DES kernel's queue backends.

Reduced versions of every ``kernel_bench`` workload shape, run on
both pending-event backends, asserting only the *determinism*
contract: identical final clock and final counters whichever backend
schedules the events.  Throughput is deliberately not asserted here —
shared CI runners are too noisy for ratios; the perf claims live in
``BENCH_kernel.json`` and ``test_bench_kernel.py``.  Wired as its own
non-gating CI job alongside the other smokes; see
`.github/workflows/ci.yml`.

The reduced swarm keeps the full shape's time-scale separation
(cancellations happen well before watchdog deadlines, ring slots are
re-armed well after them) — shrinking the knobs arbitrarily would
cancel already-served entries, which the real engine forbids.
"""

from __future__ import annotations

import pytest

from repro.experiments.kernel_bench import (
    BACKENDS,
    _run_admission,
    _run_engine_swarm,
    _run_federation,
    _run_timeout_swarm,
)

SMOKE_SEED = 2018

#: Reduced swarm: same delay bands as the full shape, so the
#: cancel-lag (64 rounds ~ 3.2 us simulated) stays an order of
#: magnitude inside the 32 us watchdog deadline.
SWARM_KNOBS = dict(population=20_000, rounds=2_000, warmup_rounds=500,
                   guard_backlog=40_000, cancel_lag=64)


def _fingerprints(driver, **kwargs):
    return {backend: driver(backend, SMOKE_SEED, **kwargs)
            for backend in BACKENDS}


@pytest.mark.parametrize("driver,kwargs", [
    (_run_timeout_swarm, SWARM_KNOBS),
    (_run_engine_swarm, dict(population=5_000, events=10_000)),
    (_run_admission, dict(allocation_count=60)),
    (_run_federation, dict(tenant_count=40)),
], ids=["timeout_swarm", "engine_swarm", "admission", "federation"])
def test_backends_agree_on_final_state(driver, kwargs):
    runs = _fingerprints(driver, **kwargs)
    events = {backend: run[0] for backend, run in runs.items()}
    peaks = {backend: run[2] for backend, run in runs.items()}
    prints = {backend: run[3] for backend, run in runs.items()}

    # Same work retired, same high-water mark, same final state —
    # the backends must be observationally identical.
    assert len(set(events.values())) == 1, events
    assert len(set(peaks.values())) == 1, peaks
    assert len(set(prints.values())) == 1, prints
    assert min(events.values()) > 0
