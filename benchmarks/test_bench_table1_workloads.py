"""Bench: regenerate Table I (VM workload mixes for the TCO studies)."""

from __future__ import annotations

from repro.experiments.table1_workloads import run_table1


def test_bench_table1(benchmark, artifact_writer):
    result = benchmark.pedantic(run_table1, rounds=3, iterations=1)
    artifact_writer("table1", result.render())
    print(result.render())

    # The exact paper table.
    assert result.rows() == [
        ("Random", "1-32 cores", "1-32 GB"),
        ("High RAM", "1-8 cores", "24-32 GB"),
        ("High CPU", "24-32 cores", "1-8 GB"),
        ("Half Half", "16 cores", "16 GB"),
        ("More RAM", "1-6 cores", "17-32 GB"),
        ("More CPU", "17-32 cores", "1-16 GB"),
    ]
    # Sampled demand respects every configured range.
    for name, stats in result.sample_stats.items():
        assert stats["min_vcpus"] >= 1, name
        assert stats["max_ram_gib"] <= 32, name
