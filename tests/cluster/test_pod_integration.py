"""Integration: the control plane drives a 2-rack pod under load.

Boot / scale / migrate / depart traffic over a :class:`PodFabric`
(circuits may span the inter-rack switch tier), served by the batched
event-driven control plane with background defragmentation — the full
PR-3 stack in one test.
"""

from __future__ import annotations

from repro.cluster.control_plane import ControlPlane
from repro.cluster.defrag import DefragmentationTask
from repro.cluster.trace import poisson_trace
from repro.core.builder import PodBuilder
from repro.units import gib


def build_pod():
    return (PodBuilder("itg")
            .with_racks(2)
            .with_compute_bricks(2, cores=16, local_memory=gib(2))
            .with_memory_bricks(2, modules=2, module_size=gib(8))
            .build())


def test_two_rack_pod_under_load():
    system = build_pod()
    trace = poisson_trace(
        30, arrival_rate_hz=15.0, vcpus=2, ram_bytes=gib(3),
        mean_lifetime_s=1.5, scale_fraction=0.5, scale_bytes=gib(1),
        migrate_fraction=0.3, seed=7)
    task = DefragmentationTask(system, interval_s=0.2,
                               max_relocations_per_pass=2)
    plane = ControlPlane(system, max_batch=4, batch_window_s=0.001,
                         workers=4, defrag=task)
    stats = plane.serve_trace(trace)

    # The pod served real multi-tenant load end to end.
    boots = stats.completed("boot")
    assert len(boots) >= 20
    assert stats.completed("depart")
    assert stats.completed("scale_up")
    assert len(stats.completed("migrate")) >= 1

    # VM RAM (3 GiB) exceeds local DRAM (2 GiB): every boot attached
    # disaggregated memory, some of it across the pod switch.
    assert all(request.latency_s > 0 for request in boots)

    # Every departed tenant cleaned up; only still-living tenants (if
    # any were rejected mid-lifecycle) could remain.
    departed = {r.tenant_id for r in stats.completed("depart")}
    for vm in system.vms:
        assert vm.vm_id not in departed

    # Pool accounting is consistent: live segments exactly match what
    # the allocators think is carved out.
    live_bytes = sum(s.size for s in system.sdm.live_segments)
    allocated = sum(e.allocator.allocated_bytes
                    for e in system.sdm.registry.memory_entries)
    assert live_bytes == allocated

    # Contention was really modeled: requests queued at least once.
    assert stats.max_queue_depth >= 1
    assert stats.busy_s > 0


def test_cross_rack_circuits_were_used():
    system = build_pod()
    trace = poisson_trace(
        16, arrival_rate_hz=30.0, vcpus=2, ram_bytes=gib(6),
        mean_lifetime_s=5.0, scale_fraction=0.0, seed=11)
    plane = ControlPlane(system, max_batch=4, workers=4)

    crossings = []

    def probe():
        yield plane.sim.timeout(4.0)
        for segment in system.sdm.live_segments:
            record = system.sdm.segment_record(segment.segment_id)
            hop_path = record.circuit.hop_path
            if hop_path is not None and hop_path.crosses_racks:
                crossings.append(segment.segment_id)

    plane.sim.process(probe())
    plane.serve_trace(trace)
    # Demand (16 x 6 GiB > one rack's 32 GiB pool) forced the SDM-C to
    # place segments behind the second switch tier.
    assert crossings
