"""Unit tests for the event-driven control plane."""

from __future__ import annotations

import pytest

from repro.cluster.control_plane import ControlPlane
from repro.cluster.trace import ScaleEvent, TenantSpec, TenantTrace
from repro.core.builder import RackBuilder
from repro.errors import OrchestrationError
from repro.units import gib, mib


def build_system(compute=2, memory=2):
    return (RackBuilder("cp")
            .with_compute_bricks(compute, cores=16, local_memory=gib(4))
            .with_memory_bricks(memory, modules=4, module_size=gib(8))
            .build())


def boot_vm(plane, vm_id="vm-0", vcpus=2, ram=gib(1)):
    from repro.orchestration.requests import VmAllocationRequest
    request = plane.submit("boot", vm_id, request=VmAllocationRequest(
        vm_id=vm_id, vcpus=vcpus, ram_bytes=ram))
    return request


class TestAdmission:
    def test_unknown_kind_rejected(self):
        plane = ControlPlane(build_system())
        with pytest.raises(OrchestrationError, match="unknown request kind"):
            plane.submit("reboot", "t0")

    def test_boot_served_and_latency_accounted(self):
        plane = ControlPlane(build_system())
        request = boot_vm(plane)
        stats = plane.drain()
        assert request.record.ok
        record = stats.completed("boot")[0]
        # Boot service (hypervisor spawn alone is 900 ms) is charged on
        # the simulated clock end to end.
        assert record.latency_s > 0.9
        assert record.latency_s == pytest.approx(
            request.result.latency_s, rel=0.1)
        assert plane.system.vms[0].vm_id == "vm-0"

    def test_rejected_boot_recorded_not_raised(self):
        plane = ControlPlane(build_system())
        request = boot_vm(plane, vcpus=99)
        stats = plane.drain()
        assert not request.record.ok
        assert "PlacementError" in request.record.note
        assert len(stats.rejected("boot")) == 1

    def test_queue_depth_sampled_at_submit(self):
        plane = ControlPlane(build_system(), workers=1)
        for index in range(4):
            boot_vm(plane, f"vm-{index}", vcpus=1)
        plane.drain()
        depths = [s.value for s in plane.stats.queue_depth_samples]
        # All four submitted at t=0 with one worker: backlog visible.
        assert max(depths) >= 2

    def test_drain_refused_with_background_tasks(self):
        plane = ControlPlane(build_system(), rebalance_interval_s=0.5)
        with pytest.raises(OrchestrationError, match="background"):
            plane.drain()


class TestBatching:
    def _scale_traffic(self, plane, count):
        boot = boot_vm(plane, "vm-0", vcpus=2, ram=mib(512))
        requests = []

        def driver():
            yield boot.done
            for _ in range(count):
                request = plane.submit("scale_up", "vm-0",
                                       size_bytes=mib(256))
                requests.append(request)
            yield plane.sim.all_of([r.done for r in requests])

        plane.sim.process(driver())
        plane.drain()
        return requests

    def test_batch_amortizes_config_generation(self):
        config_s = None
        total = {}
        for max_batch in (1, 8):
            plane = ControlPlane(build_system(), max_batch=max_batch,
                                 workers=1)
            config_s = plane.system.sdm.timings.config_generation_s
            requests = self._scale_traffic(plane, 8)
            assert all(r.record.ok for r in requests)
            total[max_batch] = max(r.record.completed_s
                                   for r in requests)
        # The batched plane pushes one configuration instead of eight:
        # the makespan shrinks by at least a few config times (the
        # batch also overlaps brick-side work, which only helps more).
        assert total[8] < total[1] - 3 * config_s

    def test_per_request_mode_charges_config_each_time(self):
        plane = ControlPlane(build_system(), max_batch=1, workers=1)
        requests = self._scale_traffic(plane, 3)
        sdm_steps = [r.result.steps["sdm"] for r in requests]
        config_s = plane.system.sdm.timings.config_generation_s
        for step in sdm_steps:
            assert step >= config_s

    def test_batched_ticket_excludes_config_share(self):
        sdm_steps = {}
        for max_batch in (1, 8):
            plane = ControlPlane(build_system(), max_batch=max_batch,
                                 workers=1)
            requests = self._scale_traffic(plane, 4)
            sdm_steps[max_batch] = [r.result.steps["sdm"]
                                    for r in requests]
            config_s = plane.system.sdm.timings.config_generation_s
        # Identical traffic: the batched tickets bill exactly one
        # config-generation less per request (it is amortized).
        for per_request, batched in zip(sdm_steps[1], sdm_steps[8]):
            assert batched == pytest.approx(per_request - config_s)


class TestCompletionOffload:
    def _scale_pair_makespan(self, offload):
        """Two tenants' scale-ups through a single-worker plane."""
        system = build_system()
        for index in range(2):
            from repro.orchestration.requests import VmAllocationRequest
            system.boot_vm(VmAllocationRequest(
                vm_id=f"vm-{index}", vcpus=2, ram_bytes=mib(512)))
        plane = ControlPlane(system, workers=1, offload=offload)
        requests = [plane.submit("scale_up", f"vm-{index}",
                                 size_bytes=mib(256))
                    for index in range(2)]
        plane.drain()
        assert all(r.record.ok for r in requests)
        return requests, max(r.record.completed_s for r in requests)

    def test_worker_freed_at_commit_overlaps_brick_side(self):
        # With one worker, the serial plane fully serializes the two
        # pipelines; the offloading plane frees the worker once the
        # first reservation commits, so the second request's brick-side
        # phase overlaps the first's detached acknowledgement.
        _requests, serial = self._scale_pair_makespan(offload=False)
        _requests, offloaded = self._scale_pair_makespan(offload=True)
        assert offloaded < serial

    def test_done_still_fires_at_full_completion(self):
        requests, _makespan = self._scale_pair_makespan(offload=True)
        for request in requests:
            # committed (reservation) strictly precedes the brick-side
            # acknowledgement that completes the request...
            assert request.committed.triggered
            # ...and the reported latency covers the whole pipeline,
            # not just the controller part.
            assert request.record.latency_s >= \
                request.result.total_latency_s

    def test_release_last_kind_commits_at_execution(self):
        system = build_system()
        plane = ControlPlane(system, workers=1, offload=True)
        boot = boot_vm(plane, "vm-0", vcpus=2, ram=mib(512))

        def driver():
            yield boot.done
            depart = plane.submit("depart", "vm-0")
            yield depart.done
            assert depart.committed.triggered

        plane.sim.process(driver())
        plane.drain()
        assert plane.system.vms == []


class TestLifecycles:
    def test_full_lifecycle_trace(self):
        plane = ControlPlane(build_system(), max_batch=4,
                             batch_window_s=0.001)
        spec = TenantSpec(
            tenant_id="tenant-0", arrival_s=0.0, vcpus=2,
            ram_bytes=gib(1), lifetime_s=3.0,
            scale_events=(ScaleEvent(0.5, "up", gib(1)),
                          ScaleEvent(1.5, "down", gib(1))),
            migrate_at_s=2.0)
        stats = plane.serve_trace(TenantTrace("unit", [spec]))
        kinds = {r.kind for r in stats.completed()}
        assert kinds == {"boot", "scale_up", "scale_down",
                         "migrate", "depart"}
        # Everything wound down: no VMs, no segments, no leaks.
        assert plane.system.vms == []
        assert plane.system.sdm.live_segments == []

    def test_migration_moved_the_vm(self):
        plane = ControlPlane(build_system(compute=2))
        spec = TenantSpec(
            tenant_id="tenant-0", arrival_s=0.0, vcpus=2,
            ram_bytes=gib(1), lifetime_s=2.0, migrate_at_s=0.5)
        bricks = []

        def spy():
            yield plane.sim.timeout(1.2)
            bricks.append(plane.system.hosting("tenant-0").brick_id)

        plane.sim.process(spy())
        stats = plane.serve_trace(TenantTrace("unit", [spec]))
        migrations = stats.completed("migrate")
        assert len(migrations) == 1
        report = next(r for r in stats.records
                      if r.kind == "migrate")
        assert report.ok

    def test_rejected_tenant_stops_its_lifecycle(self):
        plane = ControlPlane(build_system())
        specs = [TenantSpec(f"t{i}", 0.0, vcpus=99, ram_bytes=gib(1),
                            lifetime_s=1.0) for i in range(3)]
        stats = plane.serve_trace(TenantTrace("unit", specs))
        assert len(stats.rejected("boot")) == 3
        assert stats.completed("depart") == []

    def test_elastic_manager_lifecycle(self):
        plane = ControlPlane(build_system(), rebalance_interval_s=0.25)
        spec = TenantSpec(
            tenant_id="tenant-0", arrival_s=0.0, vcpus=2,
            ram_bytes=gib(1), lifetime_s=3.0,
            scale_events=(ScaleEvent(0.5, "up", gib(2)),
                          ScaleEvent(2.0, "down", gib(2))))
        stats = plane.serve_trace(TenantTrace("unit", [spec]))
        # Demand went through the rebalancer, not the admission queue.
        assert stats.completed("scale_up") == []
        assert stats.rebalance_passes >= 1
        assert plane.system.vms == []


class TestUtilizationAndFragmentation:
    def test_stats_populated(self):
        plane = ControlPlane(build_system())
        spec = TenantSpec("tenant-0", 0.0, vcpus=2, ram_bytes=gib(6),
                          lifetime_s=1.0)
        stats = plane.serve_trace(TenantTrace("unit", [spec]))
        assert stats.duration_s > 0
        assert 0 < stats.utilization <= 1
        assert stats.fragmentation_samples
        assert stats.latency_percentile(99, "boot") >= \
            stats.latency_percentile(50, "boot") > 0
