"""Property: the admission queue never reorders same-tenant requests.

Whatever the batch size, worker count and interleaving of tenants, the
control plane must apply a tenant's operations in submission order —
scale-downs must not overtake the scale-ups that created their
segments, and departs must come last.  Execution order is what matters
(``started_s``): with batching, completion is deliberately batch-
aligned.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.control_plane import ControlPlane
from repro.core.builder import RackBuilder
from repro.orchestration.requests import VmAllocationRequest
from repro.units import gib, mib


def build_plane(max_batch: int, workers: int) -> ControlPlane:
    system = (RackBuilder("prop")
              .with_compute_bricks(2, cores=32, local_memory=gib(8))
              .with_memory_bricks(2, modules=4, module_size=gib(8))
              .build())
    return ControlPlane(system, max_batch=max_batch, workers=workers)


@settings(max_examples=25, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=3),
             min_size=4, max_size=24),
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=1, max_value=4),
)
def test_same_tenant_requests_execute_in_submission_order(
        tenant_picks, max_batch, workers):
    plane = build_plane(max_batch, workers)
    tenants = sorted(set(tenant_picks))
    for tenant in tenants:
        plane.submit(
            "boot", f"t{tenant}",
            request=VmAllocationRequest(
                vm_id=f"t{tenant}", vcpus=1, ram_bytes=mib(256)))
    # A burst of same-instant scale-ups in an arbitrary tenant order —
    # exactly the pattern that puts several same-tenant requests into
    # the queue (and possibly the same batch) at once.
    for tenant in tenant_picks:
        plane.submit("scale_up", f"t{tenant}", size_bytes=mib(128))
    stats = plane.drain()

    assert all(record.ok for record in stats.records), [
        record.note for record in stats.records if not record.ok]
    for tenant in tenants:
        mine = [record for record in stats.records
                if record.tenant_id == f"t{tenant}"]
        submission = sorted(mine, key=lambda r: r.submitted_s)
        by_start = sorted(mine, key=lambda r: r.started_s)
        assert submission == by_start
        # Ordering is strict: no two same-tenant requests even overlap.
        for earlier, later in zip(submission, submission[1:]):
            assert later.started_s >= earlier.started_s
