"""Unit tests for the tenant trace generators."""

from __future__ import annotations

import pytest

from repro.cluster.trace import (
    ScaleEvent,
    TenantTrace,
    TenantSpec,
    bursty_trace,
    diurnal_trace,
    poisson_trace,
)
from repro.errors import ConfigurationError
from repro.units import gib


class TestTraceBasics:
    def test_trace_is_sorted_by_arrival(self):
        trace = poisson_trace(200, arrival_rate_hz=50.0)
        arrivals = [t.arrival_s for t in trace.tenants]
        assert arrivals == sorted(arrivals)

    def test_requested_count_generated(self):
        trace = poisson_trace(137, arrival_rate_hz=10.0)
        assert len(trace) == 137

    def test_request_count_covers_lifecycle(self):
        spec = TenantSpec("t", 0.0, 1, gib(1), 1.0,
                          scale_events=(ScaleEvent(0.1, "up", gib(1)),),
                          migrate_at_s=0.5)
        trace = TenantTrace("unit", [spec])
        # boot + 1 scale + migrate + depart
        assert trace.request_count() == 4

    def test_scales_to_thousands_of_tenants(self):
        trace = poisson_trace(5000, arrival_rate_hz=100.0)
        assert len(trace) == 5000
        assert trace.arrival_rate_hz == pytest.approx(100.0, rel=0.15)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            poisson_trace(0, arrival_rate_hz=1.0)
        with pytest.raises(ConfigurationError):
            poisson_trace(1, arrival_rate_hz=0.0)
        with pytest.raises(ConfigurationError):
            ScaleEvent(0.1, "sideways", gib(1))


class TestReproducibility:
    @pytest.mark.parametrize("generator", [
        poisson_trace, diurnal_trace, bursty_trace])
    def test_same_seed_same_trace(self, generator):
        first = generator(100, 20.0, seed=42)
        second = generator(100, 20.0, seed=42)
        assert first.tenants == second.tenants

    @pytest.mark.parametrize("generator", [
        poisson_trace, diurnal_trace, bursty_trace])
    def test_different_seed_different_trace(self, generator):
        first = generator(100, 20.0, seed=42)
        second = generator(100, 20.0, seed=43)
        assert first.tenants != second.tenants


class TestShapes:
    def test_poisson_mean_rate(self):
        trace = poisson_trace(2000, arrival_rate_hz=40.0)
        assert trace.arrival_rate_hz == pytest.approx(40.0, rel=0.1)

    def test_diurnal_rate_oscillates(self):
        period = 10.0
        trace = diurnal_trace(3000, base_rate_hz=20.0, peak_factor=4.0,
                              period_s=period)
        # Split arrivals by position in the day: the half-period around
        # the sine peak must hold clearly more arrivals than the trough.
        peak, trough = 0, 0
        for tenant in trace.tenants:
            phase = (tenant.arrival_s % period) / period
            if 0.0 <= phase < 0.5:
                peak += 1
            else:
                trough += 1
        assert peak > 1.5 * trough

    def test_bursty_clusters_arrivals(self):
        trace = bursty_trace(2000, arrival_rate_hz=40.0,
                             mean_burst_size=10.0,
                             intra_burst_gap_s=0.001)
        gaps = [b.arrival_s - a.arrival_s
                for a, b in zip(trace.tenants, trace.tenants[1:])]
        tiny = sum(1 for gap in gaps if gap <= 0.001 + 1e-9)
        # Most inter-arrival gaps are intra-burst.
        assert tiny > 0.7 * len(gaps)

    def test_scale_events_sorted_and_bounded(self):
        trace = poisson_trace(500, arrival_rate_hz=50.0,
                              scale_fraction=1.0, mean_lifetime_s=2.0)
        for tenant in trace.tenants:
            offsets = [e.at_s for e in tenant.scale_events]
            assert offsets == sorted(offsets)
            assert all(0 <= at <= tenant.lifetime_s for at in offsets)

    def test_migrate_fraction(self):
        trace = poisson_trace(1000, arrival_rate_hz=50.0,
                              migrate_fraction=0.5)
        migrating = sum(1 for t in trace.tenants
                        if t.migrate_at_s is not None)
        assert 300 < migrating < 700
