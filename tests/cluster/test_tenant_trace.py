"""Unit tests for the tenant trace generators and the replay loader."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.cluster.trace import (
    ReplayTrace,
    ScaleEvent,
    TenantTrace,
    TenantSpec,
    bursty_trace,
    diurnal_trace,
    poisson_trace,
)
from repro.errors import ConfigurationError
from repro.units import gib

AZURE_FIXTURE = Path(__file__).parent / "fixtures" / "azure_sample.csv"


class TestTraceBasics:
    def test_trace_is_sorted_by_arrival(self):
        trace = poisson_trace(200, arrival_rate_hz=50.0)
        arrivals = [t.arrival_s for t in trace.tenants]
        assert arrivals == sorted(arrivals)

    def test_requested_count_generated(self):
        trace = poisson_trace(137, arrival_rate_hz=10.0)
        assert len(trace) == 137

    def test_request_count_covers_lifecycle(self):
        spec = TenantSpec("t", 0.0, 1, gib(1), 1.0,
                          scale_events=(ScaleEvent(0.1, "up", gib(1)),),
                          migrate_at_s=0.5)
        trace = TenantTrace("unit", [spec])
        # boot + 1 scale + migrate + depart
        assert trace.request_count() == 4

    def test_scales_to_thousands_of_tenants(self):
        trace = poisson_trace(5000, arrival_rate_hz=100.0)
        assert len(trace) == 5000
        assert trace.arrival_rate_hz == pytest.approx(100.0, rel=0.15)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            poisson_trace(0, arrival_rate_hz=1.0)
        with pytest.raises(ConfigurationError):
            poisson_trace(1, arrival_rate_hz=0.0)
        with pytest.raises(ConfigurationError):
            ScaleEvent(0.1, "sideways", gib(1))


class TestReproducibility:
    @pytest.mark.parametrize("generator", [
        poisson_trace, diurnal_trace, bursty_trace])
    def test_same_seed_same_trace(self, generator):
        first = generator(100, 20.0, seed=42)
        second = generator(100, 20.0, seed=42)
        assert first.tenants == second.tenants

    @pytest.mark.parametrize("generator", [
        poisson_trace, diurnal_trace, bursty_trace])
    def test_different_seed_different_trace(self, generator):
        first = generator(100, 20.0, seed=42)
        second = generator(100, 20.0, seed=43)
        assert first.tenants != second.tenants


class TestShapes:
    def test_poisson_mean_rate(self):
        trace = poisson_trace(2000, arrival_rate_hz=40.0)
        assert trace.arrival_rate_hz == pytest.approx(40.0, rel=0.1)

    def test_diurnal_rate_oscillates(self):
        period = 10.0
        trace = diurnal_trace(3000, base_rate_hz=20.0, peak_factor=4.0,
                              period_s=period)
        # Split arrivals by position in the day: the half-period around
        # the sine peak must hold clearly more arrivals than the trough.
        peak, trough = 0, 0
        for tenant in trace.tenants:
            phase = (tenant.arrival_s % period) / period
            if 0.0 <= phase < 0.5:
                peak += 1
            else:
                trough += 1
        assert peak > 1.5 * trough

    def test_bursty_clusters_arrivals(self):
        trace = bursty_trace(2000, arrival_rate_hz=40.0,
                             mean_burst_size=10.0,
                             intra_burst_gap_s=0.001)
        gaps = [b.arrival_s - a.arrival_s
                for a, b in zip(trace.tenants, trace.tenants[1:])]
        tiny = sum(1 for gap in gaps if gap <= 0.001 + 1e-9)
        # Most inter-arrival gaps are intra-burst.
        assert tiny > 0.7 * len(gaps)

    def test_scale_events_sorted_and_bounded(self):
        trace = poisson_trace(500, arrival_rate_hz=50.0,
                              scale_fraction=1.0, mean_lifetime_s=2.0)
        for tenant in trace.tenants:
            offsets = [e.at_s for e in tenant.scale_events]
            assert offsets == sorted(offsets)
            assert all(0 <= at <= tenant.lifetime_s for at in offsets)

    def test_migrate_fraction(self):
        trace = poisson_trace(1000, arrival_rate_hz=50.0,
                              migrate_fraction=0.5)
        migrating = sum(1 for t in trace.tenants
                        if t.migrate_at_s is not None)
        assert 300 < migrating < 700


class TestReplayTrace:
    def test_loads_azure_column_shape(self):
        trace = ReplayTrace.from_csv(AZURE_FIXTURE)
        assert len(trace) == 8
        assert trace.source == str(AZURE_FIXTURE)
        by_id = {t.tenant_id: t for t in trace.tenants}
        first = by_id["az-0001"]
        # Arrivals are re-based to t=0 at the earliest row.
        assert first.arrival_s == 0.0
        assert by_id["az-0002"].arrival_s == 30.0
        # Lifetime derived from the created/deleted pair.
        assert first.lifetime_s == 3600.0
        # Azure's vmmemory column is GiB; vmcorecount is honoured.
        assert first.ram_bytes == gib(4)
        assert first.vcpus == 2

    def test_is_a_tenant_trace(self):
        trace = ReplayTrace.from_csv(AZURE_FIXTURE)
        assert isinstance(trace, TenantTrace)
        arrivals = [t.arrival_s for t in trace.tenants]
        assert arrivals == sorted(arrivals)
        # Same per-tenant event stream as the generators: boot + depart.
        assert trace.request_count() == 2 * len(trace)

    def test_google_style_columns_and_bytes(self, tmp_path):
        path = tmp_path / "google.csv"
        path.write_text(
            "machine_id,submit_time,duration_s,mem_bytes\n"
            "g-1,5,100,1073741824\n"
            "g-2,9,50,2147483648\n",
            encoding="utf-8")
        trace = ReplayTrace.from_csv(path, default_vcpus=4)
        assert [t.tenant_id for t in trace.tenants] == ["g-1", "g-2"]
        assert trace.tenants[0].ram_bytes == gib(1)
        assert trace.tenants[1].arrival_s == 4.0  # re-based to first row
        assert all(t.vcpus == 4 for t in trace.tenants)

    def test_max_tenants_truncates(self):
        trace = ReplayTrace.from_csv(AZURE_FIXTURE, max_tenants=3)
        assert len(trace) == 3

    def test_missing_columns_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("vmid,vmcreated\nx,1\n", encoding="utf-8")
        with pytest.raises(ConfigurationError, match="missing required"):
            ReplayTrace.from_csv(path)

    def test_non_positive_lifetime_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text(
            "vmid,vmcreated,vmdeleted,vmmemory\nx,100,100,2\n",
            encoding="utf-8")
        with pytest.raises(ConfigurationError, match="lifetime"):
            ReplayTrace.from_csv(path)

    def test_malformed_numeric_field_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text(
            "vmid,vmcreated,vmdeleted,vmmemory\nx,soon,100,2\n",
            encoding="utf-8")
        with pytest.raises(ConfigurationError, match="malformed"):
            ReplayTrace.from_csv(path)

    def test_replay_drives_the_control_plane(self):
        from repro.cluster.control_plane import ControlPlane
        from repro.core.builder import RackBuilder

        system = (RackBuilder("replay")
                  .with_compute_bricks(2, cores=16, local_memory=gib(4))
                  .with_memory_bricks(2, modules=2, module_size=gib(16))
                  .build())
        plane = ControlPlane(system, workers=4)
        # Compress the measured timeline so the test stays fast.
        raw = ReplayTrace.from_csv(AZURE_FIXTURE)
        trace = TenantTrace(name="replay", tenants=[
            TenantSpec(tenant_id=t.tenant_id,
                       arrival_s=t.arrival_s / 1000.0,
                       vcpus=t.vcpus, ram_bytes=t.ram_bytes,
                       lifetime_s=t.lifetime_s / 1000.0)
            for t in raw.tenants])
        stats = plane.serve_trace(trace)
        assert len(stats.completed("boot")) == len(trace)
        assert len(stats.completed("depart")) == len(trace)
        assert system.vms == []
