"""Tests for background defragmentation / consolidation."""

from __future__ import annotations

import pytest

from repro.cluster.control_plane import ControlPlane
from repro.cluster.defrag import DefragmentationTask
from repro.cluster.trace import TenantSpec, TenantTrace
from repro.core.builder import RackBuilder
from repro.errors import ReproError
from repro.units import gib


def build_system(memory=3):
    return (RackBuilder("defrag")
            .with_compute_bricks(2, cores=32, local_memory=gib(8))
            .with_memory_bricks(memory, modules=2, module_size=gib(8))
            .build())


def spread_segments(system, per_brick=2):
    """Force segments onto every memory brick (spread by hand)."""
    from repro.orchestration.placement import SpreadPolicy
    system.sdm.policy = SpreadPolicy()
    results = []
    brick_count = len(system.sdm.registry.memory_entries)
    system.boot_vm(__vm_request("spread-vm"))
    for index in range(per_brick * brick_count):
        results.append(system.scale_up("spread-vm", gib(1)))
    return results


def __vm_request(vm_id):
    from repro.orchestration.requests import VmAllocationRequest
    return VmAllocationRequest(vm_id=vm_id, vcpus=2, ram_bytes=gib(1))


class TestPassMechanics:
    def test_consolidates_onto_fewer_bricks(self):
        system = build_system()
        spread_segments(system, per_brick=2)
        occupied_before = sum(
            1 for e in system.sdm.registry.memory_entries
            if e.allocator.allocation_count > 0)
        assert occupied_before == 3

        task = DefragmentationTask(system, max_relocations_per_pass=16)
        report = task.run_pass()
        occupied_after = sum(
            1 for e in system.sdm.registry.memory_entries
            if e.allocator.allocation_count > 0)
        assert report.relocations > 0
        assert report.bytes_moved >= report.relocations * gib(1)
        assert occupied_after < occupied_before

    def test_emptied_brick_powered_off(self):
        system = build_system()
        spread_segments(system, per_brick=1)
        task = DefragmentationTask(system, max_relocations_per_pass=16)
        report = task.run_pass()
        assert report.bricks_emptied >= 1
        powered = [e.brick.is_powered
                   for e in system.sdm.registry.memory_entries]
        assert not all(powered)

    def test_segments_stay_consistent_after_relocation(self):
        system = build_system()
        results = spread_segments(system, per_brick=2)
        task = DefragmentationTask(system, max_relocations_per_pass=16)
        task.run_pass()
        # Every runtime segment still resolves: records point at the
        # brick that now really holds the allocation.
        for result in results:
            record = system.sdm.segment_record(
                result.segment.segment_id)
            entry = system.sdm.registry.memory(
                record.segment.memory_brick_id)
            spans = {span.base
                     for span in entry.allocator.allocated_spans()}
            assert record.segment.offset in spans
            assert record.entry.remote_brick_id == \
                record.segment.memory_brick_id
        # And the owning VM can still scale everything back down.
        for result in results:
            system.scale_down("spread-vm", result.segment.segment_id)
        assert system.sdm.live_segments == []
        brick_id = system.hosting("spread-vm").brick_id
        assert system.stack(brick_id).scaleup.attached_segments() == []

    def test_feeds_placement_policy(self):
        system = build_system()
        spread_segments(system, per_brick=2)
        from repro.orchestration.placement import PowerAwarePackingPolicy
        system.sdm.policy = PowerAwarePackingPolicy()
        task = DefragmentationTask(system, max_relocations_per_pass=4)
        task.run_pass()
        assert system.sdm.policy.hot_bricks  # consolidation targets

    def test_nothing_to_do_is_a_noop(self):
        system = build_system()
        task = DefragmentationTask(system)
        report = task.run_pass()
        assert report.relocations == 0
        assert report.passes == 1

    def test_invalid_configuration_rejected(self):
        system = build_system()
        with pytest.raises(ReproError):
            DefragmentationTask(system, interval_s=0)
        with pytest.raises(ReproError):
            DefragmentationTask(system, max_relocations_per_pass=0)
        with pytest.raises(ReproError):
            DefragmentationTask(system, planner="tetris")


class _PinnedPolicy:
    """Scripted placement: each allocation lands on the queued brick."""

    def __init__(self, queue):
        self.queue = list(queue)

    def select_memory_brick(self, candidates, size_bytes,
                            origin_rack_id=None):
        target = self.queue.pop(0)
        assert any(c.brick_id == target for c in candidates), target
        return target

    def select_compute_brick(self, candidates, vcpus, ram_bytes=0,
                             origin_rack_id=None):
        return candidates[0].brick_id if candidates else None


class TestPlannerComparison:
    """Best-fit-decreasing vs greedy on a fixed fragmented fixture.

    The fixture is built so the greedy planner wastes the pool's one
    large free span on a small segment (it packs onto the *fullest*
    brick first) and strands the source brick half-drained, while BFD
    places the large segment first into the tightest sufficient span
    and fully empties — and powers off — the source brick.
    """

    MIB_512 = gib(1) // 2

    def _fixture(self):
        """3 memory bricks of 4 GiB:

        * ``mbS`` (source): segments [1 GiB, 512 MiB] — emptiest;
        * ``mbA``: 3 GiB allocated, one contiguous 1 GiB hole;
        * ``mbB``: 2 GiB allocated, four fragmented 512 MiB holes.
        """
        system = (RackBuilder("planner")
                  .with_compute_bricks(1, cores=8, local_memory=gib(2))
                  .with_memory_bricks(3, modules=2, module_size=gib(2))
                  .with_section_size(self.MIB_512)
                  .build())
        from repro.orchestration.requests import VmAllocationRequest
        system.boot_vm(VmAllocationRequest(
            vm_id="planner-vm", vcpus=2, ram_bytes=gib(1)))
        mb = [f"planner.mb{i}" for i in range(3)]
        plan = ([mb[1]] * 4          # fill mbA with 4 x 1 GiB
                + [mb[2]] * 8        # fill mbB with 8 x 512 MiB
                + [mb[0], mb[0]])    # the source's two segments
        system.sdm.policy = _PinnedPolicy(plan)
        a_fill = [system.scale_up("planner-vm", gib(1)) for _ in range(4)]
        b_fill = [system.scale_up("planner-vm", self.MIB_512)
                  for _ in range(8)]
        system.scale_up("planner-vm", gib(1))
        system.scale_up("planner-vm", self.MIB_512)
        # Punch the holes: one 1 GiB hole in mbA, alternating 512 MiB
        # holes in mbB.
        system.scale_down("planner-vm", a_fill[1].segment.segment_id)
        for index in (1, 3, 5, 7):
            system.scale_down("planner-vm",
                              b_fill[index].segment.segment_id)
        layout = {e.brick.brick_id:
                  (e.allocator.allocated_bytes,
                   e.allocator.largest_free_span)
                  for e in system.sdm.registry.memory_entries}
        assert layout[mb[0]] == (gib(1) + self.MIB_512, gib(2) + self.MIB_512)
        assert layout[mb[1]] == (3 * gib(1), gib(1))
        assert layout[mb[2]] == (2 * gib(1), self.MIB_512)
        return system

    def _power_off_fraction(self, planner):
        system = self._fixture()
        task = DefragmentationTask(system, planner=planner,
                                   max_relocations_per_pass=8)
        report = task.run_pass()
        bricks = system.sdm.registry.memory_entries
        # Whatever the planner did, nothing leaked or double-booked.
        live = sum(s.size for s in system.sdm.live_segments)
        allocated = sum(e.allocator.allocated_bytes for e in bricks)
        assert live == allocated
        return report.bricks_emptied / len(bricks), report

    def test_best_fit_decreasing_beats_greedy_on_power_off(self):
        greedy_fraction, greedy_report = self._power_off_fraction("greedy")
        bfd_fraction, bfd_report = self._power_off_fraction(
            "best-fit-decreasing")
        # Greedy burns mbA's 1 GiB hole on the 512 MiB segment, then
        # cannot place the 1 GiB one anywhere: source stays occupied.
        assert greedy_report.bricks_emptied == 0
        # BFD places largest-first into the tightest span and drains
        # the source completely.
        assert bfd_report.bricks_emptied == 1
        assert bfd_fraction > greedy_fraction
        assert bfd_report.relocations == 2


class TestInControlPlane:
    def test_defrag_runs_in_idle_windows(self):
        system = build_system()
        task = DefragmentationTask(system, interval_s=0.1,
                                   max_relocations_per_pass=4)
        plane = ControlPlane(system, defrag=task)
        # Two tenants spread over the pool, then a long idle tail.
        specs = [
            TenantSpec(f"tenant-{i}", arrival_s=0.1 * i, vcpus=2,
                       ram_bytes=gib(10), lifetime_s=3.0)
            for i in range(2)]
        plane.serve_trace(TenantTrace("defrag", specs))
        assert task.report.passes > 0
