"""Tests for background defragmentation / consolidation."""

from __future__ import annotations

import pytest

from repro.cluster.control_plane import ControlPlane
from repro.cluster.defrag import DefragmentationTask
from repro.cluster.trace import TenantSpec, TenantTrace
from repro.core.builder import RackBuilder
from repro.errors import ReproError
from repro.units import gib


def build_system(memory=3):
    return (RackBuilder("defrag")
            .with_compute_bricks(2, cores=32, local_memory=gib(8))
            .with_memory_bricks(memory, modules=2, module_size=gib(8))
            .build())


def spread_segments(system, per_brick=2):
    """Force segments onto every memory brick (spread by hand)."""
    from repro.orchestration.placement import SpreadPolicy
    system.sdm.policy = SpreadPolicy()
    results = []
    brick_count = len(system.sdm.registry.memory_entries)
    system.boot_vm(__vm_request("spread-vm"))
    for index in range(per_brick * brick_count):
        results.append(system.scale_up("spread-vm", gib(1)))
    return results


def __vm_request(vm_id):
    from repro.orchestration.requests import VmAllocationRequest
    return VmAllocationRequest(vm_id=vm_id, vcpus=2, ram_bytes=gib(1))


class TestPassMechanics:
    def test_consolidates_onto_fewer_bricks(self):
        system = build_system()
        spread_segments(system, per_brick=2)
        occupied_before = sum(
            1 for e in system.sdm.registry.memory_entries
            if e.allocator.allocation_count > 0)
        assert occupied_before == 3

        task = DefragmentationTask(system, max_relocations_per_pass=16)
        report = task.run_pass()
        occupied_after = sum(
            1 for e in system.sdm.registry.memory_entries
            if e.allocator.allocation_count > 0)
        assert report.relocations > 0
        assert report.bytes_moved >= report.relocations * gib(1)
        assert occupied_after < occupied_before

    def test_emptied_brick_powered_off(self):
        system = build_system()
        spread_segments(system, per_brick=1)
        task = DefragmentationTask(system, max_relocations_per_pass=16)
        report = task.run_pass()
        assert report.bricks_emptied >= 1
        powered = [e.brick.is_powered
                   for e in system.sdm.registry.memory_entries]
        assert not all(powered)

    def test_segments_stay_consistent_after_relocation(self):
        system = build_system()
        results = spread_segments(system, per_brick=2)
        task = DefragmentationTask(system, max_relocations_per_pass=16)
        task.run_pass()
        # Every runtime segment still resolves: records point at the
        # brick that now really holds the allocation.
        for result in results:
            record = system.sdm.segment_record(
                result.segment.segment_id)
            entry = system.sdm.registry.memory(
                record.segment.memory_brick_id)
            spans = {span.base
                     for span in entry.allocator.allocated_spans()}
            assert record.segment.offset in spans
            assert record.entry.remote_brick_id == \
                record.segment.memory_brick_id
        # And the owning VM can still scale everything back down.
        for result in results:
            system.scale_down("spread-vm", result.segment.segment_id)
        assert system.sdm.live_segments == []
        brick_id = system.hosting("spread-vm").brick_id
        assert system.stack(brick_id).scaleup.attached_segments() == []

    def test_feeds_placement_policy(self):
        system = build_system()
        spread_segments(system, per_brick=2)
        from repro.orchestration.placement import PowerAwarePackingPolicy
        system.sdm.policy = PowerAwarePackingPolicy()
        task = DefragmentationTask(system, max_relocations_per_pass=4)
        task.run_pass()
        assert system.sdm.policy.hot_bricks  # consolidation targets

    def test_nothing_to_do_is_a_noop(self):
        system = build_system()
        task = DefragmentationTask(system)
        report = task.run_pass()
        assert report.relocations == 0
        assert report.passes == 1

    def test_invalid_configuration_rejected(self):
        system = build_system()
        with pytest.raises(ReproError):
            DefragmentationTask(system, interval_s=0)
        with pytest.raises(ReproError):
            DefragmentationTask(system, max_relocations_per_pass=0)


class TestInControlPlane:
    def test_defrag_runs_in_idle_windows(self):
        system = build_system()
        task = DefragmentationTask(system, interval_s=0.1,
                                   max_relocations_per_pass=4)
        plane = ControlPlane(system, defrag=task)
        # Two tenants spread over the pool, then a long idle tail.
        specs = [
            TenantSpec(f"tenant-{i}", arrival_s=0.1 * i, vcpus=2,
                       ram_bytes=gib(10), lifetime_s=3.0)
            for i in range(2)]
        plane.serve_trace(TenantTrace("defrag", specs))
        assert task.report.passes > 0
