"""Sharding invariants of the sharded SDM controller.

Three families of guarantees:

* **facade compatibility** — the sharded controller is a drop-in
  replacement: synchronous API, ``*_process`` generators and the
  per-brick segment index behave exactly like the base controller;
* **parallelism shape** — same-shard reservations serialize on their
  shard's critical section while different-shard reservations proceed
  in parallel (and ``shard_count=1`` restores full serialization);
* **two-phase safety** — concurrent cross-shard placements never
  double-reserve capacity (conservation across shards, the hypothesis
  property), and a phase-2 rejection rolls the phase-1 hold back.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.builder import PodBuilder
from repro.errors import PlacementError, ReproError, ReservationError
from repro.orchestration.sharding import ShardedSdmController
from repro.sim.control import ControlContext
from repro.units import gib, mib


def build_pod(racks=2, shard_count=None, memory_bricks=2,
              module_size=gib(2)):
    return (PodBuilder("shard")
            .with_racks(racks)
            .with_compute_bricks(2, cores=16, local_memory=gib(4))
            .with_memory_bricks(memory_bricks, modules=2,
                                module_size=module_size)
            .with_section_size(mib(128))
            .with_controller_shards(shard_count)
            .build())


def fill_rack0(sdm, chunk=gib(1)):
    """Exhaust every rack0 memory brick so rack0 requesters must spill."""
    while True:
        fits = [a for a in sdm.registry.memory_availability()
                if a.rack_id == "shard.rack0"
                and a.largest_span_bytes >= chunk]
        if not fits:
            break
        sdm.allocate("shard.rack0.cb0", "filler", chunk)


class TestShardTopology:
    def test_one_shard_per_rack_by_default(self):
        sdm = build_pod(racks=3).sdm
        assert isinstance(sdm, ShardedSdmController)
        assert sdm.shard_count == 3
        members = sdm.shard_members()
        assert all(len(racks) == 1 for racks in members.values())

    def test_explicit_count_groups_racks_round_robin(self):
        sdm = build_pod(racks=4, shard_count=2).sdm
        assert sdm.shard_count == 2
        members = sdm.shard_members()
        assert sorted(len(r) for r in members.values()) == [2, 2]
        # Canonical: sorted racks assigned in order, so the mapping is
        # independent of registration order.
        assert members["shard0"] == ["shard.rack0", "shard.rack2"]

    def test_bricks_map_to_their_racks_shard(self):
        sdm = build_pod(racks=2).sdm
        assert (sdm.shard_of_brick("shard.rack0.cb0")
                == sdm.shard_of_brick("shard.rack0.mb1"))
        assert (sdm.shard_of_brick("shard.rack0.cb0")
                != sdm.shard_of_brick("shard.rack1.mb0"))

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(ReproError):
            build_pod(shard_count=0)


class TestFacadeCompatibility:
    def test_synchronous_api_unchanged(self):
        sdm = build_pod().sdm
        from repro.memory.segments import SegmentState
        ticket = sdm.allocate("shard.rack0.cb0", "vm-0", mib(256))
        assert ticket.segment.state is SegmentState.RESERVED
        assert ticket.control_latency_s >= sdm.timings.reservation_s
        assert sdm.segments_on(ticket.segment.memory_brick_id)
        latency = sdm.release(ticket.segment.segment_id)
        assert latency > 0
        assert sdm.live_segments == []

    def test_locality_first_prefers_home_rack(self):
        sdm = build_pod().sdm
        ticket = sdm.allocate("shard.rack1.cb0", "vm-0", mib(256))
        assert ticket.segment.memory_brick_id.startswith("shard.rack1.")

    def test_release_of_unknown_segment_raises(self):
        sdm = build_pod().sdm
        with pytest.raises(ReservationError):
            sdm.release("ghost")


class TestParallelismShape:
    def _timed_pair(self, sdm, brick_a, brick_b):
        ctx = ControlContext()
        completions = {}

        def request(brick, vm_id):
            yield from sdm.allocate_process(ctx, brick, vm_id, mib(256))
            completions[vm_id] = ctx.sim.now

        ctx.sim.process(request(brick_a, "vm-a"))
        ctx.sim.process(request(brick_b, "vm-b"))
        ctx.sim.run()
        return completions

    def test_different_shards_proceed_in_parallel(self):
        sdm = build_pod().sdm
        done = self._timed_pair(sdm, "shard.rack0.cb0", "shard.rack1.cb0")
        # Both entered at t=0 and neither queued behind the other.
        assert done["vm-a"] == pytest.approx(done["vm-b"])

    def test_same_shard_still_serializes(self):
        sdm = build_pod().sdm
        done = self._timed_pair(sdm, "shard.rack0.cb0", "shard.rack0.cb1")
        assert done["vm-b"] > done["vm-a"]

    def test_single_shard_count_restores_full_serialization(self):
        sdm = build_pod(shard_count=1).sdm
        done = self._timed_pair(sdm, "shard.rack0.cb0", "shard.rack1.cb0")
        assert done["vm-b"] > done["vm-a"]


class TestTwoPhaseCrossShard:
    def test_spill_allocates_on_remote_shard(self):
        system = build_pod()
        fill_rack0(system.sdm)
        ticket = system.sdm.allocate("shard.rack0.cb0", "vm-x", mib(256))
        assert ticket.segment.memory_brick_id.startswith("shard.rack1.")
        assert system.sdm.pending_holds == []

    def test_unreachable_target_rolls_back_hold(self, monkeypatch):
        """Second shard rejects (no light path) -> the tentative hold
        on the first (memory) shard is rolled back."""
        system = build_pod()
        sdm = system.sdm
        fill_rack0(sdm)
        remote = [e for e in sdm.registry.memory_entries
                  if e.rack_id == "shard.rack1"]
        free_before = [e.allocator.free_bytes for e in remote]
        versions_before = [e.allocator.version for e in remote]
        live_before = len(sdm.live_segments)

        monkeypatch.setattr(sdm, "_circuit_feasible",
                            lambda compute, memory: False)
        with pytest.raises(PlacementError):
            sdm.allocate("shard.rack0.cb0", "vm-x", mib(256))

        assert sdm.pending_holds == []
        assert [e.allocator.free_bytes for e in remote] == free_before
        # The holds really were taken and aborted (capacity moved and
        # moved back), not silently skipped.
        assert [e.allocator.version for e in remote] != versions_before
        assert len(sdm.live_segments) == live_before
        for entry in remote:
            entry.allocator.check_invariants()

    def test_phase2_failure_propagates_after_rollback(self, monkeypatch):
        """A hard compute-side failure mid-pipeline aborts the hold and
        re-raises — capacity is never stranded."""
        system = build_pod()
        sdm = system.sdm
        fill_rack0(sdm)
        remote = [e for e in sdm.registry.memory_entries
                  if e.rack_id == "shard.rack1"]
        free_before = [e.allocator.free_bytes for e in remote]

        def boom(*args, **kwargs):
            raise ReservationError("window programming rejected")

        monkeypatch.setattr(sdm, "_finish_allocation", boom)
        with pytest.raises(ReservationError):
            sdm.allocate("shard.rack0.cb0", "vm-x", mib(256))
        assert sdm.pending_holds == []
        assert [e.allocator.free_bytes for e in remote] == free_before

    def test_cross_shard_relocation_two_phase(self):
        system = build_pod()
        sdm = system.sdm
        ticket = sdm.allocate("shard.rack0.cb0", "vm-0", mib(256))
        source = ticket.segment.memory_brick_id
        target = "shard.rack1.mb0"
        ctx = ControlContext()

        def move():
            entry, latency = yield from sdm.relocate_segment_process(
                ctx, ticket.segment.segment_id, target)
            return entry, latency

        process = ctx.sim.process(move())
        ctx.sim.run()
        entry, _latency = process.value
        assert entry.remote_brick_id == target
        assert ticket.segment.memory_brick_id == target
        assert sdm.pending_holds == []
        assert sdm.segments_on(source) == []
        assert [s.segment_id for s in sdm.segments_on(target)] == [
            ticket.segment.segment_id]


class TestStableScope:
    def test_scope_follows_segment_relocated_while_queued(self):
        """A release queued on the segment's old shard re-acquires the
        scope when a concurrent relocation moved the segment to a
        different shard — the critical work never runs outside the
        locks covering the segment's *current* bricks."""
        system = build_pod()
        sdm = system.sdm
        ticket = sdm.allocate("shard.rack0.cb0", "vm-0", mib(256))
        segment_id = ticket.segment.segment_id
        ctx = ControlContext()
        order = []

        def blocker():
            grant = yield from ctx.enter_domain("sdm.shard0", "blocker")
            # While the release below queues on shard0, move the
            # segment onto the other shard behind its back.
            sdm.relocate_segment(segment_id, "shard.rack1.mb0")
            order.append("relocated")
            yield ctx.sim.timeout(0.01)
            ctx.domain("sdm.shard0").release(grant)

        def releaser():
            yield ctx.sim.timeout(0.001)  # blocker holds shard0 first
            yield from sdm.release_process(ctx, segment_id)
            order.append("released")

        ctx.sim.process(blocker())
        ctx.sim.process(releaser())
        ctx.sim.run()
        assert order == ["relocated", "released"]
        assert sdm.live_segments == []
        assert all(e.allocator.allocated_bytes == 0
                   for e in sdm.registry.memory_entries)

    def test_scope_covers_checks_shard_membership(self):
        sdm = build_pod().sdm
        token = (("shard0", None, None),)
        assert sdm.scope_covers(token, ("shard.rack0.mb0",))
        assert not sdm.scope_covers(token, ("shard.rack1.mb0",))


class TestConservationProperty:
    """Concurrent cross-shard placements never double-reserve capacity."""

    @settings(max_examples=20, deadline=None)
    @given(st.lists(
        st.tuples(st.integers(min_value=0, max_value=1),   # origin rack
                  st.sampled_from([mib(128), mib(256), mib(384)])),
        min_size=2, max_size=10))
    def test_capacity_conserved_across_shards(self, requests):
        system = build_pod(memory_bricks=1, module_size=gib(1))
        sdm = system.sdm
        # Rack0 starts nearly full, so its requesters must cross
        # shards while rack1's stay local — concurrent single-shard
        # and two-phase paths interleave on one shared context.
        fill_rack0(sdm, chunk=mib(512))
        ctx = ControlContext()
        tickets = []

        def client(index, rack, size):
            try:
                ticket = yield from sdm.allocate_process(
                    ctx, f"shard.rack{rack}.cb{index % 2}",
                    f"vm-{index}", size)
                tickets.append(ticket)
            except PlacementError:
                pass  # pool exhausted: rejection must also conserve

        for index, (rack, size) in enumerate(requests):
            ctx.sim.process(client(index, rack, size))
        ctx.sim.run()

        entries = sdm.registry.memory_entries
        reserved = sum(e.allocator.allocated_bytes for e in entries)
        live = sum(s.size for s in sdm.live_segments)
        assert reserved == live          # no double-reservation, no leak
        assert sdm.pending_holds == []   # every hold committed/aborted
        for entry in entries:
            entry.allocator.check_invariants()

        # And the pool drains cleanly back to empty.
        for ticket in tickets:
            if ticket.segment.vm_id != "filler":
                sdm.release(ticket.segment.segment_id)
