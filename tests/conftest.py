"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.builder import RackBuilder
from repro.hardware.bricks import ComputeBrick, MemoryBrick
from repro.network.optical.topology import OpticalFabric
from repro.orchestration.requests import VmAllocationRequest
from repro.sim.engine import Simulator
from repro.units import gib


@pytest.fixture
def sim() -> Simulator:
    """A fresh simulator."""
    return Simulator()


@pytest.fixture
def compute_brick() -> ComputeBrick:
    """A default dCOMPUBRICK."""
    return ComputeBrick("cb0")


@pytest.fixture
def memory_brick() -> MemoryBrick:
    """A default dMEMBRICK (4 x 16 GiB DDR4)."""
    return MemoryBrick("mb0")


@pytest.fixture
def fabric(compute_brick: ComputeBrick,
           memory_brick: MemoryBrick) -> OpticalFabric:
    """An optical fabric with both bricks attached."""
    fab = OpticalFabric()
    fab.attach_brick(compute_brick)
    fab.attach_brick(memory_brick)
    return fab


@pytest.fixture
def small_system():
    """A small but complete disaggregated rack."""
    return (RackBuilder("test-rack")
            .with_compute_bricks(2, cores=8, local_memory=gib(2))
            .with_memory_bricks(2, modules=2, module_size=gib(8))
            .with_accelerator_bricks(1)
            .build())


@pytest.fixture
def system_with_vm(small_system):
    """The small rack with one 4 GiB VM booted (needs remote memory)."""
    small_system.boot_vm(
        VmAllocationRequest("vm-0", vcpus=2, ram_bytes=gib(4)))
    return small_system
