"""Unit tests for the deterministic RNG registry."""

from __future__ import annotations

from repro.sim.rng import RngRegistry, stable_stream_seed


class TestStableStreamSeed:
    def test_deterministic(self):
        assert (stable_stream_seed(7, "alpha")
                == stable_stream_seed(7, "alpha"))

    def test_name_sensitivity(self):
        assert (stable_stream_seed(7, "alpha")
                != stable_stream_seed(7, "beta"))

    def test_seed_sensitivity(self):
        assert (stable_stream_seed(7, "alpha")
                != stable_stream_seed(8, "alpha"))

    def test_non_negative(self):
        assert stable_stream_seed(123456789, "any-name") >= 0


class TestRngRegistry:
    def test_same_name_returns_same_generator(self):
        registry = RngRegistry(1)
        assert registry.stream("a") is registry.stream("a")

    def test_different_names_different_sequences(self):
        registry = RngRegistry(1)
        a = registry.stream("a").random(5).tolist()
        b = registry.stream("b").random(5).tolist()
        assert a != b

    def test_reproducible_across_registries(self):
        first = RngRegistry(42).stream("workload").random(8).tolist()
        second = RngRegistry(42).stream("workload").random(8).tolist()
        assert first == second

    def test_adding_stream_does_not_perturb_existing(self):
        plain = RngRegistry(42)
        expected = plain.stream("main").random(4).tolist()

        busy = RngRegistry(42)
        busy.stream("other")  # extra stream created first
        observed = busy.stream("main").random(4).tolist()
        assert observed == expected

    def test_fresh_resets_state(self):
        registry = RngRegistry(3)
        first_draw = registry.stream("s").random()
        registry.stream("s").random()  # advance
        reset_draw = registry.fresh("s").random()
        assert reset_draw == first_draw

    def test_spawn_indexed_streams(self):
        registry = RngRegistry(5)
        a = registry.spawn("vm", 0).random(3).tolist()
        b = registry.spawn("vm", 1).random(3).tolist()
        assert a != b
        assert registry.spawn("vm", 0) is registry.stream("vm[0]")

    def test_contains_and_len(self):
        registry = RngRegistry(9)
        assert "x" not in registry
        registry.stream("x")
        assert "x" in registry
        assert len(registry) == 1
