"""Unit tests for the DES engine."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.engine import AllOf, AnyOf, Interrupt, Simulator, Timeout


class TestEvent:
    def test_starts_pending(self, sim):
        event = sim.event()
        assert not event.triggered
        assert not event.processed

    def test_value_before_trigger_raises(self, sim):
        with pytest.raises(SimulationError):
            _ = sim.event().value

    def test_succeed_carries_value(self, sim):
        event = sim.event()
        event.succeed(42)
        assert event.triggered
        assert event.value == 42

    def test_double_trigger_rejected(self, sim):
        event = sim.event()
        event.succeed()
        with pytest.raises(SimulationError):
            event.succeed()

    def test_fail_requires_exception(self, sim):
        with pytest.raises(SimulationError):
            sim.event().fail("not an exception")  # type: ignore[arg-type]

    def test_fail_marks_not_ok(self, sim):
        event = sim.event()
        event.fail(ValueError("boom"))
        assert not event.ok

    def test_unwaited_failure_surfaces_in_run(self, sim):
        event = sim.event()
        event.fail(ValueError("lost"))
        with pytest.raises(ValueError, match="lost"):
            sim.run()


class TestTimeout:
    def test_fires_at_delay(self, sim):
        seen = []

        def proc():
            yield sim.timeout(5.0)
            seen.append(sim.now)

        sim.process(proc())
        sim.run()
        assert seen == [5.0]

    def test_zero_delay_allowed(self, sim):
        timeout = sim.timeout(0.0)
        sim.run()
        assert timeout.processed

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.timeout(-1.0)

    def test_carries_value(self, sim):
        collected = []

        def proc():
            value = yield sim.timeout(1.0, value="payload")
            collected.append(value)

        sim.process(proc())
        sim.run()
        assert collected == ["payload"]


class TestProcess:
    def test_return_value_becomes_event_value(self, sim):
        def proc():
            yield sim.timeout(1)
            return "done"

        process = sim.process(proc())
        assert sim.run(until=process) == "done"

    def test_sequential_timeouts_accumulate(self, sim):
        def proc():
            yield sim.timeout(1)
            yield sim.timeout(2)
            return sim.now

        assert sim.run(until=sim.process(proc())) == 3.0

    def test_processes_interleave(self, sim):
        order = []

        def worker(name, delay):
            yield sim.timeout(delay)
            order.append(name)

        sim.process(worker("slow", 2))
        sim.process(worker("fast", 1))
        sim.run()
        assert order == ["fast", "slow"]

    def test_yield_on_another_process(self, sim):
        def child():
            yield sim.timeout(3)
            return "child-result"

        def parent():
            result = yield sim.process(child())
            return result, sim.now

        assert sim.run(until=sim.process(parent())) == ("child-result", 3.0)

    def test_exception_in_process_propagates(self, sim):
        def proc():
            yield sim.timeout(1)
            raise RuntimeError("inner failure")

        process = sim.process(proc())
        with pytest.raises(RuntimeError, match="inner failure"):
            sim.run(until=process)

    def test_failed_event_thrown_into_waiter(self, sim):
        failing = sim.event()
        caught = []

        def proc():
            try:
                yield failing
            except ValueError as exc:
                caught.append(str(exc))

        sim.process(proc())
        failing.fail(ValueError("pushed"))
        sim.run()
        assert caught == ["pushed"]

    def test_yielding_non_event_fails_process(self, sim):
        def proc():
            yield 42  # type: ignore[misc]

        process = sim.process(proc())
        with pytest.raises(SimulationError, match="must yield events"):
            sim.run(until=process)

    def test_yielding_foreign_event_fails_process(self, sim):
        other = Simulator()

        def proc():
            yield other.event()

        process = sim.process(proc())
        with pytest.raises(SimulationError, match="different simulator"):
            sim.run(until=process)

    def test_non_generator_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.process(lambda: None)  # type: ignore[arg-type]

    def test_yield_already_processed_event(self, sim):
        done = sim.event()
        done.succeed("early")
        log = []

        def late():
            yield sim.timeout(4)
            value = yield done
            log.append((sim.now, value))

        sim.process(late())
        sim.run()
        assert log == [(4.0, "early")]

    def test_is_alive_lifecycle(self, sim):
        def proc():
            yield sim.timeout(1)

        process = sim.process(proc())
        assert process.is_alive
        sim.run()
        assert not process.is_alive


class TestInterrupt:
    def test_interrupt_delivers_cause(self, sim):
        causes = []

        def sleeper():
            try:
                yield sim.timeout(100)
            except Interrupt as interrupt:
                causes.append((sim.now, interrupt.cause))

        def killer(target):
            yield sim.timeout(2)
            target.interrupt("preempted")

        target = sim.process(sleeper())
        sim.process(killer(target))
        sim.run()
        assert causes == [(2.0, "preempted")]

    def test_unhandled_interrupt_fails_process(self, sim):
        def sleeper():
            yield sim.timeout(100)

        def killer(target):
            yield sim.timeout(1)
            target.interrupt()

        target = sim.process(sleeper())
        sim.process(killer(target))
        with pytest.raises(Interrupt):
            sim.run(until=target)

    def test_interrupting_finished_process_rejected(self, sim):
        def quick():
            yield sim.timeout(1)

        process = sim.process(quick())
        sim.run()
        with pytest.raises(SimulationError):
            process.interrupt()

    def test_interrupted_process_can_continue(self, sim):
        trace = []

        def resilient():
            try:
                yield sim.timeout(100)
            except Interrupt:
                trace.append("interrupted")
            yield sim.timeout(5)
            trace.append(sim.now)

        def killer(target):
            yield sim.timeout(10)
            target.interrupt()

        target = sim.process(resilient())
        sim.process(killer(target))
        sim.run()
        assert trace == ["interrupted", 15.0]


class TestConditions:
    def test_all_of_waits_for_all(self, sim):
        def worker(delay):
            yield sim.timeout(delay)
            return delay

        processes = [sim.process(worker(d)) for d in (3, 1, 2)]
        finished_at = []

        def waiter():
            yield sim.all_of(processes)
            finished_at.append(sim.now)

        sim.process(waiter())
        sim.run()
        assert finished_at == [3.0]

    def test_all_of_collects_values(self, sim):
        events = [sim.timeout(1, value="a"), sim.timeout(2, value="b")]
        condition = sim.all_of(events)
        sim.run()
        assert list(condition.value.values()) == ["a", "b"]

    def test_all_of_empty_fires_immediately(self, sim):
        condition = sim.all_of([])
        assert condition.triggered

    def test_all_of_fails_fast(self, sim):
        good = sim.timeout(5)
        bad = sim.event()
        bad.fail(RuntimeError("dead"), delay=1)
        condition = sim.all_of([good, bad])
        with pytest.raises(RuntimeError, match="dead"):
            sim.run(until=condition)

    def test_any_of_fires_on_first(self, sim):
        slow = sim.timeout(10, value="slow")
        fast = sim.timeout(1, value="fast")
        condition = sim.any_of([slow, fast])
        result = sim.run(until=condition)
        assert sim.now == 1.0
        assert list(result.values()) == ["fast"]

    def test_condition_rejects_foreign_events(self, sim):
        other = Simulator()
        with pytest.raises(SimulationError):
            AllOf(sim, [other.event()])

    def test_any_of_type(self, sim):
        assert isinstance(sim.any_of([sim.timeout(1)]), AnyOf)


class TestSimulatorRun:
    def test_run_until_time_advances_clock(self, sim):
        sim.timeout(3)
        sim.run(until=10.0)
        assert sim.now == 10.0

    def test_run_until_past_rejected(self, sim):
        sim.timeout(1)
        sim.run(until=5.0)
        with pytest.raises(SimulationError):
            sim.run(until=2.0)

    def test_run_until_event_without_sources_raises(self, sim):
        pending = sim.event()
        with pytest.raises(SimulationError, match="ran out of events"):
            sim.run(until=pending)

    def test_run_until_foreign_event_rejected(self, sim):
        other = Simulator()
        with pytest.raises(SimulationError):
            sim.run(until=other.event())

    def test_step_on_empty_heap_raises(self, sim):
        with pytest.raises(SimulationError):
            sim.step()

    def test_peek_empty_is_infinite(self, sim):
        assert sim.peek() == float("inf")

    def test_peek_returns_next_time(self, sim):
        sim.timeout(7)
        assert sim.peek() == 7.0

    def test_events_at_same_time_run_fifo(self, sim):
        order = []

        def worker(name):
            yield sim.timeout(1)
            order.append(name)

        for name in ("a", "b", "c"):
            sim.process(worker(name))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_schedule_into_past_rejected(self, sim):
        event = sim.event()
        with pytest.raises(SimulationError):
            sim.schedule(event, delay=-0.5)

    def test_clock_starts_at_zero(self, sim):
        assert sim.now == 0.0


class TestDelayValidation:
    def test_nan_timeout_rejected(self, sim):
        with pytest.raises(SimulationError, match="finite"):
            sim.timeout(float("nan"))

    def test_infinite_timeout_rejected(self, sim):
        with pytest.raises(SimulationError, match="finite"):
            sim.timeout(float("inf"))

    def test_nan_schedule_rejected(self, sim):
        event = sim.event()
        with pytest.raises(SimulationError):
            sim.schedule(event, delay=float("nan"))

    def test_infinite_schedule_rejected(self, sim):
        event = sim.event()
        with pytest.raises(SimulationError):
            sim.schedule(event, delay=float("inf"))


class TestCancel:
    def test_cancelled_timeout_never_runs(self, sim):
        fired = []
        keep = sim.timeout(2)
        keep.callbacks.append(lambda e: fired.append("keep"))
        doomed = sim.timeout(1)
        doomed.callbacks.append(lambda e: fired.append("doomed"))
        doomed.cancel()
        sim.run()
        assert fired == ["keep"]
        assert sim.now == 2.0
        assert doomed.cancelled

    def test_cancel_updates_queue_accounting(self, sim):
        doomed = sim.timeout(1)
        sim.timeout(2)
        assert sim.queue_size == 2
        doomed.cancel()
        assert sim.queue_size == 1
        assert sim.peek() == 2.0

    def test_cancel_pending_event_blocks_trigger(self, sim):
        event = sim.event()
        event.cancel()
        with pytest.raises(SimulationError):
            event.succeed()

    def test_cancel_twice_rejected(self, sim):
        doomed = sim.timeout(1)
        doomed.cancel()
        with pytest.raises(SimulationError, match="already cancelled"):
            doomed.cancel()

    def test_cancel_processed_rejected(self, sim):
        done = sim.timeout(1)
        sim.run()
        with pytest.raises(SimulationError, match="already processed"):
            done.cancel()


class TestConditionDetach:
    def test_any_of_detaches_losers(self, sim):
        slow = sim.timeout(10, value="slow")
        fast = sim.timeout(1, value="fast")
        condition = sim.any_of([slow, fast])
        sim.run(until=condition)
        # The race is decided: the loser no longer carries a callback
        # back into the condition, so its later firing adds nothing.
        assert not slow.callbacks
        sim.run()
        assert list(condition.value.values()) == ["fast"]

    def test_all_of_failure_detaches_survivors(self, sim):
        good = sim.timeout(5)
        bad = sim.event()
        bad.fail(RuntimeError("dead"), delay=1)
        condition = sim.all_of([good, bad])
        with pytest.raises(RuntimeError, match="dead"):
            sim.run(until=condition)
        assert not good.callbacks


class TestEventPooling:
    def test_processed_timeout_is_recycled(self, sim):
        sim.timeout(1)  # no reference retained -> poolable
        sim.run()
        pool = sim._pools[Timeout]
        assert pool
        recycled = pool[-1]
        fresh = sim.timeout(3, value="again")
        assert fresh is recycled
        assert fresh.delay == 3
        assert not fresh.processed
        sim.run()
        assert fresh.value == "again"
        assert sim.now == 4.0

    def test_referenced_timeout_is_not_recycled(self, sim):
        held = sim.timeout(1)
        sim.run()
        assert held not in sim._pools[Timeout]
        assert held.processed

    def test_recycled_timeouts_stay_deterministic(self, sim):
        log = []

        def worker(name):
            for _ in range(50):
                yield sim.timeout(0.5)
            log.append((name, sim.now))

        for name in range(4):
            sim.process(worker(name))
        sim.run()
        assert log == [(0, 25.0), (1, 25.0), (2, 25.0), (3, 25.0)]
        assert len(sim._pools[Timeout]) <= 1024
