"""Tests for the conservative parallel-simulation runner and fleets.

The toy model is the protocol in miniature: a ping hub that commands
echo satellites over the lookahead-delayed wire.  The LPs live at
module level so the spawn-started workers can import them — a worker
rebuilds its share of the fleet from the pickled ``(factory, kwargs)``
spec, exactly like the production pod LPs.
"""

from __future__ import annotations

import heapq
import pickle
import time

import pytest

from repro.errors import ParallelSimError
from repro.sim.engine import Simulator
from repro.sim.parallel import (
    InlineFleet,
    LpReply,
    ProcessFleet,
    WireMessage,
    make_fleet,
    run_windows,
)

_INF = float("inf")
LOOKAHEAD = 0.25


class EchoLp:
    """Reactive satellite: echoes each command after a local delay."""

    def __init__(self, lp_id: str, delay_s: float = 0.0,
                 sleep_s: float = 0.0) -> None:
        self.lp_id = lp_id
        self.delay_s = delay_s
        #: Wall-clock stall per window (the straggler knob) — purely
        #: physical, must never change the simulation.
        self.sleep_s = sleep_s
        self.clock = 0.0
        self._pending: list[tuple[float, int, object]] = []
        self._seq = 0

    def deliver(self, messages):
        for message in messages:
            assert message.arrival_s >= self.clock
            heapq.heappush(
                self._pending,
                (message.arrival_s + self.delay_s, message.seq,
                 message.body))

    def advance(self, horizon_s: float) -> LpReply:
        if self.sleep_s:
            time.sleep(self.sleep_s)
        out: list[WireMessage] = []
        events = 0
        while self._pending and self._pending[0][0] < horizon_s:
            when, _, body = heapq.heappop(self._pending)
            self.clock = when
            events += 1
            self._seq += 1
            out.append(WireMessage(
                lp_id=self.lp_id, sent_s=when,
                arrival_s=when + LOOKAHEAD, seq=self._seq,
                body=("echo", self.lp_id, body)))
        if horizon_s != _INF:
            self.clock = max(self.clock, horizon_s)
        next_t = self._pending[0][0] if self._pending else _INF
        return LpReply(messages=out, next_time_s=next_t,
                       events_processed=events, influence_s=next_t)

    def next_time(self) -> float:
        return self._pending[0][0] if self._pending else _INF


class FaultyLp(EchoLp):
    """Raises inside a window — the worker must report, not die."""

    def advance(self, horizon_s: float) -> LpReply:
        raise RuntimeError("injected LP failure")


class BadWireLp(EchoLp):
    """Emits a message whose arrival breaks the lookahead contract."""

    def advance(self, horizon_s: float) -> LpReply:
        reply = super().advance(horizon_s)
        for message in reply.messages:
            object.__setattr__(message, "arrival_s",
                               message.sent_s + LOOKAHEAD / 2)
        return reply


def make_echo_lps(count: int = 3, delay_s: float = 0.0,
                  sleep_s: float = 0.0, straggler: str = "",
                  kind: str = "echo"):
    cls = {"echo": EchoLp, "faulty": FaultyLp, "bad": BadWireLp}[kind]
    return [cls(f"lp{i}", delay_s=delay_s,
                sleep_s=sleep_s if f"lp{i}" == straggler else 0.0)
            for i in range(count)]


class PingHub:
    """Sends scheduled pings round-robin; finishes on the last echo."""

    def __init__(self, lp_ids, ping_count: int, spacing_s: float = 1.0):
        self.lp_ids = list(lp_ids)
        self.expected = ping_count
        self._sends = [(i * spacing_s, self.lp_ids[i % len(self.lp_ids)])
                       for i in range(ping_count)]
        self._outbox: dict[str, list[WireMessage]] = {}
        self._window_cap = _INF
        self.clock = 0.0
        self._seq = 0
        self.received: list[tuple] = []
        self.statuses: list[tuple] = []

    @property
    def finished(self) -> bool:
        return len(self.received) >= self.expected

    def next_time(self) -> float:
        return self._sends[0][0] if self._sends else _INF

    def take_outboxes(self):
        self._window_cap = _INF
        drained, self._outbox = self._outbox, {}
        return drained

    def deliver(self, messages):
        for message in messages:
            assert message.arrival_s >= self.clock
            self.clock = message.arrival_s
            self.received.append(
                (message.arrival_s, message.lp_id, message.seq,
                 message.body))

    def note_status(self, lp_id, status):
        self.statuses.append((lp_id, status))

    def advance(self, horizon_s: float) -> None:
        while (self._sends
               and self._sends[0][0] < min(horizon_s, self._window_cap)
               and not self.finished):
            when, lp_id = self._sends.pop(0)
            self.clock = max(self.clock, when)
            self._seq += 1
            self._outbox.setdefault(lp_id, []).append(WireMessage(
                lp_id=lp_id, sent_s=when, arrival_s=when + LOOKAHEAD,
                seq=self._seq, body=("ping", self._seq)))
            if self._window_cap == _INF:
                self._window_cap = (when + LOOKAHEAD) + LOOKAHEAD
        if horizon_s != _INF:
            self.clock = max(self.clock,
                             min(horizon_s, self._window_cap))


class SilentHub(PingHub):
    """Expects echoes but never pings: a genuinely stalled model."""

    def __init__(self, lp_ids):
        super().__init__(lp_ids, ping_count=0)
        self.expected = 1  # never satisfied


def _run(fleet, ping_count: int = 8, **lp_kwargs):
    with fleet:
        fleet.build(make_echo_lps, **lp_kwargs)
        hub = PingHub(fleet.lp_ids, ping_count)
        report = run_windows(hub, fleet, LOOKAHEAD, max_rounds=500)
    return hub, report


class TestEquivalence:
    def test_inline_run_completes_in_order(self):
        hub, report = _run(InlineFleet(), ping_count=8, delay_s=0.1)
        assert len(hub.received) == 8
        assert hub.received == sorted(hub.received)
        assert report.rounds > 1
        assert sum(report.lp_events.values()) == 8

    def test_process_backends_match_inline(self):
        reference, ref_report = _run(InlineFleet(), ping_count=8,
                                     delay_s=0.1)
        for workers in (1, 2):
            hub, report = _run(ProcessFleet(workers), ping_count=8,
                               delay_s=0.1)
            assert hub.received == reference.received, workers
            assert report.rounds == ref_report.rounds, workers
            assert report.lp_events == ref_report.lp_events, workers

    def test_straggler_changes_nothing_but_wall_clock(self):
        reference, _ = _run(InlineFleet(), ping_count=6)
        hub, report = _run(InlineFleet(), ping_count=6,
                           straggler="lp1", sleep_s=0.01)
        assert hub.received == reference.received
        # The straggler dominates every round it works in: the
        # critical path reflects it, the event order does not.
        assert report.lp_busy_s >= 0.01

    def test_more_workers_than_lps(self):
        reference, _ = _run(InlineFleet(), ping_count=4)
        hub, _ = _run(ProcessFleet(4), ping_count=4, count=2)
        reference2, _ = _run(InlineFleet(), ping_count=4, count=2)
        assert hub.received == reference2.received
        assert reference.received != reference2.received


class TestGuards:
    @pytest.mark.parametrize("bad", [0.0, -1.0, _INF, float("nan")])
    def test_bad_lookahead_rejected(self, bad):
        fleet = InlineFleet()
        fleet.build(make_echo_lps)
        hub = PingHub(fleet.lp_ids, 1)
        with pytest.raises(ParallelSimError,
                           match="lookahead|finite"):
            run_windows(hub, fleet, bad)

    def test_stalled_barrier_detected(self):
        fleet = InlineFleet()
        fleet.build(make_echo_lps)
        hub = SilentHub(fleet.lp_ids)
        with pytest.raises(ParallelSimError, match="stalled barrier"):
            run_windows(hub, fleet, LOOKAHEAD)

    def test_max_rounds_guard(self):
        fleet = InlineFleet()
        fleet.build(make_echo_lps)
        hub = PingHub(fleet.lp_ids, ping_count=50, spacing_s=10.0)
        with pytest.raises(ParallelSimError, match="rounds"):
            run_windows(hub, fleet, LOOKAHEAD, max_rounds=3)

    def test_wire_contract_enforced(self):
        fleet = InlineFleet()
        fleet.build(make_echo_lps, kind="bad")
        hub = PingHub(fleet.lp_ids, 2)
        with pytest.raises(ParallelSimError, match="lookahead"):
            run_windows(hub, fleet, LOOKAHEAD, max_rounds=50)

    def test_begin_advance_twice_rejected(self):
        fleet = InlineFleet()
        fleet.build(make_echo_lps)
        fleet.begin_advance(1.0, {})
        with pytest.raises(ParallelSimError, match="in flight"):
            fleet.begin_advance(2.0, {})

    def test_finish_without_begin_rejected(self):
        fleet = InlineFleet()
        fleet.build(make_echo_lps)
        with pytest.raises(ParallelSimError, match="without a window"):
            fleet.finish_advance()

    def test_negative_worker_count_rejected(self):
        with pytest.raises(ParallelSimError, match=">= 0"):
            make_fleet(-1)

    def test_make_fleet_picks_backend(self):
        assert isinstance(make_fleet(0), InlineFleet)
        fleet = make_fleet(2)
        try:
            assert isinstance(fleet, ProcessFleet)
            assert fleet.worker_count == 2
        finally:
            fleet.close()


class TestProcessFailures:
    def test_lp_exception_carries_traceback_home(self):
        with ProcessFleet(1) as fleet:
            fleet.build(make_echo_lps, kind="faulty")
            with pytest.raises(ParallelSimError,
                               match="injected LP failure"):
                fleet.advance_all(1.0, {})

    def test_dead_worker_surfaces_not_hangs(self):
        fleet = ProcessFleet(2)
        try:
            fleet.build(make_echo_lps)
            fleet._workers[0].terminate()
            fleet._workers[0].join(timeout=5.0)
            with pytest.raises(ParallelSimError,
                               match="died mid-barrier|is gone"):
                fleet.advance_all(1.0, {})
        finally:
            fleet.close()

    def test_unknown_lp_destination_rejected(self):
        with ProcessFleet(1) as fleet:
            fleet.build(make_echo_lps)
            message = WireMessage("ghost", 0.0, LOOKAHEAD, 1, "x")
            with pytest.raises(ParallelSimError, match="no worker"):
                fleet.begin_advance(1.0, {"ghost": [message]})


class TestSpawnSafety:
    def test_simulator_refuses_pickle(self):
        with pytest.raises(TypeError, match="pickled"):
            pickle.dumps(Simulator())

    def test_event_refuses_pickle(self):
        with pytest.raises(TypeError, match="pickled"):
            pickle.dumps(Simulator().event())

    def test_wire_message_is_plain_data(self):
        message = WireMessage("lp0", 1.0, 1.25, 3, ("ping", 7))
        assert pickle.loads(pickle.dumps(message)) == message
