"""Unit tests for DES resources and stores."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.resources import Resource, Store


class TestResource:
    def test_capacity_must_be_positive(self, sim):
        with pytest.raises(SimulationError):
            Resource(sim, capacity=0)

    def test_immediate_grant_under_capacity(self, sim):
        resource = Resource(sim, capacity=2)
        request = resource.request()
        assert request.triggered
        assert resource.count == 1

    def test_fifo_granting_order(self, sim):
        resource = Resource(sim, capacity=1)
        grants = []

        def worker(name, hold):
            request = resource.request()
            yield request
            grants.append((sim.now, name))
            yield sim.timeout(hold)
            resource.release(request)

        sim.process(worker("first", 2))
        sim.process(worker("second", 1))
        sim.process(worker("third", 1))
        sim.run()
        assert grants == [(0.0, "first"), (2.0, "second"), (3.0, "third")]

    def test_queue_length_tracks_waiters(self, sim):
        resource = Resource(sim, capacity=1)
        held = resource.request()
        resource.request()
        resource.request()
        assert resource.queue_length == 2
        resource.release(held)
        assert resource.queue_length == 1

    def test_release_of_nonholder_rejected(self, sim):
        resource = Resource(sim, capacity=1)
        resource.request()
        waiting = resource.request()
        with pytest.raises(SimulationError):
            resource.release(waiting)

    def test_cancel_queued_request(self, sim):
        resource = Resource(sim, capacity=1)
        resource.request()
        queued = resource.request()
        resource.cancel(queued)
        assert resource.queue_length == 0

    def test_cancel_granted_request_rejected(self, sim):
        resource = Resource(sim, capacity=1)
        granted = resource.request()
        with pytest.raises(SimulationError):
            resource.cancel(granted)

    def test_multi_slot_concurrency(self, sim):
        resource = Resource(sim, capacity=3)
        active_log = []

        def worker():
            request = resource.request()
            yield request
            active_log.append(resource.count)
            yield sim.timeout(1)
            resource.release(request)

        for _ in range(5):
            sim.process(worker())
        sim.run()
        assert max(active_log) == 3

    def test_acquire_helper(self, sim):
        resource = Resource(sim, capacity=1)
        log = []

        def worker():
            request = yield from resource.acquire()
            log.append(resource.count)
            resource.release(request)

        sim.process(worker())
        sim.run()
        assert log == [1]


class TestStore:
    def test_put_then_get(self, sim):
        store = Store(sim)
        store.put("item")
        event = store.get()
        assert event.triggered
        sim.run()
        assert event.value == "item"

    def test_get_blocks_until_put(self, sim):
        store = Store(sim)
        received = []

        def consumer():
            item = yield store.get()
            received.append((sim.now, item))

        def producer():
            yield sim.timeout(3)
            store.put("late")

        sim.process(consumer())
        sim.process(producer())
        sim.run()
        assert received == [(3.0, "late")]

    def test_fifo_item_order(self, sim):
        store = Store(sim)
        for value in (1, 2, 3):
            store.put(value)
        received = []

        def consumer():
            for _ in range(3):
                item = yield store.get()
                received.append(item)

        sim.process(consumer())
        sim.run()
        assert received == [1, 2, 3]

    def test_fifo_getter_order(self, sim):
        store = Store(sim)
        received = []

        def consumer(name):
            item = yield store.get()
            received.append((name, item))

        sim.process(consumer("a"))
        sim.process(consumer("b"))
        store.put(1)
        store.put(2)
        sim.run()
        assert received == [("a", 1), ("b", 2)]

    def test_size_and_waiting(self, sim):
        store = Store(sim)
        assert store.size == 0
        store.put("x")
        assert store.size == 1
        store.get()
        assert store.size == 0
        store.get()
        assert store.waiting == 1

    def test_peek_does_not_remove(self, sim):
        store = Store(sim)
        store.put("front")
        assert store.peek() == "front"
        assert store.size == 1

    def test_peek_empty_returns_none(self, sim):
        assert Store(sim).peek() is None
