"""Unit tests for the tracer."""

from __future__ import annotations

import pytest

from repro.sim.engine import Simulator
from repro.sim.trace import Tracer


@pytest.fixture
def traced_sim():
    sim = Simulator()
    return sim, Tracer(lambda: sim.now)


class TestRecords:
    def test_record_captures_time(self, traced_sim):
        sim, tracer = traced_sim

        def proc():
            yield sim.timeout(2.5)
            tracer.record("memory.attach", "seg-0", {"bytes": 1024})

        sim.process(proc())
        sim.run()
        (record,) = tracer.records
        assert record.time == 2.5
        assert record.category == "memory.attach"
        assert record.data == {"bytes": 1024}

    def test_select_by_category_and_label(self, traced_sim):
        _sim, tracer = traced_sim
        tracer.record("a", "x")
        tracer.record("a", "y")
        tracer.record("b", "x")
        assert len(list(tracer.select(category="a"))) == 2
        assert len(list(tracer.select(label="x"))) == 2
        assert len(list(tracer.select(category="a", label="x"))) == 1

    def test_records_returns_copy(self, traced_sim):
        _sim, tracer = traced_sim
        tracer.record("a", "x")
        tracer.records.clear()
        assert len(tracer.records) == 1


class TestCounters:
    def test_count_increments(self, traced_sim):
        _sim, tracer = traced_sim
        assert tracer.count("requests") == 1
        assert tracer.count("requests", 4) == 5
        assert tracer.counter("requests") == 5

    def test_unknown_counter_is_zero(self, traced_sim):
        _sim, tracer = traced_sim
        assert tracer.counter("never") == 0


class TestIntervals:
    def test_begin_end_measures_duration(self, traced_sim):
        sim, tracer = traced_sim

        def proc():
            tracer.begin("scaleup", "vm-1")
            yield sim.timeout(3.0)
            duration = tracer.end("scaleup", "vm-1")
            assert duration == 3.0

        sim.process(proc())
        sim.run()
        stats = tracer.intervals("scaleup")
        assert stats.count == 1
        assert stats.mean == 3.0

    def test_end_without_begin_raises(self, traced_sim):
        _sim, tracer = traced_sim
        with pytest.raises(KeyError):
            tracer.end("nope", "x")

    def test_interval_stats_aggregate(self, traced_sim):
        sim, tracer = traced_sim

        def proc(delay, label):
            tracer.begin("op", label)
            yield sim.timeout(delay)
            tracer.end("op", label)

        sim.process(proc(1.0, "a"))
        sim.process(proc(3.0, "b"))
        sim.run()
        stats = tracer.intervals("op")
        assert stats.count == 2
        assert stats.minimum == 1.0
        assert stats.maximum == 3.0
        assert stats.mean == 2.0

    def test_empty_interval_stats(self, traced_sim):
        _sim, tracer = traced_sim
        stats = tracer.intervals("missing")
        assert stats.count == 0
        assert stats.mean == 0.0

    def test_clear_drops_everything(self, traced_sim):
        _sim, tracer = traced_sim
        tracer.record("a", "x")
        tracer.count("c")
        tracer.begin("i", "y")
        tracer.clear()
        assert tracer.records == []
        assert tracer.counter("c") == 0
        with pytest.raises(KeyError):
            tracer.end("i", "y")
