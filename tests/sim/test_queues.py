"""Unit and property tests for the pluggable pending-event backends.

The determinism contract: every backend serves the same total order
``(time, priority, sequence)``, so a heap-backed and a calendar-backed
run of the same workload are bit-identical.  The property tests here
enforce that by replaying randomized workloads (pushes, pops, horizon
pops, cancellations) against both backends in lockstep.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.errors import SimulationError
from repro.sim.engine import (
    NORMAL_PRIORITY,
    URGENT_PRIORITY,
    Simulator,
    default_queue_backend,
)
from repro.sim.queues import (
    QUEUE_BACKENDS,
    CalendarEventQueue,
    HeapEventQueue,
    make_queue,
)


class _Token:
    """Stand-in event: just the cancellation flag the queues inspect."""

    __slots__ = ("_cancelled",)

    def __init__(self) -> None:
        self._cancelled = False


def _drain(queue):
    entries = []
    while True:
        entry = queue.pop()
        if entry is None:
            break
        entries.append(entry[:3])
    return entries


@pytest.fixture(params=sorted(QUEUE_BACKENDS))
def queue(request):
    """Each registered backend, same test body."""
    return QUEUE_BACKENDS[request.param]()


class TestBackendContract:
    def test_registry_names_match_classes(self):
        for name, cls in QUEUE_BACKENDS.items():
            assert cls.name == name

    def test_pop_empty_returns_none(self, queue):
        assert queue.pop() is None
        assert queue.pop_until(1e9) is None

    def test_peek_empty_is_infinite(self, queue):
        assert queue.peek() == math.inf

    def test_orders_by_time_priority_sequence(self, queue):
        token = _Token()
        queue.push(2.0, NORMAL_PRIORITY, 0, token)
        queue.push(1.0, NORMAL_PRIORITY, 1, token)
        queue.push(1.0, URGENT_PRIORITY, 2, token)
        queue.push(1.0, NORMAL_PRIORITY, 3, token)
        assert _drain(queue) == [
            (1.0, URGENT_PRIORITY, 2),
            (1.0, NORMAL_PRIORITY, 1),
            (1.0, NORMAL_PRIORITY, 3),
            (2.0, NORMAL_PRIORITY, 0),
        ]

    def test_pop_until_respects_horizon(self, queue):
        token = _Token()
        queue.push(1.0, NORMAL_PRIORITY, 0, token)
        queue.push(5.0, NORMAL_PRIORITY, 1, token)
        assert queue.pop_until(2.0)[0] == 1.0
        assert queue.pop_until(2.0) is None
        assert len(queue) == 1  # the 5.0 entry is still queued
        assert queue.pop_until(5.0)[0] == 5.0

    def test_pop_until_horizon_is_inclusive(self, queue):
        queue.push(3.0, NORMAL_PRIORITY, 0, _Token())
        assert queue.pop_until(3.0) is not None

    def test_peek_skips_cancelled_head(self, queue):
        doomed, kept = _Token(), _Token()
        queue.push(1.0, NORMAL_PRIORITY, 0, doomed)
        queue.push(2.0, NORMAL_PRIORITY, 1, kept)
        doomed._cancelled = True
        queue.note_cancel(doomed)
        assert queue.peek() == 2.0
        assert len(queue) == 1

    def test_cancelled_entries_never_surface(self, queue):
        tokens = [_Token() for _ in range(10)]
        for index, token in enumerate(tokens):
            queue.push(float(index), NORMAL_PRIORITY, index, token)
        for token in tokens[::2]:
            token._cancelled = True
            queue.note_cancel(token)
        assert [entry[0] for entry in _drain(queue)] == [
            1.0, 3.0, 5.0, 7.0, 9.0]

    def test_len_and_peak_track_live_entries(self, queue):
        token = _Token()
        for index in range(5):
            queue.push(float(index), NORMAL_PRIORITY, index, token)
        assert len(queue) == 5
        assert queue.peak_size == 5
        queue.pop()
        queue.pop()
        assert len(queue) == 3
        assert queue.peak_size == 5


class TestCalendarMechanics:
    def test_slot_count_must_be_power_of_two(self):
        with pytest.raises(SimulationError):
            CalendarEventQueue(slot_count=24)

    def test_grows_and_shrinks_through_a_population_wave(self):
        queue = CalendarEventQueue()
        token = _Token()
        count = 4 * queue._grow_at
        for index in range(count):
            queue.push(index * 1e-3, NORMAL_PRIORITY, index, token)
        assert queue._count > CalendarEventQueue.MIN_SLOTS
        grown = queue._count
        popped = _drain(queue)
        assert len(popped) == count
        assert popped == sorted(popped)
        assert queue._count < grown  # shrank back down while draining

    def test_far_future_gap_served_via_jump(self):
        queue = CalendarEventQueue()
        token = _Token()
        queue.push(0.001, NORMAL_PRIORITY, 0, token)
        queue.push(1_000.0, NORMAL_PRIORITY, 1, token)
        assert queue.pop()[0] == 0.001
        assert queue.pop()[0] == 1_000.0

    def test_pathological_same_slot_flood_falls_back_to_heap(self):
        # Thousands of entries at one instant after a wide-span install:
        # every entry lands in one slot, the cursor sweeps fruitlessly,
        # and the backstop collapses the structure into a plain heap --
        # order must survive the transition.
        queue = CalendarEventQueue()
        token = _Token()
        queue.push(0.0, NORMAL_PRIORITY, 0, token)
        queue.push(10_000.0, NORMAL_PRIORITY, 1, token)
        for index in range(2, 500):
            queue.push(5_000.0, NORMAL_PRIORITY, index, token)
        entries = _drain(queue)
        assert entries == sorted(entries)
        assert len(entries) == 500

    def test_push_before_cursor_window_still_serves_in_order(self):
        queue = CalendarEventQueue()
        token = _Token()
        for index in range(64):
            queue.push(1.0 + index * 0.25, NORMAL_PRIORITY, index, token)
        assert queue.pop()[0] == 1.0
        # Earlier than the served head: must not be lost behind the
        # cursor even though its natural slot has already been passed.
        queue.push(1.01, NORMAL_PRIORITY, 999, token)
        assert queue.pop()[2] == 999


def _random_workload(rng, operations):
    """A reproducible op tape: (kind, args) tuples."""
    tape = []
    for index in range(operations):
        roll = rng.random()
        if roll < 0.55:
            kind = rng.choice(("near", "far", "burst"))
            if kind == "near":
                delay = rng.uniform(0.0, 0.01)
            elif kind == "far":
                delay = rng.uniform(10.0, 1000.0)
            else:
                delay = rng.choice((0.0, 0.5, 0.5, 2.0))
            priority = (URGENT_PRIORITY if rng.random() < 0.1
                        else NORMAL_PRIORITY)
            tape.append(("push", delay, priority))
        elif roll < 0.8:
            tape.append(("pop",))
        elif roll < 0.9:
            tape.append(("pop_until", rng.uniform(0.0, 50.0)))
        else:
            tape.append(("cancel", rng.randrange(1, 8)))
    return tape


def _replay(backend_cls, tape):
    """Run the op tape; returns the observable history."""
    queue = backend_cls()
    history = []
    pending = {}
    sequence = 0
    now = 0.0
    for op in tape:
        if op[0] == "push":
            _, delay, priority = op
            token = _Token()
            queue.push(now + delay, priority, sequence, token)
            pending[sequence] = token
            sequence += 1
        elif op[0] == "pop":
            entry = queue.pop()
            if entry is not None:
                now = entry[0]
                pending.pop(entry[2], None)
            history.append(entry[:3] if entry else None)
        elif op[0] == "pop_until":
            entry = queue.pop_until(now + op[1])
            if entry is not None:
                now = entry[0]
                pending.pop(entry[2], None)
            history.append(entry[:3] if entry else None)
        else:  # cancel the n-th oldest pending entry, if any
            live = sorted(pending)
            if live:
                victim = live[min(op[1], len(live)) - 1]
                token = pending.pop(victim)
                token._cancelled = True
                queue.note_cancel(token)
        history.append(len(queue))
    while True:
        entry = queue.pop()
        if entry is None:
            break
        history.append(entry[:3])
    return history


class TestBackendEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_workloads_identical_across_backends(self, seed):
        tape = _random_workload(random.Random(seed), operations=400)
        histories = [_replay(QUEUE_BACKENDS[name], tape)
                     for name in sorted(QUEUE_BACKENDS)]
        assert histories[0] == histories[1]

    @pytest.mark.parametrize("seed", range(4))
    def test_simulations_bit_identical_across_backends(self, seed):
        def run(backend):
            rng = random.Random(seed)
            sim = Simulator(queue=backend)
            log = []

            def worker(name):
                for _ in range(20):
                    yield sim.timeout(rng.uniform(0.0, 2.0))
                    log.append((name, sim.now))

            for name in range(10):
                sim.process(worker(name))
            sim.run()
            return log, sim.now, sim.events_processed

        assert run("heap") == run("calendar")


class TestBackendSelection:
    def test_make_queue_accepts_names_and_instances(self):
        assert isinstance(make_queue("heap"), HeapEventQueue)
        assert isinstance(make_queue("calendar"), CalendarEventQueue)
        custom = HeapEventQueue()
        assert make_queue(custom) is custom

    def test_make_queue_rejects_unknown_backend(self):
        with pytest.raises(SimulationError,
                           match="unknown event-queue backend"):
            make_queue("fibonacci")

    def test_simulator_reports_backend(self):
        assert Simulator(queue="heap").queue_backend == "heap"
        assert Simulator(queue="calendar").queue_backend == "calendar"

    def test_default_backend_contextmanager(self):
        with default_queue_backend("heap"):
            assert Simulator().queue_backend == "heap"
        with default_queue_backend("calendar"):
            assert Simulator().queue_backend == "calendar"

    def test_queue_peak_size_visible_on_simulator(self):
        sim = Simulator()
        for _ in range(7):
            sim.timeout(1.0)
        assert sim.queue_peak_size == 7
        sim.run()
        assert sim.queue_size == 0
