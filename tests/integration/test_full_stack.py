"""Integration tests across the full stack.

These exercise the complete §IV control flow on an assembled rack: from
the OpenStack facade through the SDM controller, optical fabric, RMST,
baremetal hotplug and hypervisor — then verify the data plane can
actually reach the attached memory.
"""

from __future__ import annotations

import pytest

from repro.core.builder import RackBuilder
from repro.core.system import DisaggregatedRack
from repro.memory.path import CircuitAccessPath
from repro.memory.transactions import MemoryTransaction
from repro.orchestration.openstack import OpenStackFacade
from repro.orchestration.requests import VmAllocationRequest
from repro.units import gib


@pytest.fixture
def rack() -> DisaggregatedRack:
    return (RackBuilder("int")
            .with_compute_bricks(3, cores=8, local_memory=gib(2))
            .with_memory_bricks(3, modules=4, module_size=gib(16))
            .with_accelerator_bricks(1)
            .build())


class TestControlToDataPlane:
    def test_scaled_up_memory_is_reachable_over_the_circuit(self, rack):
        """After a scale-up, the RMST steers loads into the new segment
        and the transaction arrives at the right brick offset."""
        rack.boot_vm(VmAllocationRequest("vm-0", vcpus=2, ram_bytes=gib(1)))
        result = rack.scale_up("vm-0", gib(2))
        segment = result.segment

        hosted = rack.hosting("vm-0")
        stack = rack.stack(hosted.brick_id)
        memory_brick = next(b for b in rack.memory_bricks
                            if b.brick_id == segment.memory_brick_id)
        circuit = rack.fabric.circuit_between(stack.brick, memory_brick)
        assert circuit is not None

        window = stack.kernel.window_of_segment(segment.segment_id)
        path = CircuitAccessPath(stack.brick, memory_brick, circuit)
        txn = MemoryTransaction.read(window.window_base + 4096)
        access = path.access(txn)
        assert access.remote_brick_id == segment.memory_brick_id
        assert access.remote_offset == segment.offset + 4096
        assert access.round_trip_s < 2e-6

    def test_rmst_cleared_after_scale_down(self, rack):
        rack.boot_vm(VmAllocationRequest("vm-0", vcpus=2, ram_bytes=gib(1)))
        result = rack.scale_up("vm-0", gib(1))
        hosted = rack.hosting("vm-0")
        stack = rack.stack(hosted.brick_id)
        assert len(stack.brick.rmst) == 1
        rack.scale_down("vm-0", result.segment.segment_id)
        assert len(stack.brick.rmst) == 0

    def test_openstack_to_running_vm(self, rack):
        facade = OpenStackFacade(rack.boot_vm)
        info = facade.boot("xlarge")  # 8 vCPU / 16 GiB > any single brick
        assert info.vm.is_running
        assert info.vm.configured_ram_bytes == gib(16)
        assert len(info.boot_segments) >= 1


class TestMultiVmLifecycle:
    def test_many_vms_share_the_pool(self, rack):
        for index in range(6):
            rack.boot_vm(VmAllocationRequest(
                f"vm-{index}", vcpus=2, ram_bytes=gib(4)))
        assert len(rack.vms) == 6
        total_guest_ram = sum(v.configured_ram_bytes for v in rack.vms)
        assert total_guest_ram == gib(24)

    def test_full_lifecycle_conserves_resources(self, rack):
        """Boot, scale up, scale down, terminate — the pool returns to
        its initial state (no leaked segments, circuits or reservations)."""
        initial_free = sum(e.allocator.free_bytes
                           for e in rack.sdm.registry.memory_entries)
        for round_number in range(3):
            rack.boot_vm(VmAllocationRequest(
                "cycle-vm", vcpus=4, ram_bytes=gib(6)))
            result = rack.scale_up("cycle-vm", gib(3))
            rack.scale_down("cycle-vm", result.segment.segment_id)
            rack.terminate_vm("cycle-vm")
        assert rack.sdm.live_segments == []
        assert rack.fabric.active_circuits == []
        final_free = sum(e.allocator.free_bytes
                         for e in rack.sdm.registry.memory_entries)
        assert final_free == initial_free
        for stack in rack.stacks:
            assert stack.kernel.reserved_bytes == 0
            assert len(stack.brick.rmst) == 0

    def test_power_cycle_with_running_vms(self, rack):
        rack.boot_vm(VmAllocationRequest("vm-0", vcpus=2, ram_bytes=gib(6)))
        off = rack.power_off_idle()
        assert off  # something was idle
        # The system still serves scale-ups (waking bricks as needed).
        result = rack.scale_up("vm-0", gib(2))
        assert result.total_latency_s > 0

    def test_vm_spanning_multiple_memory_bricks(self, rack):
        # 80 GiB guest: 2 GiB local + 78 GiB of segments.  One membrick
        # holds 64 GiB, so the boot memory must span at least two bricks.
        info = rack.boot_vm(VmAllocationRequest(
            "vm-huge", vcpus=2, ram_bytes=gib(80)))
        bricks_used = {s.memory_brick_id for s in info.boot_segments}
        assert len(bricks_used) >= 2

    def test_core_exhaustion_spreads_vms(self, rack):
        # 3 bricks x 8 cores: three 5-core VMs land on distinct bricks
        # (5 cores do not fit next to another 5-core VM), and a fourth
        # cannot be placed at all.
        from repro.errors import PlacementError
        brick_ids = set()
        for index in range(3):
            info = rack.boot_vm(VmAllocationRequest(
                f"vm-{index}", vcpus=5, ram_bytes=gib(1)))
            brick_ids.add(info.brick_id)
        assert len(brick_ids) == 3
        with pytest.raises(PlacementError):
            rack.boot_vm(VmAllocationRequest(
                "vm-overflow", vcpus=5, ram_bytes=gib(1)))


class TestAcceleratorIntegration:
    def test_bitstream_offload_flow(self, rack):
        """A compute brick pushes a bitstream to the dACCELBRICK and the
        middleware programs the slot (§II dynamic infrastructure)."""
        from repro.hardware.accelerator import (
            Bitstream,
            ReconfigurationMiddleware,
        )
        accel = rack.accelerator_bricks[0]
        middleware = ReconfigurationMiddleware(accel.slot)
        middleware.receive_bitstream(Bitstream("offload-fn"))
        latency = middleware.reconfigure("offload-fn")
        accel.slot.start()
        assert latency > 0
        assert accel.hosts_accelerator
