"""Failure-injection tests: degraded optics and dying memory bricks."""

from __future__ import annotations

import pytest

from repro.core.builder import RackBuilder
from repro.errors import ReservationError
from repro.orchestration.requests import VmAllocationRequest
from repro.units import gib


@pytest.fixture
def rack():
    system = (RackBuilder("fail")
              .with_compute_bricks(2, cores=8, local_memory=gib(2))
              .with_memory_bricks(3, modules=2, module_size=gib(8))
              .build())
    # vm-1 boots first so it fits entirely in local DRAM (no segments);
    # vm-0 then needs remote memory and is exposed to brick failures.
    system.boot_vm(VmAllocationRequest("vm-1", vcpus=2, ram_bytes=gib(1)))
    system.boot_vm(VmAllocationRequest("vm-0", vcpus=2, ram_bytes=gib(6)))
    return system


def degrade(circuit, extra_db=13.0):
    """Inject optical loss into both directions of a circuit."""
    circuit.circuit.link_ab.budget.extra_loss_db += extra_db
    circuit.circuit.link_ba.budget.extra_loss_db += extra_db


class TestCircuitDegradation:
    def test_healthy_fabric_scans_clean(self, rack):
        assert rack.sdm.scan_unhealthy_circuits() == []
        assert rack.audit_circuits() == 0.0

    def test_degraded_circuit_detected(self, rack):
        circuit = rack.fabric.active_circuits[0]
        degrade(circuit)
        unhealthy = rack.sdm.scan_unhealthy_circuits()
        assert [c.circuit_id for c in unhealthy] == [circuit.circuit_id]

    def test_repair_restores_ber(self, rack):
        circuit = rack.fabric.active_circuits[0]
        degrade(circuit)
        latency = rack.audit_circuits()
        assert latency > 0
        assert rack.sdm.scan_unhealthy_circuits() == []
        for healthy in rack.fabric.active_circuits:
            assert healthy.circuit.closes(1e-12)

    def test_repair_reprograms_rmst(self, rack):
        hosted = rack.hosting("vm-0")
        stack = rack.stack(hosted.brick_id)
        entries_before = {e.segment_id: e.egress_port_id
                          for e in stack.brick.rmst}
        circuit = rack.fabric.circuits_of(stack.brick)[0]
        degrade(circuit)
        rack.audit_circuits()
        entries_after = {e.segment_id: e.egress_port_id
                         for e in stack.brick.rmst}
        # Same segments, re-steered (same or new port, but all present).
        assert set(entries_after) == set(entries_before)
        # And every entry steers into a live circuit port.
        live_ports = {fc.port_toward(stack.brick).port_id
                      for fc in rack.fabric.circuits_of(stack.brick)}
        assert set(entries_after.values()) <= live_ports

    def test_vm_survives_repair(self, rack):
        circuit = rack.fabric.active_circuits[0]
        degrade(circuit)
        rack.audit_circuits()
        # The VM is untouched and can still scale.
        result = rack.scale_up("vm-0", gib(1))
        assert result.total_latency_s > 0

    def test_repair_unknown_circuit_rejected(self, rack):
        with pytest.raises(ReservationError):
            rack.sdm.repair_circuit("ghost")

    def test_segment_windows_unchanged_by_repair(self, rack):
        """Repair must not hotplug: local windows stay exactly put."""
        hosted = rack.hosting("vm-0")
        stack = rack.stack(hosted.brick_id)
        windows_before = {
            record.segment.segment_id: record.window_base
            for record in stack.kernel.attached_segments}
        circuit = rack.fabric.circuits_of(stack.brick)[0]
        degrade(circuit)
        rack.audit_circuits()
        windows_after = {
            record.segment.segment_id: record.window_base
            for record in stack.kernel.attached_segments}
        assert windows_after == windows_before


class TestMemoryBrickFailure:
    def _failed_brick(self, rack):
        """The brick backing vm-0's segments."""
        segment = rack.hosting("vm-0").boot_segments[0]
        return segment.memory_brick_id

    def test_impact_identifies_victims(self, rack):
        brick_id = self._failed_brick(rack)
        impact = rack.handle_memory_brick_failure(brick_id)
        assert impact.brick_id == brick_id
        assert "vm-0" in impact.vm_ids
        assert impact.segment_ids

    def test_victims_terminated_others_survive(self, rack):
        brick_id = self._failed_brick(rack)
        rack.handle_memory_brick_failure(brick_id)
        surviving = [vm.vm_id for vm in rack.vms]
        assert "vm-0" not in surviving
        assert "vm-1" in surviving  # all-local VM is unaffected

    def test_failed_brick_excluded_from_placement(self, rack):
        brick_id = self._failed_brick(rack)
        rack.handle_memory_brick_failure(brick_id)
        available = {a.brick_id
                     for a in rack.sdm.registry.memory_availability()}
        assert brick_id not in available
        # New allocations land elsewhere.
        info = rack.boot_vm(VmAllocationRequest(
            "vm-new", vcpus=2, ram_bytes=gib(6)))
        assert all(s.memory_brick_id != brick_id
                   for s in info.boot_segments)

    def test_failed_brick_powered_off(self, rack):
        brick_id = self._failed_brick(rack)
        rack.handle_memory_brick_failure(brick_id)
        brick = rack.sdm.registry.memory(brick_id).brick
        assert not brick.is_powered

    def test_no_leaked_state_after_failure(self, rack):
        brick_id = self._failed_brick(rack)
        rack.handle_memory_brick_failure(brick_id)
        # No segments reference the failed brick anymore.
        assert rack.sdm.segments_on(brick_id) == []
        # No circuit still touches it.
        brick = rack.sdm.registry.memory(brick_id).brick
        assert rack.fabric.circuits_of(brick) == []

    def test_unaffected_brick_failure_is_cheap(self, rack):
        # Fail a brick hosting nothing.
        used = {s.memory_brick_id
                for s in rack.sdm.live_segments}
        idle = next(b.brick_id for b in rack.memory_bricks
                    if b.brick_id not in used)
        impact = rack.handle_memory_brick_failure(idle)
        assert impact.vm_ids == []
        assert impact.teardown_latency_s == 0.0
        assert len(rack.vms) == 2
