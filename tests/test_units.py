"""Unit tests for unit helpers."""

from __future__ import annotations

import pytest

from repro import units


class TestTime:
    def test_nanoseconds(self):
        assert units.nanoseconds(100) == pytest.approx(1e-7)

    def test_roundtrip_ns(self):
        assert units.to_nanoseconds(units.nanoseconds(42)) == pytest.approx(42)

    def test_roundtrip_us(self):
        assert units.to_microseconds(units.microseconds(7)) == pytest.approx(7)

    def test_roundtrip_ms(self):
        assert units.to_milliseconds(units.milliseconds(3)) == pytest.approx(3)

    def test_minute_hour(self):
        assert units.HOUR == 60 * units.MINUTE


class TestCapacity:
    def test_gib_is_int(self):
        assert isinstance(units.gib(4), int)
        assert units.gib(4) == 4 * 1024 ** 3

    def test_mib_kib(self):
        assert units.mib(1) == 1024 * units.kib(1)

    def test_to_gib(self):
        assert units.to_gib(units.gib(3)) == pytest.approx(3.0)

    def test_to_mib(self):
        assert units.to_mib(units.mib(128)) == pytest.approx(128.0)

    def test_fractional_gib(self):
        assert units.gib(0.5) == units.mib(512)


class TestDataRate:
    def test_gbps(self):
        assert units.gbps(10) == 10e9

    def test_transfer_time_64_bytes_at_10g(self):
        assert units.transfer_time(64, units.gbps(10)) == pytest.approx(51.2e-9)

    def test_transfer_time_zero_bytes(self):
        assert units.transfer_time(0, units.gbps(1)) == 0.0

    def test_transfer_time_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            units.transfer_time(64, 0)


class TestOpticalPower:
    def test_zero_dbm_is_one_mw(self):
        assert units.dbm_to_mw(0.0) == pytest.approx(1.0)

    def test_roundtrip(self):
        assert units.mw_to_dbm(units.dbm_to_mw(-3.7)) == pytest.approx(-3.7)

    def test_mw_to_dbm_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            units.mw_to_dbm(0.0)

    def test_apply_loss(self):
        assert units.apply_loss_db(-3.7, 8.0) == pytest.approx(-11.7)

    def test_db_ratio_3db_doubles(self):
        assert units.db_ratio(3.0103) == pytest.approx(2.0, rel=1e-3)

    def test_ratio_db_roundtrip(self):
        assert units.ratio_db(units.db_ratio(5.5)) == pytest.approx(5.5)

    def test_ratio_db_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            units.ratio_db(-1.0)


class TestFibre:
    def test_propagation_speed_below_c(self):
        assert units.FIBRE_LIGHT_SPEED < units.SPEED_OF_LIGHT_VACUUM

    def test_ten_metres_about_49ns(self):
        delay = units.fibre_propagation_delay(10.0)
        assert delay == pytest.approx(49e-9, rel=0.01)

    def test_zero_length(self):
        assert units.fibre_propagation_delay(0.0) == 0.0

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            units.fibre_propagation_delay(-1.0)
