"""Tests for the experiment runner and the CLI."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.experiments.runner import EXPERIMENTS, run_all


class TestRunner:
    def test_registry_covers_every_artifact(self):
        assert set(EXPERIMENTS) == {
            "table1", "fig7", "fig8", "fig10", "fig12", "fig13",
            "pod_scale", "datamover", "cluster_scale", "federation",
            "availability", "maintenance", "kernel_bench",
            "parallel_scaling"}

    def test_every_driver_accepts_a_seed(self):
        import inspect
        for name, driver in EXPERIMENTS.items():
            assert "seed" in inspect.signature(driver).parameters, name

    def test_seed_threads_through_run_all(self):
        first = run_all(["table1"], seed=7).runs[0].rendered
        again = run_all(["table1"], seed=7).runs[0].rendered
        other = run_all(["table1"], seed=8).runs[0].rendered
        assert first == again
        assert first != other

    def test_run_selected(self):
        report = run_all(["table1"])
        assert len(report.runs) == 1
        assert report.runs[0].name == "table1"
        assert "TABLE I" in report.runs[0].rendered

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            run_all(["fig99"])

    def test_rendered_concatenation(self):
        report = run_all(["table1", "fig8"])
        text = report.rendered()
        assert "Experiment: table1" in text
        assert "Experiment: fig8" in text

    def test_shards_forwarded_only_to_shard_aware_drivers(self):
        # table1 has no `shards` keyword: the override must not break it.
        report = run_all(["table1"], shards=2)
        assert "TABLE I" in report.runs[0].rendered

    def test_shards_forwarded_to_shard_aware_driver(self, monkeypatch):
        captured = {}

        def fake_driver(seed=None, shards=None):
            captured["shards"] = shards

            class Result:
                def render(self):
                    return "ok"
            return Result()

        monkeypatch.setitem(EXPERIMENTS, "cluster_scale", fake_driver)
        run_all(["cluster_scale"], shards=3)
        assert captured["shards"] == 3

    def test_shards_pins_cluster_scale_axis(self):
        from repro.experiments.cluster_scale import run_cluster_scale
        result = run_cluster_scale(rack_counts=(2,),
                                   arrival_rates_hz=(30,),
                                   allocation_count=40, shards=2)
        assert result.cells
        assert all(cell.shards == 2 for cell in result.cells)

    def test_intermediate_shard_axis_on_large_pods(self):
        from repro.experiments.cluster_scale import run_cluster_scale
        result = run_cluster_scale(rack_counts=(4,),
                                   arrival_rates_hz=(30,),
                                   allocation_count=40)
        # 4-rack pods sweep centralized, half-rack and per-rack shards.
        assert result.shard_counts(4) == [1, 2, 4]

    def test_federation_axes_forwarded(self, monkeypatch):
        captured = {}

        def fake_driver(seed=None, pods=None, spill_policy=None):
            captured.update(pods=pods, spill_policy=spill_policy)

            class Result:
                def render(self):
                    return "ok"
            return Result()

        monkeypatch.setitem(EXPERIMENTS, "federation", fake_driver)
        run_all(["federation"], pods=2, spill_policy="never")
        assert captured == {"pods": 2, "spill_policy": "never"}

    def test_profile_attaches_stats_to_the_run(self):
        report = run_all(["table1"], profile=True)
        run = report.runs[0]
        assert run.profile is not None
        assert "cumulative" in run.profile
        assert "run_table1" in run.profile
        # The profile section rides along in the concatenated report.
        assert "Profile: table1" in report.rendered()

    def test_no_profile_by_default(self):
        report = run_all(["table1"])
        assert report.runs[0].profile is None
        assert "Profile:" not in report.rendered()

    def test_pods_pins_federation_axis(self):
        from repro.experiments.federation import run_federation
        result = run_federation(arrival_rates_hz=(10,), tenant_count=20,
                                pods=2, spill_policy="least-loaded")
        assert result.cells
        assert all(cell.pod_count == 2 for cell in result.cells)
        assert all(cell.spill_policy == "least-loaded"
                   for cell in result.cells)


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_run_single(self, capsys):
        assert main(["run", "table1"]) == 0
        assert "TABLE I" in capsys.readouterr().out

    def test_run_rejects_unknown(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "fig99"])

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_seed_flag_parsed(self):
        args = build_parser().parse_args(["run", "table1", "--seed", "7"])
        assert args.seed == 7
        args = build_parser().parse_args(["run-all", "--seed", "9"])
        assert args.seed == 9
        args = build_parser().parse_args(["run", "table1"])
        assert args.seed is None

    def test_shards_flag_parsed(self):
        args = build_parser().parse_args(
            ["run", "cluster_scale", "--shards", "2"])
        assert args.shards == 2
        args = build_parser().parse_args(["run-all", "--shards", "4"])
        assert args.shards == 4
        args = build_parser().parse_args(["run", "cluster_scale"])
        assert args.shards is None

    def test_federation_flags_parsed(self):
        args = build_parser().parse_args(
            ["run", "federation", "--pods", "3",
             "--spill-policy", "least-loaded"])
        assert args.pods == 3
        assert args.spill_policy == "least-loaded"
        args = build_parser().parse_args(["run-all", "--pods", "2"])
        assert args.pods == 2
        args = build_parser().parse_args(["run", "federation"])
        assert args.pods is None
        assert args.spill_policy is None

    def test_bad_spill_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "federation", "--spill-policy", "random"])

    def test_run_single_with_seed(self, capsys):
        assert main(["run", "table1", "--seed", "7"]) == 0
        assert "TABLE I" in capsys.readouterr().out

    def test_profile_flag_parsed(self):
        args = build_parser().parse_args(["run", "table1", "--profile"])
        assert args.profile is True
        args = build_parser().parse_args(["run-all", "--profile"])
        assert args.profile is True
        args = build_parser().parse_args(["run", "table1"])
        assert args.profile is False

    def test_run_single_with_profile_prints_stats(self, capsys):
        assert main(["run", "table1", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "TABLE I" in out
        assert "cumulative" in out


class TestTopologyCli:
    def test_topology_flag_parsed(self):
        args = build_parser().parse_args(
            ["run", "federation", "--topology", "L"])
        assert args.topology == "L"
        args = build_parser().parse_args(["run-all", "--topology", "S"])
        assert args.topology == "S"
        args = build_parser().parse_args(["run", "federation"])
        assert args.topology is None

    def test_topology_forwarded_only_to_aware_drivers(self, monkeypatch):
        captured = {}

        def fake_driver(seed=None, topology=None):
            captured.update(topology=topology)

            class Result:
                def render(self):
                    return "ok"
            return Result()

        monkeypatch.setitem(EXPERIMENTS, "federation", fake_driver)
        run_all(["federation"], topology="S")
        assert captured == {"topology": "S"}
        # table1's driver has no topology axis; forwarding must not crash.
        assert run_all(["table1"], topology="S").runs

    def test_validate_templates_and_examples(self, capsys):
        assert main(["topology", "validate", "S", "M", "L", "XL",
                     "examples/topologies/paper-m.json"]) == 0
        out = capsys.readouterr().out
        assert out.count("ok ") == 5
        assert "paper-m" in out

    def test_validate_rejects_invalid_spec(self, capsys, tmp_path):
        bad = tmp_path / "bad-topo.json"
        bad.write_text('{"pods": 2, "rack": {"compute_bricks": 0}}')
        assert main(["topology", "validate", str(bad)]) == 1
        err = capsys.readouterr().err
        assert f"INVALID {bad}" in err
        assert "rack.compute_bricks" in err

    def test_describe_prints_canonical_json(self, capsys):
        import json as _json

        assert main(["topology", "describe", "M"]) == 0
        doc = _json.loads(capsys.readouterr().out)
        assert doc["pods"] == 3
        assert doc["rack"]["compute_bricks"] == 2
