"""Tests for the per-figure experiment drivers.

These assert the *shapes* the paper reports (see DESIGN.md §2), not the
absolute numbers of the authors' testbed.
"""

from __future__ import annotations

import pytest

from repro.experiments.fig7_ber import run_fig7
from repro.experiments.fig8_latency import run_fig8
from repro.experiments.fig10_agility import run_fig10
from repro.experiments.fig12_poweroff import run_fig12
from repro.experiments.fig13_energy import run_fig13
from repro.experiments.table1_workloads import run_table1


class TestTable1:
    @pytest.fixture(scope="class")
    def result(self):
        return run_table1(sample_count=500)

    def test_rows_are_the_paper_table(self, result):
        assert result.rows() == [
            ("Random", "1-32 cores", "1-32 GB"),
            ("High RAM", "1-8 cores", "24-32 GB"),
            ("High CPU", "24-32 cores", "1-8 GB"),
            ("Half Half", "16 cores", "16 GB"),
            ("More RAM", "1-6 cores", "17-32 GB"),
            ("More CPU", "17-32 cores", "1-16 GB"),
        ]

    def test_sampled_means_near_midpoints(self, result):
        stats = result.sample_stats["Random"]
        assert stats["mean_vcpus"] == pytest.approx(16.5, rel=0.1)
        assert stats["mean_ram_gib"] == pytest.approx(16.5, rel=0.1)

    def test_sampled_extremes_within_ranges(self, result):
        stats = result.sample_stats["High RAM"]
        assert stats["min_ram_gib"] >= 24
        assert stats["max_ram_gib"] <= 32

    def test_render(self, result):
        text = result.render()
        assert "TABLE I" in text
        assert "High CPU" in text


class TestFig7:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig7(measurements_per_channel=25)

    def test_every_channel_below_target(self, result):
        # The paper's headline: all links achieve BER below 1e-12.
        assert all(m.meets_target for m in result.channels)

    def test_hop_counts_match_paper(self, result):
        hops = {m.channel: m.hops for m in result.channels}
        assert hops[8] == 6
        assert all(hops[ch] == 8 for ch in range(1, 8))

    def test_six_hop_channel_receives_more_power(self, result):
        ch6 = result.channel(8)  # the six-hop channel
        eight_hop_power = max(m.mean_received_dbm for m in result.channels
                              if m.hops == 8)
        assert ch6.mean_received_dbm > eight_hop_power

    def test_ber_monotone_in_received_power(self, result):
        ordered = sorted(result.channels,
                         key=lambda m: m.mean_received_dbm)
        weakest, strongest = ordered[0], ordered[-1]
        assert weakest.ber_stats.median > strongest.ber_stats.median

    def test_boxplot_has_spread(self, result):
        measurement = result.channel(1)
        assert measurement.ber_stats.q3 > measurement.ber_stats.q1

    def test_render_mentions_featured_channels(self, result):
        text = result.render()
        assert "ch-1" in text and "ch-8" in text


class TestFig8:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig8()

    def test_groups_match_figure_legend(self, result):
        assert set(result.by_group) == {
            "dCOMPUBRICK", "optical path", "dMEMBRICK"}

    def test_mac_phy_and_switch_dominate(self, result):
        assert result.by_block["mac_phy"] > result.by_block["propagation"]
        assert result.by_block["switch"] > result.by_block["propagation"]

    def test_total_in_microsecond_regime(self, result):
        assert 1000 <= result.packet_total_ns <= 3000

    def test_fec_penalty_exceeds_100ns_per_direction(self, result):
        # Four MAC/PHY traversals per round trip -> > 400 ns total.
        assert result.fec_penalty_ns > 400

    def test_circuit_path_faster(self, result):
        assert result.circuit_total_ns < result.packet_total_ns

    def test_rows_sum_to_total(self, result):
        total = sum(ns for _g, _n, ns in result.rows())
        # rows() rounds to 0.1 ns per component.
        assert total == pytest.approx(result.packet_total_ns, abs=1.0)

    def test_render(self, result):
        text = result.render()
        assert "FEC" in text
        assert "dMEMBRICK" in text


class TestFig10:
    @pytest.fixture(scope="class")
    def result(self):
        # Scaled-down but same structure: 2 sizes x 3 concurrency levels.
        return run_fig10(sizes_gib=(1, 4), concurrencies=(2, 4, 8))

    def test_all_cells_present(self, result):
        assert len(result.cells) == 6

    def test_scale_up_far_faster_than_scale_out(self, result):
        for cell in result.cells:
            assert result.speedup_vs_scale_out(
                cell.size_gib, cell.concurrency) > 10

    def test_delay_grows_with_concurrency(self, result):
        for size in result.sizes_gib:
            low = result.cell(size, 2).mean_delay_s
            high = result.cell(size, 8).mean_delay_s
            assert high >= low

    def test_delay_grows_with_size(self, result):
        for concurrency in result.concurrencies:
            small = result.cell(1, concurrency).mean_delay_s
            large = result.cell(4, concurrency).mean_delay_s
            assert large > small

    def test_each_vm_sampled_once(self, result):
        cell = result.cell(1, 8)
        assert len(cell.delays_s) == 8

    def test_render(self, result):
        text = result.render()
        assert "scale-out" in text


class TestFig12:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig12(node_count=64)

    def test_headline_up_to_88_percent(self, result):
        assert result.max_brick_poweroff == pytest.approx(0.88, abs=0.06)

    def test_conventional_at_most_about_15_percent(self, result):
        assert result.max_conventional_poweroff <= 0.20

    def test_disaggregated_dominates(self, result):
        for r in result.results:
            assert r.disaggregated_poweroff >= r.conventional_poweroff - 1e-9

    def test_unbalanced_beats_balanced(self, result):
        by_name = {r.config_name: r for r in result.results}
        assert (by_name["High RAM"].disaggregated_poweroff
                > by_name["Half Half"].disaggregated_poweroff)

    def test_render(self, result):
        text = result.render()
        assert "88%" in text or "87%" in text or "86%" in text


class TestFig13:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig13(node_count=64)

    def test_savings_reach_paper_regime(self, result):
        # "almost 50% energy savings depending on the workload"
        assert result.best_savings >= 0.45

    def test_memory_heavy_workloads_save_most(self, result):
        assert result.savings_for("High RAM") > result.savings_for("Half Half")
        assert result.savings_for("More RAM") > result.savings_for("Random")

    def test_balanced_near_parity(self, result):
        assert abs(result.savings_for("Half Half")) < 0.1

    def test_normalized_power_bounds(self, result):
        for r in result.results:
            assert 0.0 < r.normalized_power < 1.1

    def test_render(self, result):
        text = result.render()
        assert "normalized" in text.lower()
