"""Availability sweep: inertness, axis pinning, flags, validation.

The acceptance-critical test here is the inertness guarantee: the
sweep's zero-fault cell must be **bit-identical** to the federation
sweep's ``(3 pods, 5/s, least-loaded)`` cell — every fault-injection
hook is an inert no-op when no fault ever fires.
"""

from __future__ import annotations

import pytest

from repro.cli import build_parser
from repro.errors import ConfigurationError
from repro.experiments import availability
from repro.experiments.availability import (
    _parse_classes,
    _run_cell,
    _scripted_plan,
    run_availability,
)
from repro.experiments.federation import _run_cell as federation_cell
from repro.experiments.runner import EXPERIMENTS, run_all
from repro.topology import template


class TestInertness:
    def test_zero_fault_cell_bit_identical_to_federation_sweep(self):
        fault_free = _run_cell(template("M"), "none", True, 2018)
        baseline = federation_cell(template("M"), 3, 5.0,
                                   "least-loaded", 120, 2018)
        assert fault_free.faults == 0
        assert fault_free.downtime_ts == 0.0
        assert fault_free.readmissions == 0
        # Bit-identical, not approximately equal: the injector's hooks
        # never perturbed a single event on the shared clock.
        assert fault_free.admitted == baseline.admitted
        assert fault_free.rejected == baseline.rejected
        assert fault_free.spills == baseline.spills
        assert fault_free.migrations == baseline.migrations
        assert fault_free.p50_boot_ms == baseline.p50_boot_ms
        assert fault_free.p99_boot_ms == baseline.p99_boot_ms
        assert fault_free.duration_s == baseline.duration_s


class TestSweep:
    def test_pinned_axes_shape(self, monkeypatch):
        monkeypatch.setattr(availability, "TENANT_COUNT", 24)
        result = run_availability(mtbf=15.0, fault_classes="switch,shard",
                                  self_heal="on", seed=7)
        # One MTBF row, the scripted pair row, the zero-fault row —
        # each in the single pinned heal mode.
        assert result.labels == ["mtbf=15s", "scripted", "none"]
        assert all(cell.self_heal for cell in result.cells)
        assert result.fault_classes == ("switch", "shard")
        assert result.cell("none", True).faults == 0
        rendered = result.render()
        assert "Availability under fault injection" in rendered
        assert "switch, shard" in rendered

    def test_scripted_pair_self_heal_reduces_downtime(self, monkeypatch):
        monkeypatch.setattr(availability, "TENANT_COUNT", 40)
        monkeypatch.setattr(availability, "SCRIPTED_OUTAGES",
                            ((1.0, "pod", "pod0", 8.0),))
        plan = _scripted_plan()
        healed = _run_cell(template("M"), "scripted", True, 11,
                           plan=plan, classes=())
        unhealed = _run_cell(template("M"), "scripted", False, 11,
                             plan=_scripted_plan(), classes=())
        assert healed.faults == unhealed.faults == 1
        assert healed.readmissions > 0
        assert healed.downtime_ts < unhealed.downtime_ts
        assert len(plan) == 1

    def test_downtime_reduction_handles_zero_downtime(self):
        result = availability.AvailabilityResult(
            tenant_count=1, arrival_rate_hz=1.0, fault_classes=("pod",))

        def cell(heal, downtime):
            return availability.AvailabilityCell(
                label="x", mtbf_s=None, self_heal=heal, faults=1,
                downtime_ts=downtime, mttr_s=0.0, readmissions=0,
                readmission_failures=0, admitted=1, rejected=0,
                spills=0, migrations=0, p50_boot_ms=0.0,
                p99_boot_ms=0.0, duration_s=1.0)

        result.cells = [cell(True, 0.0), cell(False, 5.0)]
        assert result.downtime_reduction("x") == float("inf")
        result.cells = [cell(True, 0.0), cell(False, 0.0)]
        assert result.downtime_reduction("x") == 1.0


class TestValidation:
    def test_parse_classes(self):
        assert _parse_classes(None) is None
        assert _parse_classes("pod, shard") == ("pod", "shard")

    def test_unknown_class_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fault"):
            run_availability(fault_classes="pod,bogus")

    def test_empty_classes_rejected(self):
        with pytest.raises(ConfigurationError, match="at least one"):
            run_availability(fault_classes=" , ")

    def test_non_positive_mtbf_rejected(self):
        with pytest.raises(ConfigurationError, match="--mtbf"):
            run_availability(mtbf=-1.0)

    def test_bad_self_heal_rejected(self):
        with pytest.raises(ConfigurationError, match="--self-heal"):
            run_availability(self_heal="maybe")


class TestFlags:
    def test_registry_has_availability(self):
        assert "availability" in EXPERIMENTS

    def test_cli_parses_fault_flags(self):
        args = build_parser().parse_args(
            ["run", "availability", "--mtbf", "25",
             "--fault-classes", "pod,shard", "--self-heal", "off"])
        assert args.mtbf == 25.0
        assert args.fault_classes == "pod,shard"
        assert args.self_heal == "off"
        args = build_parser().parse_args(["run-all", "--mtbf", "40"])
        assert args.mtbf == 40.0
        args = build_parser().parse_args(["run", "availability"])
        assert args.mtbf is None
        assert args.fault_classes is None
        assert args.self_heal is None

    def test_bad_self_heal_flag_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "availability", "--self-heal", "sometimes"])

    def test_runner_forwards_fault_axes_only_where_declared(self,
                                                           monkeypatch):
        captured = {}

        class Result:
            def render(self):
                return "stub"

        def fake_availability(seed=None, mtbf=None, fault_classes=None,
                              self_heal=None):
            captured.update(seed=seed, mtbf=mtbf,
                            fault_classes=fault_classes,
                            self_heal=self_heal)
            return Result()

        def fake_table1(seed=None):
            # Declares no fault axis: forwarding it would TypeError.
            return Result()

        monkeypatch.setitem(EXPERIMENTS, "availability",
                            fake_availability)
        monkeypatch.setitem(EXPERIMENTS, "table1", fake_table1)
        report = run_all(["table1", "availability"], seed=9, mtbf=33.0,
                         fault_classes="pod", self_heal="on")
        assert captured == {"seed": 9, "mtbf": 33.0,
                            "fault_classes": "pod", "self_heal": "on"}
        assert [run.name for run in report.runs] == ["table1",
                                                     "availability"]
