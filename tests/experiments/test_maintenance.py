"""Maintenance study: acceptance headlines, axes, flags, determinism.

The acceptance-critical asserts live here: a full-pod rolling drain
commits with admission availability >= 99.9 % of the no-drain cell
and bounded p99 inflation; the drain+faults cell's scripted in-scope
domain outage aborts the drain, which rolls back with conservation
holding; and the whole study replays bit-identically per seed.
"""

from __future__ import annotations

import pytest

from repro.cli import build_parser
from repro.errors import ConfigurationError
from repro.experiments.maintenance import (
    AVAILABILITY_FLOOR,
    run_maintenance,
)


@pytest.fixture(scope="module")
def study():
    return run_maintenance(seed=2018)


class TestHeadlines:
    def test_rolling_drain_commits_with_zero_admission_downtime(
            self, study):
        drain = study.cell("drain")
        assert drain.drain_committed, drain.abort_reason
        assert drain.racks_retired == 2
        assert drain.tenants_migrated > 0
        assert study.availability_ratio("drain") >= AVAILABILITY_FLOOR
        # Bounded p99 inflation: the drain is invisible at the tail
        # beyond a small constant factor.
        assert study.p99_inflation("drain") <= 1.5
        assert drain.conserved

    def test_correlated_outage_aborts_and_rolls_back(self, study):
        faulted = study.cell("drain+faults")
        assert faulted.drain_aborted and not faulted.drain_committed
        assert "fault" in faulted.abort_reason
        assert faulted.domain_outages >= 1
        assert faulted.fault_count >= 1
        assert faulted.conserved

    def test_every_cell_conserves(self, study):
        assert all(cell.conserved for cell in study.cells)

    def test_render_carries_the_headlines(self, study):
        rendered = study.render()
        assert "Rolling maintenance" in rendered
        assert "admission availability" in rendered
        assert "rolled back" in rendered
        assert "conservation holds" in rendered


class TestDeterminism:
    def test_same_seed_replays_the_identical_study(self, study):
        again = run_maintenance(seed=2018)
        for first, second in zip(study.cells, again.cells):
            assert first == second


class TestAxes:
    def test_workers_are_rejected(self):
        with pytest.raises(ConfigurationError, match="serial"):
            run_maintenance(workers=2)
        with pytest.raises(ConfigurationError, match="serial"):
            run_maintenance(sync_window=0.5)

    def test_drain_must_name_a_pod(self):
        with pytest.raises(ConfigurationError, match="--drain"):
            run_maintenance(drain="rack3")

    def test_unknown_domain_set_rejected(self):
        with pytest.raises(ConfigurationError, match="domain set"):
            run_maintenance(domains="blast-radius")

    def test_malformed_hazard_rejected(self):
        from repro.errors import FaultError
        with pytest.raises(FaultError):
            run_maintenance(hazard="bathtub:1:2")


class TestCliFlags:
    def test_maintenance_flags_parsed(self):
        args = build_parser().parse_args(
            ["run", "maintenance", "--drain", "pod1",
             "--hazard", "weibull:30:0.7", "--domains", "both"])
        assert args.experiment == "maintenance"
        assert args.drain == "pod1"
        assert args.hazard == "weibull:30:0.7"
        assert args.domains == "both"

    def test_replica_groups_flag_parsed(self):
        args = build_parser().parse_args(
            ["run", "federation", "--replica-groups", "2"])
        assert args.replica_groups == 2

    def test_domains_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "maintenance", "--domains", "nope"])
