"""Unit tests for statistics and text rendering."""

from __future__ import annotations

import pytest

from repro.analysis.figures import render_bars, render_grouped_bars
from repro.analysis.stats import (
    boxplot_stats,
    geometric_mean,
    summarize,
)
from repro.analysis.tables import render_table


class TestSummarize:
    def test_basic(self):
        stats = summarize([1.0, 2.0, 3.0, 4.0])
        assert stats.count == 4
        assert stats.mean == pytest.approx(2.5)
        assert stats.median == pytest.approx(2.5)
        assert stats.minimum == 1.0
        assert stats.maximum == 4.0

    def test_single_value(self):
        stats = summarize([7.0])
        assert stats.std == 0.0
        assert stats.mean == 7.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_str_form(self):
        assert "mean=" in str(summarize([1.0, 2.0]))


class TestBoxplot:
    def test_quartiles(self):
        stats = boxplot_stats(list(range(1, 101)))
        assert stats.median == pytest.approx(50.5)
        assert stats.q1 == pytest.approx(25.75)
        assert stats.q3 == pytest.approx(75.25)
        assert stats.iqr == pytest.approx(49.5)

    def test_outlier_detection(self):
        values = [10.0] * 20 + [1000.0]
        stats = boxplot_stats(values)
        assert stats.outliers == (1000.0,)
        assert stats.whisker_high == 10.0

    def test_no_outliers(self):
        stats = boxplot_stats([1.0, 2.0, 3.0])
        assert stats.outliers == ()
        assert stats.whisker_low == 1.0
        assert stats.whisker_high == 3.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            boxplot_stats([])


class TestGeometricMean:
    def test_powers_of_two(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])


class TestRenderTable:
    def test_alignment_and_borders(self):
        text = render_table(["name", "value"],
                            [("alpha", 1.5), ("b", 22.25)])
        lines = text.splitlines()
        assert lines[0].startswith("+")
        assert "| name " in lines[1]
        # Numeric column right-aligned: both rows end consistently.
        assert lines[3].endswith("|")

    def test_title(self):
        text = render_table(["a"], [(1,)], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [(1,)])

    def test_bool_and_scientific_formatting(self):
        text = render_table(["x", "ok"], [(1.5e-13, True)])
        assert "1.500e-13" in text
        assert "yes" in text

    def test_empty_headers_rejected(self):
        with pytest.raises(ValueError):
            render_table([], [])


class TestRenderBars:
    def test_longest_bar_is_peak(self):
        text = render_bars(["a", "b"], [1.0, 2.0], width=10)
        lines = text.splitlines()
        assert lines[1].count("#") == 10
        assert lines[0].count("#") == 5

    def test_log_scale_for_ber(self):
        text = render_bars(["ch1", "ch8"], [1e-18, 1e-60], log_scale=True)
        ch1, ch8 = text.splitlines()
        assert ch1.count("#") > ch8.count("#")

    def test_log_scale_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            render_bars(["a"], [0.0], log_scale=True)

    def test_unit_suffix(self):
        text = render_bars(["a"], [3.0], unit="s")
        assert "3 s" in text

    def test_label_value_count_mismatch(self):
        with pytest.raises(ValueError):
            render_bars(["a"], [1.0, 2.0])

    def test_zero_values_render(self):
        text = render_bars(["a", "b"], [0.0, 0.0])
        assert "a" in text


class TestGroupedBars:
    def test_structure(self):
        text = render_grouped_bars(
            ["w1", "w2"],
            {"conv": [1.0, 1.0], "dredbox": [0.5, 0.9]})
        assert "w1:" in text and "w2:" in text
        assert text.count("conv") == 2

    def test_series_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_grouped_bars(["a"], {"s": [1.0, 2.0]})

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            render_grouped_bars([], {})
