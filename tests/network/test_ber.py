"""Unit tests for the BER physics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import LinkBudgetError
from repro.network.optical.ber import (
    BER_TARGET,
    ReceiverModel,
    ber_for_q,
    q_for_ber,
    received_power_dbm,
    received_power_mw,
)


class TestQBerConversion:
    def test_q7_is_about_1e_minus12(self):
        # The canonical fact: Q ~= 7.03 gives BER 1e-12.
        assert ber_for_q(7.034) == pytest.approx(1e-12, rel=0.05)

    def test_roundtrip(self):
        for ber in (1e-3, 1e-9, 1e-12, 1e-15):
            assert ber_for_q(q_for_ber(ber)) == pytest.approx(ber, rel=1e-6)

    def test_monotonic_in_q(self):
        assert ber_for_q(8.0) < ber_for_q(7.0) < ber_for_q(6.0)

    def test_q_zero_is_half(self):
        assert ber_for_q(0.0) == pytest.approx(0.5)

    def test_negative_q_rejected(self):
        with pytest.raises(LinkBudgetError):
            ber_for_q(-1.0)

    def test_ber_bounds_enforced(self):
        with pytest.raises(LinkBudgetError):
            q_for_ber(0.0)
        with pytest.raises(LinkBudgetError):
            q_for_ber(0.6)


class TestReceiverModel:
    def test_ber_at_sensitivity_is_reference(self):
        receiver = ReceiverModel(sensitivity_dbm=-15.0)
        assert receiver.ber(-15.0) == pytest.approx(BER_TARGET, rel=0.01)

    def test_ber_improves_with_power(self):
        receiver = ReceiverModel()
        assert receiver.ber(-10.0) < receiver.ber(-14.0) < receiver.ber(-16.0)

    def test_margin(self):
        receiver = ReceiverModel(sensitivity_dbm=-15.0)
        assert receiver.power_margin_db(-12.0) == pytest.approx(3.0)

    def test_meets_target(self):
        receiver = ReceiverModel(sensitivity_dbm=-15.0)
        assert receiver.meets_target(-14.0)
        assert not receiver.meets_target(-16.0)

    def test_required_power_inverse_of_ber(self):
        receiver = ReceiverModel(sensitivity_dbm=-15.0)
        power = receiver.required_power_dbm(1e-15)
        assert receiver.ber(power) == pytest.approx(1e-15, rel=0.05)
        assert power > -15.0  # lower BER needs more power

    def test_q_factor_linear_in_power(self):
        receiver = ReceiverModel(sensitivity_dbm=-15.0)
        # +3 dB of optical power roughly doubles Q.
        ratio = receiver.q_factor(-12.0) / receiver.q_factor(-15.0)
        assert ratio == pytest.approx(2.0, rel=0.01)


class TestMeasurement:
    def test_deterministic_floor(self):
        receiver = ReceiverModel(sensitivity_dbm=-15.0)
        # Way above sensitivity -> true BER below floor -> report floor.
        measured = receiver.measure_ber(-5.0, bits=1e12)
        assert measured == pytest.approx(1e-12)

    def test_deterministic_above_floor(self):
        receiver = ReceiverModel(sensitivity_dbm=-15.0)
        measured = receiver.measure_ber(-16.5, bits=1e12)
        assert measured == pytest.approx(receiver.ber(-16.5))

    def test_poisson_sampling_near_truth(self):
        receiver = ReceiverModel(sensitivity_dbm=-15.0)
        rng = np.random.default_rng(3)
        true_ber = receiver.ber(-15.0)
        samples = [receiver.measure_ber(-15.0, rng=rng, bits=1e14)
                   for _ in range(50)]
        assert np.mean(samples) == pytest.approx(true_ber, rel=0.2)

    def test_zero_bits_rejected(self):
        with pytest.raises(LinkBudgetError):
            ReceiverModel().measure_ber(-10.0, bits=0)


class TestReceivedPower:
    def test_subtraction(self):
        assert received_power_dbm(-3.7, 8.0) == pytest.approx(-11.7)

    def test_negative_loss_rejected(self):
        with pytest.raises(LinkBudgetError):
            received_power_dbm(-3.7, -1.0)

    def test_linear_conversion(self):
        assert received_power_mw(0.0, 3.0103) == pytest.approx(0.5, rel=1e-3)
