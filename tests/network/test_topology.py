"""Unit tests for the optical fabric facade."""

from __future__ import annotations

import pytest

from repro.errors import CircuitError
from repro.hardware.bricks import ComputeBrick, MemoryBrick
from repro.network.optical.topology import OpticalFabric


class TestAttachment:
    def test_attach_all_cbn_ports(self, compute_brick):
        fabric = OpticalFabric()
        attached = fabric.attach_brick(compute_brick)
        assert attached == len(compute_brick.circuit_ports)
        assert fabric.is_attached(compute_brick)

    def test_double_attach_rejected(self, compute_brick):
        fabric = OpticalFabric()
        fabric.attach_brick(compute_brick)
        with pytest.raises(CircuitError):
            fabric.attach_brick(compute_brick)


class TestConnect:
    def test_connect_allocates_ports(self, fabric, compute_brick,
                                     memory_brick):
        circuit = fabric.connect(compute_brick, memory_brick)
        assert circuit.port_a.peer is circuit.port_b
        assert circuit.brick_a is compute_brick
        assert fabric.circuit_between(compute_brick, memory_brick) is circuit

    def test_port_toward(self, fabric, compute_brick, memory_brick):
        circuit = fabric.connect(compute_brick, memory_brick)
        assert circuit.port_toward(compute_brick) is circuit.port_a
        assert circuit.port_toward(memory_brick) is circuit.port_b
        stranger = ComputeBrick("cb9")
        with pytest.raises(CircuitError):
            circuit.port_toward(stranger)

    def test_unattached_brick_rejected(self, fabric, compute_brick):
        stranger = MemoryBrick("mb9")
        with pytest.raises(CircuitError, match="not attached"):
            fabric.connect(compute_brick, stranger)

    def test_powered_off_brick_rejected(self, fabric, compute_brick,
                                        memory_brick):
        memory_brick.power_off()
        with pytest.raises(CircuitError, match="powered off"):
            fabric.connect(compute_brick, memory_brick)

    def test_multiple_circuits_between_same_pair(self, fabric,
                                                 compute_brick, memory_brick):
        first = fabric.connect(compute_brick, memory_brick)
        second = fabric.connect(compute_brick, memory_brick)
        assert first.circuit_id != second.circuit_id
        assert len(fabric.circuits_of(compute_brick)) == 2

    def test_port_exhaustion(self, compute_brick):
        # A brick with a single CBN port supports a single circuit.
        small_a = ComputeBrick("one-a", cbn_ports=1)
        small_b = MemoryBrick("one-b", cbn_ports=1)
        fabric = OpticalFabric()
        fabric.attach_brick(small_a)
        fabric.attach_brick(small_b)
        fabric.connect(small_a, small_b)
        with pytest.raises(CircuitError, match="no free CBN port"):
            fabric.connect(small_a, small_b)


class TestConnectChannels:
    def test_pins_requested_lanes(self, fabric, compute_brick, memory_brick):
        circuit = fabric.connect_channels(compute_brick, 3, memory_brick, 5)
        assert circuit.port_a is compute_brick.mbo.channel(3).port
        assert circuit.port_b is memory_brick.mbo.channel(5).port

    def test_busy_lane_rejected(self, fabric, compute_brick, memory_brick):
        fabric.connect_channels(compute_brick, 0, memory_brick, 0)
        with pytest.raises(CircuitError, match="busy"):
            fabric.connect_channels(compute_brick, 0, memory_brick, 1)


class TestDisconnect:
    def test_frees_everything(self, fabric, compute_brick, memory_brick):
        circuit = fabric.connect(compute_brick, memory_brick, hops=3)
        fabric.disconnect(circuit)
        assert fabric.circuit_between(compute_brick, memory_brick) is None
        assert circuit.port_a.is_free and circuit.port_b.is_free
        assert fabric.switch.ports_in_use == 0

    def test_double_disconnect_rejected(self, fabric, compute_brick,
                                        memory_brick):
        circuit = fabric.connect(compute_brick, memory_brick)
        fabric.disconnect(circuit)
        with pytest.raises(CircuitError):
            fabric.disconnect(circuit)

    def test_power_draw_follows_circuits(self, fabric, compute_brick,
                                         memory_brick):
        assert fabric.power_draw_w == 0.0
        circuit = fabric.connect(compute_brick, memory_brick)
        assert fabric.power_draw_w > 0.0
        fabric.disconnect(circuit)
        assert fabric.power_draw_w == 0.0
