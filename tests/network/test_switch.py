"""Unit tests for the optical circuit switch."""

from __future__ import annotations

import pytest

from repro.errors import CircuitError
from repro.network.optical.switch import OpticalCircuitSwitch


@pytest.fixture
def switch() -> OpticalCircuitSwitch:
    return OpticalCircuitSwitch("sw0", port_count=8)


class TestCrossConnects:
    def test_connect_is_bidirectional(self, switch):
        switch.connect(0, 5)
        assert switch.peer_of(0) == 5
        assert switch.peer_of(5) == 0
        assert switch.cross_connect_count == 1

    def test_connect_to_self_rejected(self, switch):
        with pytest.raises(CircuitError):
            switch.connect(3, 3)

    def test_busy_port_rejected(self, switch):
        switch.connect(0, 1)
        with pytest.raises(CircuitError):
            switch.connect(1, 2)

    def test_disconnect_returns_ordered_pair(self, switch):
        switch.connect(6, 2)
        assert switch.disconnect(6) == (2, 6)
        assert switch.peer_of(2) is None

    def test_disconnect_unconnected_rejected(self, switch):
        with pytest.raises(CircuitError):
            switch.disconnect(0)

    def test_port_bounds(self, switch):
        with pytest.raises(CircuitError):
            switch.connect(0, 8)
        with pytest.raises(CircuitError):
            switch.peer_of(-1)

    def test_reconfiguration_counter(self, switch):
        switch.connect(0, 1)
        switch.disconnect(0)
        assert switch.reconfigurations == 2

    def test_is_connected(self, switch):
        switch.connect(0, 1)
        assert switch.is_connected(0)
        assert not switch.is_connected(2)


class TestAttachments:
    def test_attach_and_lookup(self, switch):
        switch.attach(3, "cb0.cbn0")
        assert switch.attachment(3) == "cb0.cbn0"
        assert switch.port_of("cb0.cbn0") == 3

    def test_double_attach_rejected(self, switch):
        switch.attach(3, "a")
        with pytest.raises(CircuitError):
            switch.attach(3, "b")

    def test_detach_requires_unconnected(self, switch):
        switch.attach(0, "a")
        switch.attach(1, "b")
        switch.connect(0, 1)
        with pytest.raises(CircuitError, match="cross-connected"):
            switch.detach(0)

    def test_detach_returns_label(self, switch):
        switch.attach(0, "a")
        assert switch.detach(0) == "a"
        assert switch.attachment(0) is None

    def test_detach_empty_rejected(self, switch):
        with pytest.raises(CircuitError):
            switch.detach(0)

    def test_port_of_unknown_rejected(self, switch):
        with pytest.raises(CircuitError):
            switch.port_of("ghost")

    def test_free_attachment_ports(self, switch):
        switch.attach(0, "a")
        switch.attach(7, "b")
        assert switch.free_attachment_ports() == [1, 2, 3, 4, 5, 6]


class TestPower:
    def test_draw_follows_ports_in_use(self, switch):
        assert switch.power_draw_w == 0.0
        switch.connect(0, 1)
        assert switch.power_draw_w == pytest.approx(0.2)
        switch.connect(2, 3)
        assert switch.power_draw_w == pytest.approx(0.4)

    def test_max_draw(self, switch):
        assert switch.max_power_draw_w == pytest.approx(0.8)

    def test_next_generation_doubles_density_halves_power(self):
        current = OpticalCircuitSwitch("now")
        following = OpticalCircuitSwitch.next_generation("next")
        assert following.port_count == 2 * current.port_count
        assert following.port_power_w == pytest.approx(
            current.port_power_w / 2)

    def test_too_few_ports_rejected(self):
        with pytest.raises(CircuitError):
            OpticalCircuitSwitch("bad", port_count=1)
