"""Unit tests for latency-breakdown accounting."""

from __future__ import annotations

import pytest

from repro.network.latency import LatencyBreakdown, LatencyComponent


class TestComponent:
    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            LatencyComponent("x", -1e-9)

    def test_zero_allowed(self):
        assert LatencyComponent("x", 0.0).seconds == 0.0


class TestBreakdown:
    @pytest.fixture
    def breakdown(self) -> LatencyBreakdown:
        b = LatencyBreakdown()
        b.add("tgl", 100e-9, "compute")
        b.add("mac_phy", 200e-9, "compute")
        b.add("propagation", 49e-9, "optical")
        b.add("mac_phy", 200e-9, "memory")
        return b

    def test_total(self, breakdown):
        assert breakdown.total_s == pytest.approx(549e-9)
        assert breakdown.total_ns == pytest.approx(549.0)

    def test_by_group(self, breakdown):
        groups = breakdown.by_group()
        assert groups["compute"] == pytest.approx(300e-9)
        assert groups["optical"] == pytest.approx(49e-9)
        assert groups["memory"] == pytest.approx(200e-9)

    def test_by_name_merges_duplicates(self, breakdown):
        names = breakdown.by_name()
        assert names["mac_phy"] == pytest.approx(400e-9)

    def test_share(self, breakdown):
        assert breakdown.share("mac_phy") == pytest.approx(400 / 549, rel=1e-6)
        assert breakdown.share("ghost") == 0.0

    def test_share_of_empty_breakdown(self):
        assert LatencyBreakdown().share("x") == 0.0

    def test_scaled(self, breakdown):
        doubled = breakdown.scaled(2.0)
        assert doubled.total_s == pytest.approx(2 * breakdown.total_s)
        assert len(doubled) == len(breakdown)

    def test_scaled_negative_rejected(self, breakdown):
        with pytest.raises(ValueError):
            breakdown.scaled(-1.0)

    def test_extend(self, breakdown):
        other = LatencyBreakdown().add("memory", 70e-9, "memory")
        combined_total = breakdown.total_s + other.total_s
        breakdown.extend(other)
        assert breakdown.total_s == pytest.approx(combined_total)

    def test_rows_in_path_order(self, breakdown):
        rows = breakdown.rows()
        assert rows[0] == ("compute", "tgl", pytest.approx(100.0))
        assert [name for _g, name, _ns in rows] == [
            "tgl", "mac_phy", "propagation", "mac_phy"]

    def test_add_chains(self):
        b = LatencyBreakdown().add("a", 1e-9).add("b", 2e-9)
        assert len(b) == 2

    def test_iteration(self, breakdown):
        assert all(isinstance(c, LatencyComponent) for c in breakdown)
