"""Unit tests for multi-hop circuit management."""

from __future__ import annotations

import pytest

from repro.errors import CircuitError
from repro.network.optical.circuits import CircuitManager
from repro.network.optical.switch import OpticalCircuitSwitch


@pytest.fixture
def manager() -> CircuitManager:
    switch = OpticalCircuitSwitch("sw0", port_count=48)
    mgr = CircuitManager(switch)
    mgr.attach_endpoint("cb0.cbn0", launch_dbm=-3.7)
    mgr.attach_endpoint("mb0.cbn0", launch_dbm=-3.7)
    return mgr


class TestEstablish:
    def test_single_hop_uses_two_ports(self, manager):
        circuit = manager.establish("cb0.cbn0", "mb0.cbn0", hops=1)
        assert circuit.hops == 1
        assert len(circuit.switch_ports) == 2
        assert manager.switch.ports_in_use == 2

    def test_eight_hops_use_loopbacks(self, manager):
        circuit = manager.establish("cb0.cbn0", "mb0.cbn0", hops=8)
        # 2 endpoints + 7 loopback pairs = 16 ports, 8 cross-connects.
        assert len(circuit.switch_ports) == 16
        assert manager.switch.cross_connect_count == 8

    def test_loss_grows_with_hops(self, manager):
        eight = manager.establish("cb0.cbn0", "mb0.cbn0", hops=8)
        received_8 = eight.link_ab.received_dbm
        manager.teardown(eight.circuit_id)
        six = manager.establish("cb0.cbn0", "mb0.cbn0", hops=6)
        assert six.link_ab.received_dbm > received_8

    def test_zero_hops_rejected(self, manager):
        with pytest.raises(CircuitError):
            manager.establish("cb0.cbn0", "mb0.cbn0", hops=0)

    def test_same_endpoint_rejected(self, manager):
        with pytest.raises(CircuitError):
            manager.establish("cb0.cbn0", "cb0.cbn0")

    def test_busy_endpoint_rejected(self, manager):
        manager.establish("cb0.cbn0", "mb0.cbn0")
        with pytest.raises(CircuitError, match="already in a circuit"):
            manager.establish("cb0.cbn0", "mb0.cbn0")

    def test_port_exhaustion_raises(self):
        switch = OpticalCircuitSwitch("small", port_count=6)
        manager = CircuitManager(switch)
        manager.attach_endpoint("a", -3.7)
        manager.attach_endpoint("b", -3.7)
        # 4 free ports left -> at most 2 loopbacks -> hops <= 3.
        with pytest.raises(CircuitError, match="loopback"):
            manager.establish("a", "b", hops=4)

    def test_unattached_endpoint_rejected(self, manager):
        with pytest.raises(CircuitError):
            manager.establish("ghost", "mb0.cbn0")

    def test_setup_time_is_switch_time(self, manager):
        circuit = manager.establish("cb0.cbn0", "mb0.cbn0")
        assert circuit.setup_time_s == manager.switch.switching_time_s

    def test_circuit_closes_at_paper_operating_point(self, manager):
        circuit = manager.establish("cb0.cbn0", "mb0.cbn0", hops=8)
        assert circuit.closes(1e-12)
        assert circuit.worst_ber <= 1e-12


class TestTeardown:
    def test_frees_all_ports(self, manager):
        circuit = manager.establish("cb0.cbn0", "mb0.cbn0", hops=4)
        manager.teardown(circuit.circuit_id)
        assert manager.switch.ports_in_use == 0
        assert not circuit.active

    def test_loopback_attachments_released(self, manager):
        free_before = len(manager.switch.free_attachment_ports())
        circuit = manager.establish("cb0.cbn0", "mb0.cbn0", hops=4)
        manager.teardown(circuit.circuit_id)
        assert len(manager.switch.free_attachment_ports()) == free_before

    def test_endpoints_stay_attached(self, manager):
        circuit = manager.establish("cb0.cbn0", "mb0.cbn0", hops=2)
        manager.teardown(circuit.circuit_id)
        assert manager.switch.port_of("cb0.cbn0") is not None
        # And reusable:
        manager.establish("cb0.cbn0", "mb0.cbn0", hops=2)

    def test_unknown_circuit_rejected(self, manager):
        with pytest.raises(CircuitError):
            manager.teardown("ghost")

    def test_double_teardown_rejected(self, manager):
        circuit = manager.establish("cb0.cbn0", "mb0.cbn0")
        manager.teardown(circuit.circuit_id)
        with pytest.raises(CircuitError):
            manager.teardown(circuit.circuit_id)


class TestQueries:
    def test_circuit_between(self, manager):
        circuit = manager.establish("cb0.cbn0", "mb0.cbn0")
        assert manager.circuit_between("mb0.cbn0", "cb0.cbn0") is circuit
        assert manager.circuit_between("cb0.cbn0", "ghost") is None

    def test_active_circuits(self, manager):
        assert manager.active_circuits == []
        circuit = manager.establish("cb0.cbn0", "mb0.cbn0")
        assert manager.active_circuits == [circuit]

    def test_launch_power_recorded(self, manager):
        assert manager.launch_power_dbm("cb0.cbn0") == -3.7
        with pytest.raises(CircuitError):
            manager.launch_power_dbm("ghost")
