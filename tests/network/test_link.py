"""Unit tests for optical link budgets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import LinkBudgetError
from repro.network.optical.ber import ReceiverModel
from repro.network.optical.link import (
    CONNECTOR_LOSS_DB,
    SWITCH_HOP_LOSS_DB,
    LinkBudget,
    OpticalLink,
)


def budget(**kwargs) -> LinkBudget:
    defaults = dict(launch_dbm=-3.7, switch_hops=8, connector_pairs=2,
                    fibre_length_m=10.0)
    defaults.update(kwargs)
    return LinkBudget(**defaults)


class TestLinkBudget:
    def test_hop_loss_is_one_db_each(self):
        assert budget().switch_loss_db == pytest.approx(8 * SWITCH_HOP_LOSS_DB)

    def test_connector_loss(self):
        assert budget(connector_pairs=3).connector_total_loss_db == \
            pytest.approx(3 * CONNECTOR_LOSS_DB)

    def test_fibre_loss_tiny_at_rack_scale(self):
        assert budget().fibre_loss_db < 0.01

    def test_total_is_sum(self):
        b = budget(extra_loss_db=0.5)
        assert b.total_loss_db == pytest.approx(
            b.switch_loss_db + b.connector_total_loss_db
            + b.fibre_loss_db + b.extra_loss_db)

    def test_received_power(self):
        b = budget()
        assert b.received_dbm == pytest.approx(-3.7 - b.total_loss_db)

    def test_more_hops_less_power(self):
        assert budget(switch_hops=8).received_dbm < \
            budget(switch_hops=6).received_dbm

    def test_propagation_delay(self):
        assert budget(fibre_length_m=10.0).propagation_delay_s == \
            pytest.approx(49e-9, rel=0.01)

    def test_itemized_covers_total(self):
        b = budget(extra_loss_db=1.0)
        assert sum(b.itemized().values()) == pytest.approx(b.total_loss_db)

    def test_negative_hops_rejected(self):
        with pytest.raises(LinkBudgetError):
            budget(switch_hops=-1)

    def test_negative_extra_rejected(self):
        with pytest.raises(LinkBudgetError):
            budget(extra_loss_db=-0.1)


class TestOpticalLink:
    def test_eight_hop_link_closes_at_target(self):
        link = OpticalLink("l8", budget(switch_hops=8, connector_pairs=9))
        assert link.closes(1e-12)

    def test_absurd_hops_do_not_close(self):
        link = OpticalLink("bad", budget(switch_hops=14))
        assert not link.closes(1e-12)

    def test_margin_positive_when_closing(self):
        link = OpticalLink("l6", budget(switch_hops=6))
        assert link.margin_db(1e-12) > 0

    def test_theoretical_ber_monotone_in_hops(self):
        six = OpticalLink("l6", budget(switch_hops=6))
        eight = OpticalLink("l8", budget(switch_hops=8))
        assert six.theoretical_ber < eight.theoretical_ber

    def test_measure_requires_rng_for_jitter(self):
        link = OpticalLink("l", budget())
        with pytest.raises(LinkBudgetError):
            link.measure_ber(power_jitter_db=0.2)

    def test_measure_with_jitter_varies(self):
        link = OpticalLink("l", budget())
        rng = np.random.default_rng(1)
        powers = {link.measure_ber(rng=rng, power_jitter_db=0.3)[0]
                  for _ in range(10)}
        assert len(powers) > 1

    def test_q_method_estimate_matches_model(self):
        receiver = ReceiverModel()
        link = OpticalLink("l", budget(), receiver)
        received, ber = link.estimate_ber_q_method()
        assert received == pytest.approx(link.received_dbm)
        assert ber == pytest.approx(receiver.ber(received))

    def test_custom_receiver_respected(self):
        tight = ReceiverModel(sensitivity_dbm=-10.0)
        link = OpticalLink("l", budget(switch_hops=8), tight)
        assert not link.closes(1e-12)
