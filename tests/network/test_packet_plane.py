"""Unit tests for the packet-switched plane: MAC/PHY, NI, switch, routing."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, RoutingError
from repro.hardware.bricks import ComputeBrick, MemoryBrick
from repro.network.packet.mac_phy import MacPhy, MacPhyTimings
from repro.network.packet.nic import (
    TRANSACTION_HEADER_BYTES,
    NetworkInterface,
    Packet,
    PacketKind,
)
from repro.network.packet.routing import PacketRouteProgrammer
from repro.network.packet.switch import OnBrickPacketSwitch
from repro.units import gbps, nanoseconds


class TestMacPhy:
    def test_fec_adds_over_100ns_per_direction(self):
        plain = MacPhy("m0")
        fec = MacPhy("m1", fec_enabled=True)
        assert fec.tx_latency_s() - plain.tx_latency_s() > nanoseconds(100)
        assert fec.rx_latency_s() - plain.rx_latency_s() > nanoseconds(100)

    def test_serialization_at_line_rate(self):
        mac = MacPhy("m0", line_rate_bps=gbps(10))
        assert mac.serialization_s(64) == pytest.approx(51.2e-9)

    def test_transmit_includes_serialization(self):
        mac = MacPhy("m0")
        total = mac.transmit_latency_s(64)
        assert total == pytest.approx(mac.tx_latency_s()
                                      + mac.serialization_s(64))

    def test_counters(self):
        mac = MacPhy("m0")
        mac.transmit_latency_s(64)
        mac.receive_latency_s()
        assert mac.frames_tx == 1
        assert mac.frames_rx == 1

    def test_negative_frame_rejected(self):
        with pytest.raises(ConfigurationError):
            MacPhy("m0").serialization_s(-1)

    def test_bad_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            MacPhy("m0", line_rate_bps=0)

    def test_custom_timings(self):
        timings = MacPhyTimings(tx_latency_s=1e-9, rx_latency_s=2e-9,
                                fec_latency_s=3e-9)
        mac = MacPhy("m0", timings=timings, fec_enabled=True)
        assert mac.tx_latency_s() == pytest.approx(4e-9)
        assert mac.fec_penalty_per_direction_s == pytest.approx(3e-9)


class TestNetworkInterface:
    def test_read_request_has_no_payload(self):
        ni = NetworkInterface("ni0")
        packet = ni.frame_request(False, "cb0", "mb0", 0x1000, 64)
        assert packet.kind is PacketKind.READ_REQUEST
        assert packet.payload_bytes == 0
        assert packet.frame_bytes == TRANSACTION_HEADER_BYTES

    def test_write_request_carries_payload(self):
        ni = NetworkInterface("ni0")
        packet = ni.frame_request(True, "cb0", "mb0", 0x1000, 64)
        assert packet.kind is PacketKind.WRITE_REQUEST
        assert packet.payload_bytes == 64
        assert packet.frame_bytes == TRANSACTION_HEADER_BYTES + 64

    def test_read_response_carries_data(self):
        ni = NetworkInterface("ni0")
        request = ni.frame_request(False, "cb0", "mb0", 0x0, 64)
        response = ni.frame_response(request, 64)
        assert response.kind is PacketKind.READ_RESPONSE
        assert response.payload_bytes == 64
        assert response.src_brick_id == "mb0"
        assert response.dst_brick_id == "cb0"

    def test_write_ack_is_empty(self):
        ni = NetworkInterface("ni0")
        request = ni.frame_request(True, "cb0", "mb0", 0x0, 64)
        ack = ni.frame_response(request, 64)
        assert ack.kind is PacketKind.WRITE_ACK
        assert ack.payload_bytes == 0

    def test_response_to_response_rejected(self):
        ni = NetworkInterface("ni0")
        request = ni.frame_request(False, "cb0", "mb0", 0x0, 64)
        response = ni.frame_response(request, 64)
        with pytest.raises(ConfigurationError):
            ni.frame_response(response, 64)

    def test_sequence_numbers_increase(self):
        ni = NetworkInterface("ni0")
        first = ni.frame_request(False, "a", "b", 0, 64)
        second = ni.frame_request(False, "a", "b", 0, 64)
        assert second.packet_id > first.packet_id
        assert ni.frames_built == 2

    def test_negative_payload_rejected(self):
        with pytest.raises(ConfigurationError):
            Packet(0, PacketKind.READ_REQUEST, "a", "b", 0, -1)


class TestOnBrickSwitch:
    def make_packet(self, dst="mb0"):
        return Packet(0, PacketKind.READ_REQUEST, "cb0", dst, 0, 0)

    def test_round_robin_over_ports(self):
        switch = OnBrickPacketSwitch("sw")
        switch.program_route("mb0", ["p0", "p1", "p2"])
        picks = [switch.forward(self.make_packet())[0] for _ in range(6)]
        assert picks == ["p0", "p1", "p2", "p0", "p1", "p2"]

    def test_unprogrammed_destination_raises(self):
        switch = OnBrickPacketSwitch("sw")
        with pytest.raises(RoutingError, match="lookup"):
            switch.forward(self.make_packet("ghost"))
        assert switch.lookup_failures == 1

    def test_route_replacement(self):
        switch = OnBrickPacketSwitch("sw")
        switch.program_route("mb0", ["p0"])
        switch.program_route("mb0", ["p9"])
        assert switch.route_ports("mb0") == ["p9"]

    def test_add_port_to_route(self):
        switch = OnBrickPacketSwitch("sw")
        switch.program_route("mb0", ["p0"])
        switch.add_port_to_route("mb0", "p1")
        assert switch.route_ports("mb0") == ["p0", "p1"]
        with pytest.raises(RoutingError):
            switch.add_port_to_route("mb0", "p0")

    def test_drop_route(self):
        switch = OnBrickPacketSwitch("sw")
        switch.program_route("mb0", ["p0"])
        switch.drop_route("mb0")
        assert switch.routed_destinations() == []
        with pytest.raises(RoutingError):
            switch.drop_route("mb0")

    def test_empty_route_rejected(self):
        switch = OnBrickPacketSwitch("sw")
        with pytest.raises(RoutingError):
            switch.program_route("mb0", [])

    def test_duplicate_ports_rejected(self):
        switch = OnBrickPacketSwitch("sw")
        with pytest.raises(RoutingError):
            switch.program_route("mb0", ["p0", "p0"])

    def test_forward_counts(self):
        switch = OnBrickPacketSwitch("sw")
        switch.program_route("mb0", ["p0"])
        switch.forward(self.make_packet())
        assert switch.packets_forwarded == 1


class TestRouteProgrammer:
    def test_connect_pair_programs_both_sides(self):
        programmer = PacketRouteProgrammer()
        compute, memory = ComputeBrick("cb0"), MemoryBrick("mb0")
        programmer.register(compute)
        programmer.register(memory)
        programmer.connect_pair(compute, memory, link_count=2)
        assert len(programmer.switch_of("cb0").route_ports("mb0")) == 2
        assert len(programmer.switch_of("mb0").route_ports("cb0")) == 2
        assert programmer.validate() == []

    def test_double_register_rejected(self):
        programmer = PacketRouteProgrammer()
        brick = ComputeBrick("cb0")
        programmer.register(brick)
        with pytest.raises(RoutingError):
            programmer.register(brick)

    def test_unknown_brick_rejected(self):
        with pytest.raises(RoutingError):
            PacketRouteProgrammer().switch_of("ghost")

    def test_port_exhaustion_detected(self):
        programmer = PacketRouteProgrammer()
        compute = ComputeBrick("cb0", pbn_ports=1)
        memory = MemoryBrick("mb0", pbn_ports=1)
        programmer.register(compute)
        programmer.register(memory)
        with pytest.raises(RoutingError, match="not enough PBN ports"):
            programmer.connect_pair(compute, memory, link_count=2)

    def test_disconnect_pair(self):
        programmer = PacketRouteProgrammer()
        compute, memory = ComputeBrick("cb0"), MemoryBrick("mb0")
        programmer.register(compute)
        programmer.register(memory)
        programmer.connect_pair(compute, memory)
        programmer.disconnect_pair(compute, memory)
        assert programmer.switch_of("cb0").routed_destinations() == []
        assert all(p.is_free for p in compute.packet_ports)

    def test_validate_flags_unwired_port(self):
        programmer = PacketRouteProgrammer()
        compute = ComputeBrick("cb0")
        programmer.register(compute)
        switch = programmer.switch_of("cb0")
        switch.program_route("mb0", [compute.packet_ports.free_ports[0].port_id])
        problems = programmer.validate()
        assert any("unwired" in p for p in problems)
