"""Unit tests for the SDM controller."""

from __future__ import annotations

import pytest

from repro.errors import PlacementError, ReservationError
from repro.hardware.bricks import ComputeBrick, MemoryBrick
from repro.network.optical.switch import OpticalCircuitSwitch
from repro.network.optical.topology import OpticalFabric
from repro.orchestration.registry import ResourceRegistry
from repro.orchestration.requests import VmAllocationRequest
from repro.orchestration.sdm_controller import SdmController
from repro.software.agent import SdmAgent
from repro.software.hypervisor import Hypervisor
from repro.software.kernel import BaremetalKernel
from repro.software.pages import DEFAULT_SECTION_BYTES
from repro.units import gib, mib


def build_controller(compute_count=1, memory_count=2, cbn_ports=8):
    switch = OpticalCircuitSwitch("sw", port_count=128)
    fabric = OpticalFabric(switch)
    registry = ResourceRegistry()
    for index in range(compute_count):
        brick = ComputeBrick(f"cb{index}", core_count=8,
                             local_memory_bytes=gib(4), cbn_ports=cbn_ports)
        kernel = BaremetalKernel(brick)
        registry.register_compute(brick, Hypervisor(kernel), SdmAgent(kernel))
        fabric.attach_brick(brick)
    for index in range(memory_count):
        brick = MemoryBrick(f"mb{index}", module_count=2,
                            module_bytes=gib(16), cbn_ports=cbn_ports)
        registry.register_memory(brick)
        fabric.attach_brick(brick)
    return SdmController(registry, fabric)


class TestAllocate:
    def test_ticket_is_complete(self):
        controller = build_controller()
        ticket = controller.allocate("cb0", "vm-0", gib(2))
        assert ticket.segment.size == gib(2)
        assert ticket.segment.compute_brick_id == "cb0"
        assert ticket.rmst_entry.size == gib(2)
        assert ticket.rmst_entry.remote_brick_id == \
            ticket.segment.memory_brick_id
        assert ticket.control_latency_s > 0

    def test_size_padded_to_alignment(self):
        controller = build_controller()
        ticket = controller.allocate("cb0", "vm-0", mib(100))
        assert ticket.segment.size == DEFAULT_SECTION_BYTES

    def test_circuit_established_and_reused(self):
        controller = build_controller()
        first = controller.allocate("cb0", "vm-0", gib(1))
        circuits_after_first = len(controller.fabric.active_circuits)
        second = controller.allocate("cb0", "vm-0", gib(1))
        assert len(controller.fabric.active_circuits) == circuits_after_first
        # Reuse is visible in the latency: no switching time on the 2nd.
        assert second.control_latency_s < first.control_latency_s

    def test_rmst_entry_window_matches_kernel_attach(self):
        controller = build_controller()
        ticket = controller.allocate("cb0", "vm-0", gib(1))
        agent = controller.registry.compute("cb0").agent
        agent.program_segment(ticket.rmst_entry)
        record, _latency = agent.kernel.attach_segment(ticket.segment)
        assert record.window_base == ticket.rmst_entry.base
        assert record.window_size == ticket.rmst_entry.size

    def test_capacity_exhaustion(self):
        controller = build_controller(memory_count=1)
        controller.allocate("cb0", "vm-0", gib(32))
        with pytest.raises(PlacementError):
            controller.allocate("cb0", "vm-0", gib(8))

    def test_power_on_adds_latency(self):
        controller = build_controller(memory_count=1)
        controller.registry.memory("mb0").brick.power_off()
        ticket = controller.allocate("cb0", "vm-0", gib(1))
        assert ticket.control_latency_s >= controller.timings.power_on_s

    def test_port_exhaustion_falls_back_to_other_brick(self):
        # One CBN port per brick: the first allocation claims mb0's only
        # port via cb0; a second compute brick must land on mb1.
        controller = build_controller(compute_count=2, memory_count=2,
                                      cbn_ports=1)
        first = controller.allocate("cb0", "vm-0", gib(1))
        second = controller.allocate("cb1", "vm-1", gib(1))
        assert second.segment.memory_brick_id != \
            first.segment.memory_brick_id

    def test_unreachable_everything_raises(self):
        controller = build_controller(compute_count=2, memory_count=1,
                                      cbn_ports=1)
        controller.allocate("cb0", "vm-0", gib(1))
        with pytest.raises(PlacementError, match="reachable"):
            controller.allocate("cb1", "vm-1", gib(1))

    def test_allocations_counted(self):
        controller = build_controller()
        controller.allocate("cb0", "vm-0", gib(1))
        assert controller.allocations == 1


class TestRelease:
    def test_release_returns_capacity(self):
        controller = build_controller(memory_count=1)
        ticket = controller.allocate("cb0", "vm-0", gib(32))
        controller.release(ticket.segment.segment_id)
        # All capacity is back.
        controller.allocate("cb0", "vm-1", gib(32))

    def test_release_tears_down_unreferenced_circuit(self):
        controller = build_controller()
        ticket = controller.allocate("cb0", "vm-0", gib(1))
        assert len(controller.fabric.active_circuits) == 1
        controller.release(ticket.segment.segment_id)
        assert controller.fabric.active_circuits == []

    def test_release_keeps_shared_circuit(self):
        controller = build_controller()
        first = controller.allocate("cb0", "vm-0", gib(1))
        controller.allocate("cb0", "vm-0", gib(1))
        controller.release(first.segment.segment_id)
        assert len(controller.fabric.active_circuits) == 1

    def test_release_unknown_rejected(self):
        with pytest.raises(ReservationError):
            build_controller().release("ghost")


class TestPlaceVm:
    def test_place_returns_brick_and_latency(self):
        controller = build_controller(compute_count=2)
        brick_id, latency = controller.place_vm(
            VmAllocationRequest("vm-0", vcpus=4, ram_bytes=gib(8)))
        assert brick_id in ("cb0", "cb1")
        assert latency >= controller.timings.reservation_s

    def test_no_cores_anywhere_raises(self):
        controller = build_controller(compute_count=1)
        with pytest.raises(PlacementError, match="free cores"):
            controller.place_vm(
                VmAllocationRequest("vm-0", vcpus=99, ram_bytes=gib(1)))

    def test_wakes_sleeping_brick(self):
        controller = build_controller(compute_count=1)
        controller.registry.compute("cb0").brick.power_off()
        _brick, latency = controller.place_vm(
            VmAllocationRequest("vm-0", vcpus=1, ram_bytes=gib(1)))
        assert latency >= controller.timings.power_on_s
        assert controller.registry.compute("cb0").brick.is_powered


class TestIntrospection:
    def test_live_segments_and_per_brick(self):
        controller = build_controller()
        ticket = controller.allocate("cb0", "vm-0", gib(1))
        assert controller.live_segments == [ticket.segment]
        on_brick = controller.segments_on(ticket.segment.memory_brick_id)
        assert on_brick == [ticket.segment]
        assert controller.segments_on("ghost") == []

    def test_circuit_utilization(self):
        controller = build_controller()
        controller.allocate("cb0", "vm-0", gib(1))
        controller.allocate("cb0", "vm-0", gib(1))
        (refs,) = controller.circuit_utilization().values()
        assert refs == 2

    def test_segment_record_lookup(self):
        controller = build_controller()
        ticket = controller.allocate("cb0", "vm-0", gib(1))
        record = controller.segment_record(ticket.segment.segment_id)
        assert record.segment is ticket.segment
        with pytest.raises(ReservationError):
            controller.segment_record("ghost")


class TestSegmentIndex:
    """The per-brick segment index stays in lockstep with the live
    segment table through allocate / release / relocate."""

    def _scan(self, controller, brick_id):
        """Brute-force reference: scan every live segment."""
        return [s.segment_id for s in controller.live_segments
                if s.memory_brick_id == brick_id]

    def _assert_index_matches(self, controller):
        bricks = {e.brick.brick_id
                  for e in controller.registry.memory_entries}
        for brick_id in bricks:
            indexed = [s.segment_id
                       for s in controller.segments_on(brick_id)]
            assert sorted(indexed) == sorted(
                self._scan(controller, brick_id))

    def test_index_tracks_allocate_release_relocate(self):
        controller = build_controller(memory_count=2)
        tickets = [controller.allocate("cb0", f"vm-{i}", gib(1))
                   for i in range(3)]
        self._assert_index_matches(controller)

        moved = tickets[0].segment
        target = "mb1" if moved.memory_brick_id == "mb0" else "mb0"
        controller.relocate_segment(moved.segment_id, target)
        self._assert_index_matches(controller)
        assert moved.segment_id in {
            s.segment_id for s in controller.segments_on(target)}

        controller.release(tickets[1].segment.segment_id)
        self._assert_index_matches(controller)

        for ticket in (tickets[0], tickets[2]):
            controller.release(ticket.segment.segment_id)
        assert controller.segments_on("mb0") == []
        assert controller.segments_on("mb1") == []

    def test_impacted_by_memory_brick_uses_index(self):
        controller = build_controller(memory_count=2)
        tickets = [controller.allocate("cb0", f"vm-{i}", gib(1))
                   for i in range(2)]
        brick = tickets[0].segment.memory_brick_id
        impacted = controller.impacted_by_memory_brick(brick)
        assert {s.segment_id for s in impacted} == {
            t.segment.segment_id for t in tickets
            if t.segment.memory_brick_id == brick}


class TestCriticalSectionSerialization:
    """Regression for the old docstring/behaviour mismatch: concurrent
    DES requests really do serialize on the reservation critical
    section, with queueing delay accounted on the simulated clock."""

    def test_concurrent_requests_serialize_with_queueing_delay(self):
        from repro.sim.control import ControlContext

        controller = build_controller()
        ctx = ControlContext()
        completions: dict[str, float] = {}

        def request(vm_id: str):
            ticket = yield from controller.allocate_process(
                ctx, "cb0", vm_id, gib(1))
            completions[vm_id] = ctx.sim.now
            return ticket

        first = ctx.sim.process(request("vm-a"))
        second = ctx.sim.process(request("vm-b"))
        ctx.sim.run()
        assert first.ok and second.ok

        # Both requests were submitted at t=0; the second could not
        # even start its reservation until the first finished, so it
        # completes a full service time later.
        service = first.value.control_latency_s
        assert completions["vm-a"] == pytest.approx(service)
        assert completions["vm-b"] == pytest.approx(
            completions["vm-a"] + second.value.control_latency_s)

        # The queueing delay is visible in the trace: the first waited
        # zero, the second waited one full service time.
        waits = {record.label: record.data
                 for record in ctx.tracer.records
                 if record.category == "sdm.reserve.wait"}
        assert waits["vm-a"] == pytest.approx(0.0)
        assert waits["vm-b"] == pytest.approx(service)

    def test_sync_wrapper_is_zero_contention(self):
        """The synchronous API runs on a private context: back-to-back
        calls report pure service time, never queueing delay."""
        controller = build_controller()
        first = controller.allocate("cb0", "vm-a", gib(1))
        second = controller.allocate("cb0", "vm-b", gib(1))
        # The second call reuses the first's circuit, so it is not
        # slower than the first — no contention surcharge exists.
        assert second.control_latency_s <= first.control_latency_s

    def test_release_process_also_serializes(self):
        from repro.sim.control import ControlContext

        controller = build_controller()
        ticket_a = controller.allocate("cb0", "vm-a", gib(1))
        ticket_b = controller.allocate("cb0", "vm-b", gib(1))
        ctx = ControlContext()
        done: list[tuple[str, float]] = []

        def release(segment_id: str):
            latency = yield from controller.release_process(ctx, segment_id)
            done.append((segment_id, ctx.sim.now))
            return latency

        ctx.sim.process(release(ticket_a.segment.segment_id))
        ctx.sim.process(release(ticket_b.segment.segment_id))
        ctx.sim.run()
        assert len(done) == 2
        # Strictly ordered, never overlapping: the second finishes a
        # full release after the first.
        assert done[1][1] > done[0][1]


class TestRelocateSegment:
    def test_relocation_moves_backing_bytes(self):
        controller = build_controller(memory_count=2)
        ticket = controller.allocate("cb0", "vm-0", gib(1))
        segment = ticket.segment
        source = segment.memory_brick_id
        target = "mb1" if source == "mb0" else "mb0"
        source_allocated = (
            controller.registry.memory(source).allocator.allocated_bytes)

        entry, latency = controller.relocate_segment(
            segment.segment_id, target)

        assert segment.memory_brick_id == target
        assert entry.remote_brick_id == target
        # The local window is untouched (no hotplug needed).
        assert entry.base == ticket.rmst_entry.base
        # Source space was freed, target space claimed.
        assert (controller.registry.memory(source).allocator.allocated_bytes
                == source_allocated - segment.size)
        assert (controller.registry.memory(target).allocator.allocated_bytes
                == segment.size)
        # The copy is the dominant cost: strictly more than control work.
        assert latency > controller.timings.reservation_s

    def test_relocation_reprograms_glue(self):
        controller = build_controller(memory_count=2)
        ticket = controller.allocate("cb0", "vm-0", gib(1))
        controller.registry.compute("cb0").agent.program_segment(
            ticket.rmst_entry)
        segment = ticket.segment
        target = "mb1" if segment.memory_brick_id == "mb0" else "mb0"
        rmst = controller.registry.compute("cb0").brick.rmst
        controller.relocate_segment(segment.segment_id, target)
        assert rmst.lookup(ticket.rmst_entry.base
                           ).remote_brick_id == target

    def test_relocate_to_same_brick_rejected(self):
        controller = build_controller()
        ticket = controller.allocate("cb0", "vm-0", gib(1))
        with pytest.raises(ReservationError, match="already lives"):
            controller.relocate_segment(
                ticket.segment.segment_id, ticket.segment.memory_brick_id)

    def test_relocate_unknown_segment_rejected(self):
        controller = build_controller()
        with pytest.raises(ReservationError, match="unknown segment"):
            controller.relocate_segment("ghost", "mb0")
