"""Unit tests for the resource registry and placement policies."""

from __future__ import annotations

import pytest

from repro.errors import OrchestrationError
from repro.hardware.bricks import ComputeBrick, MemoryBrick
from repro.hardware.power import PowerState
from repro.orchestration.placement import (
    FirstFitPolicy,
    PowerAwarePackingPolicy,
    SpreadPolicy,
)
from repro.orchestration.registry import (
    ComputeAvailability,
    MemoryAvailability,
    ResourceRegistry,
)
from repro.software.agent import SdmAgent
from repro.software.hypervisor import Hypervisor
from repro.software.kernel import BaremetalKernel
from repro.units import gib, mib


def register_compute(registry, brick_id="cb0", cores=8):
    brick = ComputeBrick(brick_id, core_count=cores,
                         local_memory_bytes=gib(4))
    kernel = BaremetalKernel(brick)
    hypervisor = Hypervisor(kernel)
    agent = SdmAgent(kernel)
    registry.register_compute(brick, hypervisor, agent)
    return brick, hypervisor


class TestRegistry:
    def test_register_and_lookup(self):
        registry = ResourceRegistry()
        brick, _ = register_compute(registry)
        memory = MemoryBrick("mb0")
        registry.register_memory(memory)
        assert registry.compute("cb0").brick is brick
        assert registry.memory("mb0").brick is memory

    def test_duplicate_registration_rejected(self):
        registry = ResourceRegistry()
        brick, _hyp = register_compute(registry)
        kernel = BaremetalKernel(brick)
        with pytest.raises(OrchestrationError):
            registry.register_compute(brick, Hypervisor(kernel),
                                      SdmAgent(kernel))

    def test_unknown_lookup_rejected(self):
        registry = ResourceRegistry()
        with pytest.raises(OrchestrationError):
            registry.compute("ghost")
        with pytest.raises(OrchestrationError):
            registry.memory("ghost")

    def test_compute_availability_tracks_vms(self):
        registry = ResourceRegistry()
        _brick, hypervisor = register_compute(registry)
        (snapshot,) = registry.compute_availability()
        assert snapshot.free_cores == 8
        assert not snapshot.hosts_vms
        hypervisor.spawn_vm("vm-0", 3, gib(1))
        (snapshot,) = registry.compute_availability()
        assert snapshot.free_cores == 5
        assert snapshot.hosts_vms

    def test_memory_availability_tracks_allocations(self):
        registry = ResourceRegistry(segment_alignment=mib(128))
        registry.register_memory(MemoryBrick("mb0"))
        entry = registry.memory("mb0")
        entry.allocator.allocate(gib(16))
        (snapshot,) = registry.memory_availability()
        assert snapshot.utilization == pytest.approx(0.25)
        assert snapshot.free_bytes == gib(48)

    def test_power_off_idle_bricks(self):
        registry = ResourceRegistry()
        _brick, hypervisor = register_compute(registry, "cb0")
        register_compute(registry, "cb1")
        registry.register_memory(MemoryBrick("mb0"))
        hypervisor.spawn_vm("vm-0", 1, gib(1))
        off = registry.power_off_idle_bricks()
        assert set(off) == {"cb1", "mb0"}
        assert registry.compute("cb0").brick.is_powered

    def test_ensure_powered(self):
        registry = ResourceRegistry()
        memory = MemoryBrick("mb0")
        registry.register_memory(memory)
        memory.power_off()
        assert registry.ensure_powered("mb0") is True
        assert memory.power_state is PowerState.IDLE
        assert registry.ensure_powered("mb0") is False
        with pytest.raises(OrchestrationError):
            registry.ensure_powered("ghost")


def mem(brick_id, free, span=None, utilization=0.0, powered=True,
        rack_id=""):
    return MemoryAvailability(brick_id=brick_id, free_bytes=free,
                              largest_span_bytes=span or free,
                              utilization=utilization, powered=powered,
                              rack_id=rack_id)


def comp(brick_id, cores, ram=gib(64), powered=True, hosts=False):
    return ComputeAvailability(brick_id=brick_id, free_cores=cores,
                               free_ram_bytes=ram, powered=powered,
                               hosts_vms=hosts)


class TestFirstFit:
    def test_takes_first_fitting(self):
        policy = FirstFitPolicy()
        picked = policy.select_memory_brick(
            [mem("a", gib(1)), mem("b", gib(8))], gib(4))
        assert picked == "b"

    def test_none_when_nothing_fits(self):
        policy = FirstFitPolicy()
        assert policy.select_memory_brick([mem("a", gib(1))], gib(4)) is None

    def test_compute_needs_both_dimensions(self):
        policy = FirstFitPolicy()
        candidates = [comp("a", cores=2, ram=gib(64)),
                      comp("b", cores=8, ram=gib(1)),
                      comp("c", cores=8, ram=gib(64))]
        assert policy.select_compute_brick(candidates, 4, gib(8)) == "c"


class TestPowerAwarePacking:
    def test_prefers_powered_bricks(self):
        policy = PowerAwarePackingPolicy()
        candidates = [mem("off", gib(64), powered=False),
                      mem("on", gib(64), powered=True)]
        assert policy.select_memory_brick(candidates, gib(1)) == "on"

    def test_packs_fullest_first(self):
        policy = PowerAwarePackingPolicy()
        candidates = [mem("empty", gib(64), utilization=0.0),
                      mem("half", gib(32), utilization=0.5)]
        assert policy.select_memory_brick(candidates, gib(1)) == "half"

    def test_wakes_sleeping_brick_as_last_resort(self):
        policy = PowerAwarePackingPolicy()
        candidates = [mem("off", gib(64), powered=False),
                      mem("on", gib(2), powered=True)]
        assert policy.select_memory_brick(candidates, gib(8)) == "off"

    def test_compute_colocates_with_vms(self):
        policy = PowerAwarePackingPolicy()
        candidates = [comp("idle", 8, hosts=False),
                      comp("busy", 8, hosts=True)]
        assert policy.select_compute_brick(candidates, 2, gib(1)) == "busy"

    def test_compute_tightest_core_fit(self):
        policy = PowerAwarePackingPolicy()
        candidates = [comp("loose", 8, hosts=True),
                      comp("tight", 3, hosts=True)]
        assert policy.select_compute_brick(candidates, 2, gib(1)) == "tight"

    def test_deterministic_tie_break(self):
        policy = PowerAwarePackingPolicy()
        candidates = [mem("b", gib(8)), mem("a", gib(8))]
        assert policy.select_memory_brick(candidates, gib(1)) == "a"

    def test_hot_brick_colocation(self):
        """The data-mover heat hint pulls new segments onto the brick
        already serving hot segments (within a distance tier)."""
        policy = PowerAwarePackingPolicy()
        candidates = [mem("cold", gib(32), utilization=0.5),
                      mem("warm", gib(64), utilization=0.0)]
        assert policy.select_memory_brick(candidates, gib(1)) == "cold"
        policy.note_hot_brick("warm")
        assert policy.select_memory_brick(candidates, gib(1)) == "warm"
        assert policy.hot_bricks == frozenset({"warm"})
        policy.clear_hot_bricks()
        assert policy.select_memory_brick(candidates, gib(1)) == "cold"

    def test_hot_colocation_can_be_disabled(self):
        policy = PowerAwarePackingPolicy(colocate_hot=False)
        policy.note_hot_brick("warm")
        candidates = [mem("cold", gib(32), utilization=0.5),
                      mem("warm", gib(64), utilization=0.0)]
        assert policy.select_memory_brick(candidates, gib(1)) == "cold"

    def test_hot_hint_never_overrides_locality(self):
        """A hot brick across the pod switch still loses to a local one."""
        policy = PowerAwarePackingPolicy()
        policy.note_hot_brick("far")
        near = mem("near", gib(32), rack_id="rack0")
        far = mem("far", gib(64), rack_id="rack1")
        assert policy.select_memory_brick(
            [near, far], gib(1), origin_rack_id="rack0") == "near"


class TestSpread:
    def test_most_free_first(self):
        policy = SpreadPolicy()
        candidates = [mem("full-ish", gib(8)), mem("empty", gib(64))]
        assert policy.select_memory_brick(candidates, gib(1)) == "empty"

    def test_compute_most_cores_first(self):
        policy = SpreadPolicy()
        candidates = [comp("tight", 3), comp("loose", 8)]
        assert policy.select_compute_brick(candidates, 2, gib(1)) == "loose"

    def test_opposite_of_packing(self):
        packing = PowerAwarePackingPolicy()
        spread = SpreadPolicy()
        candidates = [mem("fuller", gib(8), utilization=0.9),
                      mem("emptier", gib(56), utilization=0.1)]
        assert (packing.select_memory_brick(candidates, gib(1))
                != spread.select_memory_brick(candidates, gib(1)))
