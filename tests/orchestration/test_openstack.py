"""Unit tests for the OpenStack facade."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, OrchestrationError
from repro.orchestration.openstack import (
    DEFAULT_FLAVORS,
    Flavor,
    OpenStackFacade,
)
from repro.orchestration.requests import (
    MemoryAllocationRequest,
    VmAllocationRequest,
)
from repro.units import gib


class TestFlavors:
    def test_default_ladder(self):
        facade = OpenStackFacade(lambda request: request)
        names = [flavor.name for flavor in facade.flavors]
        assert names == ["large", "medium", "small", "xlarge"]

    def test_lookup(self):
        facade = OpenStackFacade(lambda request: request)
        assert facade.flavor("small").vcpus == 1
        with pytest.raises(ConfigurationError, match="unknown flavor"):
            facade.flavor("mega")

    def test_register_custom(self):
        facade = OpenStackFacade(lambda request: request)
        facade.register_flavor(Flavor("huge", vcpus=32, ram_bytes=gib(64)))
        assert facade.flavor("huge").ram_bytes == gib(64)

    def test_register_duplicate_rejected(self):
        facade = OpenStackFacade(lambda request: request)
        with pytest.raises(ConfigurationError):
            facade.register_flavor(DEFAULT_FLAVORS["small"])

    def test_invalid_flavor_rejected(self):
        with pytest.raises(ConfigurationError):
            Flavor("bad", vcpus=0, ram_bytes=gib(1))


class TestBoot:
    def test_boot_builds_request(self):
        received = []
        facade = OpenStackFacade(lambda request: received.append(request))
        facade.boot("medium", vm_id="my-vm")
        (request,) = received
        assert request == VmAllocationRequest("my-vm", 2, gib(4))

    def test_boot_auto_ids_unique(self):
        received = []
        facade = OpenStackFacade(lambda request: received.append(request))
        facade.boot("small")
        facade.boot("small")
        assert received[0].vm_id != received[1].vm_id
        assert facade.boots_requested == 2

    def test_boot_custom_shape(self):
        received = []
        facade = OpenStackFacade(lambda request: received.append(request))
        facade.boot_custom(vcpus=5, ram_bytes=gib(10))
        assert received[0].vcpus == 5

    def test_fulfiller_result_passed_through(self):
        facade = OpenStackFacade(lambda request: "booted:" + request.vm_id)
        assert facade.boot("small", vm_id="x") == "booted:x"


class TestRequestValidation:
    def test_vm_request_validation(self):
        with pytest.raises(OrchestrationError):
            VmAllocationRequest("vm", vcpus=0, ram_bytes=gib(1))
        with pytest.raises(OrchestrationError):
            VmAllocationRequest("vm", vcpus=1, ram_bytes=0)

    def test_memory_request_validation(self):
        with pytest.raises(OrchestrationError):
            MemoryAllocationRequest("cb0", "vm", size_bytes=0)
        request = MemoryAllocationRequest("cb0", "vm", size_bytes=gib(1))
        assert request.compute_brick_id == "cb0"
