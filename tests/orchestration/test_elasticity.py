"""Tests for the rack-level elastic memory manager."""

from __future__ import annotations

import pytest

from repro.core.builder import RackBuilder
from repro.errors import OrchestrationError
from repro.orchestration.elasticity import ElasticMemoryManager
from repro.orchestration.requests import VmAllocationRequest
from repro.units import gib


@pytest.fixture
def managed_rack():
    system = (RackBuilder("elastic")
              .with_compute_bricks(2, cores=16, local_memory=gib(4))
              .with_memory_bricks(2, modules=4, module_size=gib(16))
              .build())
    system.boot_vm(VmAllocationRequest("vm-a", vcpus=4, ram_bytes=gib(4)))
    system.boot_vm(VmAllocationRequest("vm-b", vcpus=4, ram_bytes=gib(4)))
    manager = ElasticMemoryManager(system, step_bytes=gib(1))
    manager.manage("vm-a")
    manager.manage("vm-b")
    return system, manager


class TestRegistration:
    def test_manage_and_release(self, managed_rack):
        _system, manager = managed_rack
        assert manager.managed_vms == ["vm-a", "vm-b"]
        manager.release("vm-a")
        assert manager.managed_vms == ["vm-b"]

    def test_double_manage_rejected(self, managed_rack):
        _system, manager = managed_rack
        with pytest.raises(OrchestrationError, match="already managed"):
            manager.manage("vm-a")

    def test_unmanaged_vm_rejected(self, managed_rack):
        _system, manager = managed_rack
        with pytest.raises(OrchestrationError, match="not managed"):
            manager.set_demand("ghost", gib(1))

    def test_release_deflates_balloon(self, managed_rack):
        system, manager = managed_rack
        manager.set_demand("vm-a", int(gib(3.5)))
        manager.rebalance()  # parks ~0.15 GiB in the balloon
        vm = system.hosting("vm-a").vm
        visible_before = vm.ram_bytes
        manager.release("vm-a")
        assert vm.ram_bytes >= visible_before
        assert vm.ballooned_bytes == 0


class TestRebalance:
    def test_grows_pressured_vm(self, managed_rack):
        system, manager = managed_rack
        manager.set_demand("vm-a", gib(7))
        report = manager.rebalance()
        assert report.count("scale_up") >= 3
        assert system.hosting("vm-a").vm.ram_bytes >= gib(7)
        assert report.unmet_demand_bytes == 0

    def test_reclaims_oversized_vm(self, managed_rack):
        system, manager = managed_rack
        manager.set_demand("vm-a", gib(8))
        manager.rebalance()
        manager.set_demand("vm-a", gib(2))
        report = manager.rebalance()
        assert report.count("scale_down") >= 3
        assert system.hosting("vm-a").vm.configured_ram_bytes <= gib(6)

    def test_balloon_handles_sub_step_surplus(self, managed_rack):
        system, manager = managed_rack
        # Demand slightly below current provisioning: balloon, not unplug.
        manager.set_demand("vm-a", int(gib(4) * 0.85))
        report = manager.rebalance()
        assert report.count("inflate") == 1
        assert report.count("scale_down") == 0
        assert system.hosting("vm-a").vm.ballooned_bytes > 0

    def test_deflate_is_the_fast_path_back(self, managed_rack):
        system, manager = managed_rack
        manager.set_demand("vm-a", int(gib(4) * 0.85))
        manager.rebalance()
        inflated = system.hosting("vm-a").vm.ballooned_bytes
        assert inflated > 0
        # Demand rises again: the ballooned pages return first.
        manager.set_demand("vm-a", int(gib(4) / 1.1))
        report = manager.rebalance()
        deflates = [a for a in report.actions if a.kind == "deflate"]
        assert deflates and deflates[0].latency_s < 0.05
        assert report.count("scale_up") == 0

    def test_reclaim_feeds_growth_in_same_pass(self):
        # A small pool: what vm-a gives back, vm-b can take.
        system = (RackBuilder("tight")
                  .with_compute_bricks(2, cores=8, local_memory=gib(2))
                  .with_memory_bricks(1, modules=1, module_size=gib(8))
                  .build())
        system.boot_vm(VmAllocationRequest("vm-a", vcpus=4,
                                           ram_bytes=gib(2)))
        system.boot_vm(VmAllocationRequest("vm-b", vcpus=4,
                                           ram_bytes=gib(2)))
        manager = ElasticMemoryManager(system, step_bytes=gib(1),
                                       headroom_fraction=0.0)
        manager.manage("vm-a")
        manager.manage("vm-b")
        # vm-a grabs most of the pool.
        manager.set_demand("vm-a", gib(9))
        manager.rebalance()
        # Shift: vm-a shrinks, vm-b needs the freed segments.
        manager.set_demand("vm-a", gib(2))
        manager.set_demand("vm-b", gib(8))
        report = manager.rebalance()
        assert report.count("scale_down") > 0
        assert report.count("scale_up") > 0
        assert system.hosting("vm-b").vm.ram_bytes >= gib(8)

    def test_unmet_demand_reported(self):
        system = (RackBuilder("tiny")
                  .with_compute_bricks(1, cores=8, local_memory=gib(2))
                  .with_memory_bricks(1, modules=1, module_size=gib(4))
                  .build())
        system.boot_vm(VmAllocationRequest("vm-a", vcpus=4,
                                           ram_bytes=gib(2)))
        manager = ElasticMemoryManager(system, step_bytes=gib(1),
                                       headroom_fraction=0.0)
        manager.manage("vm-a")
        manager.set_demand("vm-a", gib(32))
        report = manager.rebalance()
        assert report.unmet_demand_bytes > 0

    def test_noop_when_demand_matches(self, managed_rack):
        _system, manager = managed_rack
        # Demand equal to current visible memory (inside headroom band).
        manager.set_demand("vm-a", int(gib(4) / 1.1))
        manager.set_demand("vm-b", int(gib(4) / 1.1))
        report = manager.rebalance()
        assert report.actions == []

    def test_validation(self, managed_rack):
        system, manager = managed_rack
        with pytest.raises(OrchestrationError):
            ElasticMemoryManager(system, step_bytes=0)
        with pytest.raises(OrchestrationError):
            ElasticMemoryManager(system, headroom_fraction=1.0)
        with pytest.raises(OrchestrationError):
            manager.set_demand("vm-a", -1)
