"""Unit tests for the global placer (scoring, spill, claims ledger)."""

from __future__ import annotations

import pytest

from repro.errors import FederationError
from repro.federation import (
    GlobalPlacer,
    build_federation,
    free_capacity_score,
    fragmentation_score,
    queue_depth_score,
)
from repro.units import gib


def build_fed(pods=2, **kwargs):
    """A small federation: 1-rack pods of 16 GiB remote memory each."""
    kwargs.setdefault("racks_per_pod", 1)
    return build_federation(pods, **kwargs)


class TestHomePod:
    def test_home_is_stable_and_deterministic(self):
        fed = build_fed(3)
        homes = {f"tenant-{i}": fed.placer.home_pod(f"tenant-{i}")
                 for i in range(50)}
        again = build_fed(3)
        assert homes == {tenant: again.placer.home_pod(tenant)
                         for tenant in homes}

    def test_home_spreads_over_the_pod_set(self):
        fed = build_fed(3)
        homes = {fed.placer.home_pod(f"tenant-{i}") for i in range(100)}
        assert homes == set(fed.pods)

    def test_unbound_placer_rejects(self):
        placer = GlobalPlacer()
        with pytest.raises(FederationError):
            placer.home_pod("t0")


class TestSnapshots:
    def test_snapshot_reads_registry_and_plane(self):
        fed = build_fed(2)
        snapshot = fed.placer.snapshot("pod0")
        assert snapshot.pod_id == "pod0"
        assert snapshot.free_memory_bytes == gib(16)
        assert snapshot.free_cores == 2 * 16
        assert snapshot.queue_depth == 0
        assert snapshot.claimed_bytes == 0

    def test_claims_reduce_availability(self):
        fed = build_fed(2)
        claim = fed.placer.reserve("pod0", gib(4), 2)
        snapshot = fed.placer.snapshot("pod0")
        assert snapshot.claimed_bytes == gib(4)
        assert snapshot.available_bytes == gib(12)
        assert snapshot.available_cores == 30
        fed.placer.release(claim)
        assert fed.placer.snapshot("pod0").available_bytes == gib(16)

    def test_unknown_pod_rejected(self):
        fed = build_fed(2)
        with pytest.raises(FederationError):
            fed.placer.snapshot("pod9")


class TestPlacement:
    def test_home_wins_when_it_fits(self):
        fed = build_fed(2)
        assert fed.placer.place("t", gib(2), 1, home="pod1") == "pod1"

    def test_pinned_policy_never_spills(self):
        fed = build_fed(2, spill_policy="never")
        # Claim the whole home pod: pinned placement still returns it.
        fed.placer.reserve("pod0", gib(16), 1)
        assert fed.placer.place("t", gib(2), 1, home="pod0") == "pod0"

    def test_spill_on_capacity_exhaustion(self):
        fed = build_fed(3)
        fed.placer.reserve("pod0", gib(16), 1)
        assert fed.placer.place("t", gib(2), 1, home="pod0") != "pod0"

    def test_least_loaded_picks_best_score(self):
        fed = build_fed(3)
        fed.placer.reserve("pod0", gib(16), 1)   # home full
        fed.placer.reserve("pod1", gib(8), 1)    # half full
        assert fed.placer.place("t", gib(2), 1, home="pod0") == "pod2"

    def test_first_fit_picks_canonical_order(self):
        fed = build_fed(3, spill_policy="first-fit")
        fed.placer.reserve("pod0", gib(16), 1)
        fed.placer.reserve("pod1", gib(8), 1)    # still fits 2 GiB
        assert fed.placer.place("t", gib(2), 1, home="pod0") == "pod1"

    def test_nowhere_fits_falls_back_to_home(self):
        fed = build_fed(2)
        fed.placer.reserve("pod0", gib(16), 1)
        fed.placer.reserve("pod1", gib(16), 1)
        # The home pod's own admission pipeline records the rejection.
        assert fed.placer.place("t", gib(2), 1, home="pod0") == "pod0"

    def test_custom_scoring_is_honoured(self):
        # Score pods by id suffix, inverted: pod1 beats pod2.
        def backwards(snapshot):
            return -int(snapshot.pod_id[-1])
        fed = build_fed(3, scoring=backwards)
        fed.placer.reserve("pod0", gib(16), 1)
        assert fed.placer.place("t", gib(2), 1, home="pod0") == "pod1"

    def test_invalid_policy_rejected(self):
        with pytest.raises(FederationError):
            GlobalPlacer(spill_policy="random")


class TestScoringFunctions:
    def test_builtin_scores_orient_correctly(self):
        fed = build_fed(2)
        fed.placer.reserve("pod0", gib(8), 1)
        empty = fed.placer.snapshot("pod1")
        claimed = fed.placer.snapshot("pod0")
        assert free_capacity_score(empty) > free_capacity_score(claimed)
        assert fragmentation_score(empty) == 0.0
        assert queue_depth_score(empty) == 0.0


class TestClaimsLedger:
    def test_double_release_rejected(self):
        fed = build_fed(2)
        claim = fed.placer.reserve("pod0", gib(1), 1)
        fed.placer.commit(claim)
        with pytest.raises(FederationError):
            fed.placer.release(claim)

    def test_pending_claims_tracked(self):
        fed = build_fed(2)
        assert fed.placer.pending_claims == []
        claim = fed.placer.reserve("pod1", gib(1), 1)
        assert fed.placer.pending_claims == [claim]
        fed.placer.commit(claim)
        assert fed.placer.pending_claims == []
