"""Unit tests for the global placer (scoring, spill, claims ledger)."""

from __future__ import annotations

import pytest

from repro.errors import FederationError
from repro.federation import (
    GlobalPlacer,
    build_federation,
    free_capacity_score,
    fragmentation_score,
    queue_depth_score,
)
from repro.units import gib


def build_fed(pods=2, **kwargs):
    """A small federation: 1-rack pods of 16 GiB remote memory each."""
    kwargs.setdefault("racks_per_pod", 1)
    return build_federation(pods, **kwargs)


class TestHomePod:
    def test_home_is_stable_and_deterministic(self):
        fed = build_fed(3)
        homes = {f"tenant-{i}": fed.placer.home_pod(f"tenant-{i}")
                 for i in range(50)}
        again = build_fed(3)
        assert homes == {tenant: again.placer.home_pod(tenant)
                         for tenant in homes}

    def test_home_spreads_over_the_pod_set(self):
        fed = build_fed(3)
        homes = {fed.placer.home_pod(f"tenant-{i}") for i in range(100)}
        assert homes == set(fed.pods)

    def test_unbound_placer_rejects(self):
        placer = GlobalPlacer()
        with pytest.raises(FederationError):
            placer.home_pod("t0")


class TestSnapshots:
    def test_snapshot_reads_registry_and_plane(self):
        fed = build_fed(2)
        snapshot = fed.placer.snapshot("pod0")
        assert snapshot.pod_id == "pod0"
        assert snapshot.free_memory_bytes == gib(16)
        assert snapshot.free_cores == 2 * 16
        assert snapshot.queue_depth == 0
        assert snapshot.claimed_bytes == 0

    def test_claims_reduce_availability(self):
        fed = build_fed(2)
        claim = fed.placer.reserve("pod0", gib(4), 2)
        snapshot = fed.placer.snapshot("pod0")
        assert snapshot.claimed_bytes == gib(4)
        assert snapshot.available_bytes == gib(12)
        assert snapshot.available_cores == 30
        fed.placer.release(claim)
        assert fed.placer.snapshot("pod0").available_bytes == gib(16)

    def test_unknown_pod_rejected(self):
        fed = build_fed(2)
        with pytest.raises(FederationError):
            fed.placer.snapshot("pod9")


class TestPlacement:
    def test_home_wins_when_it_fits(self):
        fed = build_fed(2)
        assert fed.placer.place("t", gib(2), 1, home="pod1") == "pod1"

    def test_pinned_policy_never_spills(self):
        fed = build_fed(2, spill_policy="never")
        # Claim the whole home pod: pinned placement still returns it.
        fed.placer.reserve("pod0", gib(16), 1)
        assert fed.placer.place("t", gib(2), 1, home="pod0") == "pod0"

    def test_spill_on_capacity_exhaustion(self):
        fed = build_fed(3)
        fed.placer.reserve("pod0", gib(16), 1)
        assert fed.placer.place("t", gib(2), 1, home="pod0") != "pod0"

    def test_least_loaded_picks_best_score(self):
        fed = build_fed(3)
        fed.placer.reserve("pod0", gib(16), 1)   # home full
        fed.placer.reserve("pod1", gib(8), 1)    # half full
        assert fed.placer.place("t", gib(2), 1, home="pod0") == "pod2"

    def test_first_fit_picks_canonical_order(self):
        fed = build_fed(3, spill_policy="first-fit")
        fed.placer.reserve("pod0", gib(16), 1)
        fed.placer.reserve("pod1", gib(8), 1)    # still fits 2 GiB
        assert fed.placer.place("t", gib(2), 1, home="pod0") == "pod1"

    def test_nowhere_fits_falls_back_to_home(self):
        fed = build_fed(2)
        fed.placer.reserve("pod0", gib(16), 1)
        fed.placer.reserve("pod1", gib(16), 1)
        # The home pod's own admission pipeline records the rejection.
        assert fed.placer.place("t", gib(2), 1, home="pod0") == "pod0"

    def test_custom_scoring_is_honoured(self):
        # Score pods by id suffix, inverted: pod1 beats pod2.
        def backwards(snapshot):
            return -int(snapshot.pod_id[-1])
        fed = build_fed(3, scoring=backwards)
        fed.placer.reserve("pod0", gib(16), 1)
        assert fed.placer.place("t", gib(2), 1, home="pod0") == "pod1"

    def test_invalid_policy_rejected(self):
        with pytest.raises(FederationError):
            GlobalPlacer(spill_policy="random")


class TestScoringFunctions:
    def test_builtin_scores_orient_correctly(self):
        fed = build_fed(2)
        fed.placer.reserve("pod0", gib(8), 1)
        empty = fed.placer.snapshot("pod1")
        claimed = fed.placer.snapshot("pod0")
        assert free_capacity_score(empty) > free_capacity_score(claimed)
        assert fragmentation_score(empty) == 0.0
        assert queue_depth_score(empty) == 0.0


class TestLivenessAndReadmission:
    def commit_tenant(self, fed, tenant_id, pod_id, ram=gib(2)):
        claim = fed.placer.reserve(pod_id, ram, 1, tenant_id=tenant_id)
        fed.placer.commit(claim)
        return claim

    def test_dead_pods_leave_the_spill_pool_but_not_the_hash(self):
        fed = build_fed(3)
        homes = {f"t{i}": fed.placer.home_pod(f"t{i}")
                 for i in range(30)}
        fed.fail_pod("pod1")
        assert fed.placer.live_pod_ids == ["pod0", "pod2"]
        assert fed.placer.place("t", gib(2), 1, home="pod1") != "pod1"
        # Other tenants' home mapping never shifts on a pod loss.
        assert homes == {t: fed.placer.home_pod(t) for t in homes}
        fed.restore_pod("pod1")
        assert fed.placer.pod_alive("pod1")

    def test_readmission_picks_the_best_surviving_pod(self):
        fed = build_fed(3)
        fed.fail_pod("pod0")
        fed.placer.reserve("pod1", gib(8), 1)
        assert fed.placer.place_for_readmission(
            "t0", gib(2), 1) == "pod2"

    def test_readmission_fails_when_no_survivor_fits(self):
        fed = build_fed(2)
        fed.fail_pod("pod0")
        fed.placer.reserve("pod1", gib(16), 1)
        assert fed.placer.place_for_readmission("t0", gib(2), 1) is None

    def test_anti_affinity_spreads_a_group_across_pods(self):
        groups = {"t0": "db", "t1": "db", "t2": "db"}
        fed = build_fed(3, anti_affinity=lambda t: groups.get(t, ""))
        self.commit_tenant(fed, "t0", "pod0")
        placed = fed.placer.place("t1", gib(2), 1, home="pod0")
        assert placed != "pod0"
        self.commit_tenant(fed, "t1", placed)
        third = fed.placer.place("t2", gib(2), 1, home="pod0")
        assert third not in {"pod0", placed}

    def test_anti_affinity_is_soft_under_exhaustion(self):
        groups = {"t0": "db", "t1": "db"}
        fed = build_fed(2, anti_affinity=lambda t: groups.get(t, ""))
        self.commit_tenant(fed, "t0", "pod0")
        fed.placer.reserve("pod1", gib(16), 1)  # conflict-free pod full
        # Co-location beats rejection when nothing clean fits.
        assert fed.placer.place("t1", gib(2), 1, home="pod0") == "pod0"

    def test_readmission_prefers_anti_affinity_clean_pods(self):
        groups = {"t0": "db", "t1": "db"}
        fed = build_fed(3, anti_affinity=lambda t: groups.get(t, ""))
        self.commit_tenant(fed, "t0", "pod1")
        self.commit_tenant(fed, "t1", "pod0")
        fed.fail_pod("pod0")
        # pod1 hosts the group-mate: the clean survivor wins even
        # though both fit.
        assert fed.placer.place_for_readmission(
            "t1", gib(2), 1) == "pod2"

    def test_ledger_tracks_committed_tenants(self):
        fed = build_fed(2)
        claim = self.commit_tenant(fed, "t0", "pod0")
        assert fed.placer.ledger_claim("t0") is claim
        assert fed.placer.ledger_for_pod("pod0") == [claim]
        assert fed.placer.ledger_for_pod("pod1") == []
        # A later commit supersedes; forget drops.
        moved = self.commit_tenant(fed, "t0", "pod1")
        assert fed.placer.ledger_claim("t0") is moved
        assert fed.placer.forget("t0") is moved
        assert fed.placer.ledger_claim("t0") is None
        assert fed.placer.forget("t0") is None


class TestClaimsLedger:
    def test_double_release_rejected(self):
        fed = build_fed(2)
        claim = fed.placer.reserve("pod0", gib(1), 1)
        fed.placer.commit(claim)
        with pytest.raises(FederationError):
            fed.placer.release(claim)

    def test_pending_claims_tracked(self):
        fed = build_fed(2)
        assert fed.placer.pending_claims == []
        claim = fed.placer.reserve("pod1", gib(1), 1)
        assert fed.placer.pending_claims == [claim]
        fed.placer.commit(claim)
        assert fed.placer.pending_claims == []
