"""Replica groups and anti-affinity placement.

Satellite of the maintenance PR: ``with_replica_groups`` stamps every
*N* consecutive tenants of a trace with a shared ``~gNNNN`` suffix,
``replica_group_of`` recovers the group key, and the GlobalPlacer's
anti-affinity keeps group members on distinct pods — so a correlated
failure-domain outage (always scoped to one pod) can never take every
replica of a group down at once.
"""

from __future__ import annotations

import pytest

from repro.cluster.trace import (
    poisson_trace,
    replica_group_of,
    with_replica_groups,
)
from repro.errors import ConfigurationError
from repro.faults import (
    FaultInjector,
    pod_network_domains,
    rack_power_domains,
)
from repro.federation import build_federation
from repro.orchestration.requests import VmAllocationRequest
from repro.units import gib


class TestTraceGrouping:
    def test_ids_gain_the_group_suffix_in_arrival_order(self):
        trace = poisson_trace(6, 5.0, seed=3, name="rg")
        grouped = with_replica_groups(trace, 2)
        suffixes = [spec.tenant_id.rpartition("~g")[2]
                    for spec in grouped.tenants]
        assert suffixes == ["0000", "0000", "0001", "0001",
                            "0002", "0002"]
        # Same arrivals and shapes — only the ids change.
        assert [s.arrival_s for s in grouped.tenants] == \
            [s.arrival_s for s in trace.tenants]
        assert [s.ram_bytes for s in grouped.tenants] == \
            [s.ram_bytes for s in trace.tenants]
        assert grouped.name == f"{trace.name}-g2"

    def test_replica_group_of_inverts_the_suffix(self):
        trace = with_replica_groups(poisson_trace(4, 5.0, seed=3,
                                                  name="rg"), 2)
        groups = {replica_group_of(s.tenant_id)
                  for s in trace.tenants}
        assert groups == {"~g0000", "~g0001"}
        assert replica_group_of("plain-tenant") == ""
        assert replica_group_of("odd~gsuffix") == ""
        assert replica_group_of("~g0001") == ""

    def test_group_size_is_validated(self):
        trace = poisson_trace(4, 5.0, seed=3, name="rg")
        with pytest.raises(ConfigurationError):
            with_replica_groups(trace, 0)


def boot_grouped(fed, tenant_id, home="pod0", ram_bytes=gib(2)):
    """Admit one tenant through the placer + plane, returning its pod."""
    pod_id = fed.placer.place(tenant_id, ram_bytes, 1, home=home)
    assert pod_id is not None
    request = fed.pods[pod_id].plane.submit(
        "boot", tenant_id,
        request=VmAllocationRequest(vm_id=tenant_id, vcpus=1,
                                    ram_bytes=ram_bytes))
    fed._tenant_pod[tenant_id] = pod_id
    fed.sim.run()
    assert request.record.ok, request.record.note
    claim = fed.placer.reserve(pod_id, ram_bytes, 1,
                               tenant_id=tenant_id)
    fed.placer.commit(claim)
    return pod_id


class TestAntiAffinityPlacement:
    def test_group_members_land_on_distinct_pods(self):
        fed = build_federation(3, racks_per_pod=2,
                               anti_affinity=replica_group_of)
        placements: dict[str, set] = {}
        for group in range(3):
            for replica in ("a", "b"):
                tenant_id = f"{replica}~g{group:04d}"
                pod_id = boot_grouped(fed, tenant_id)
                placements.setdefault(f"~g{group:04d}",
                                      set()).add(pod_id)
        for group, pods in placements.items():
            assert len(pods) == 2, (group, pods)

    def test_no_single_domain_outage_takes_a_whole_group(self):
        fed = build_federation(3, racks_per_pod=2,
                               anti_affinity=replica_group_of)
        tenants = {}
        for group in range(3):
            for replica in ("a", "b"):
                tenant_id = f"{replica}~g{group:04d}"
                tenants[tenant_id] = boot_grouped(fed, tenant_id)
        domains = (rack_power_domains(fed) + pod_network_domains(fed))
        # Every domain is scoped to one pod, and no pod hosts two
        # members of a group — so no domain can cover a whole group.
        for domain in domains:
            pods_hit = {target.partition(":")[0]
                        for _, target in domain.members}
            assert len(pods_hit) == 1
            hit = pods_hit.pop()
            for group in range(3):
                survivors = [t for t, pod in tenants.items()
                             if replica_group_of(t) == f"~g{group:04d}"
                             and pod != hit]
                assert survivors, (domain.name, group)
        # And firing one for real leaves every group with a live pod.
        injector = FaultInjector(
            fed, classes=(), self_heal=False,
            domains=pod_network_domains(fed)).install()
        hot_pod = max(set(tenants.values()),
                      key=lambda p: sum(1 for v in tenants.values()
                                        if v == p))
        injector.fire_domain(f"net.{hot_pod}", repair_after_s=5.0,
                             scripted=True)
        for group in range(3):
            members = [t for t in tenants
                       if replica_group_of(t) == f"~g{group:04d}"]
            assert any(tenants[t] != hot_pod for t in members)


class TestExperimentAxis:
    def test_replica_groups_sweep_places_groups_apart(self):
        from repro.experiments.federation import run_federation
        result = run_federation(pod_counts=(3,), arrival_rates_hz=(5,),
                                tenant_count=30, seed=2018,
                                spill_policy="least-loaded",
                                replica_groups=2)
        cell = result.cell(3, 5.0, "least-loaded")
        assert cell.admitted + cell.rejected == 30

    def test_replica_groups_validation(self):
        from repro.experiments.federation import run_federation
        with pytest.raises(ConfigurationError, match="replica"):
            run_federation(replica_groups=1)
        with pytest.raises(ConfigurationError, match="serial"):
            run_federation(replica_groups=2, workers=2)
