"""Inter-pod migration: commit, rollback, conservation, FIFO.

Mirrors the cross-shard suite (``tests/cluster/test_sharding.py``) one
tier up: the two-phase reserve must never strand or double-book
capacity on either pod, whatever interleaving the shared clock deals —
including the hypothesis conservation property over concurrent
migrations — and per-tenant FIFO must survive pod reassignment.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.builder import PodBuilder
from repro.errors import FederationError
from repro.federation import FederationController, build_federation
from repro.orchestration.requests import VmAllocationRequest
from repro.units import gib, mib


def build_fed(pods=2, **kwargs):
    kwargs.setdefault("racks_per_pod", 1)
    return build_federation(pods, **kwargs)


def boot_tenant(fed, tenant_id, pod_id, ram_bytes=gib(2), vcpus=1):
    request = fed.pods[pod_id].plane.submit(
        "boot", tenant_id,
        request=VmAllocationRequest(vm_id=tenant_id, vcpus=vcpus,
                                    ram_bytes=ram_bytes))
    fed._tenant_pod[tenant_id] = pod_id
    fed.sim.run()
    assert request.record.ok, request.record.note
    return request


def run_migration(fed, tenant_id, target_pod_id):
    """Drive one migration process to completion; returns the outcome."""
    holder = {}

    def driver():
        outcome = yield from fed.migrate_tenant_process(
            tenant_id, target_pod_id)
        holder["outcome"] = outcome

    fed.sim.process(driver())
    fed.sim.run()
    return holder["outcome"]


def pool_consistent(fed):
    """Allocated bytes == live segment bytes on every pod; no claims."""
    for pod in fed.pods.values():
        entries = pod.system.sdm.registry.memory_entries
        allocated = sum(e.allocator.allocated_bytes for e in entries)
        live = sum(s.size for s in pod.system.sdm.live_segments)
        assert allocated == live, pod.pod_id
        for entry in entries:
            entry.allocator.check_invariants()
        holds = getattr(pod.system.sdm, "pending_holds", [])
        assert holds == []
    assert fed.placer.pending_claims == []


class TestCommit:
    def test_tenant_moves_and_source_is_released(self):
        fed = build_fed(2)
        boot_tenant(fed, "t0", "pod0")
        outcome = run_migration(fed, "t0", "pod1")
        assert outcome.committed
        assert outcome.bytes_copied == gib(2)
        assert outcome.latency_s > 0
        assert fed.pod_of("t0") == "pod1"
        assert fed.pods["pod0"].system.vms == []
        assert [v.vm_id for v in fed.pods["pod1"].system.vms] == ["t0"]
        # Source pool fully reclaimed, target holds the footprint.
        assert all(e.allocator.allocated_bytes == 0
                   for e in fed.pods["pod0"].system.sdm.registry
                   .memory_entries)
        pool_consistent(fed)
        assert fed.stats.migrations == 1
        assert fed.stats.bytes_migrated == gib(2)

    def test_runtime_growth_travels_with_the_tenant(self):
        fed = build_fed(2)
        boot_tenant(fed, "t0", "pod0")
        grow = fed.submit("scale_up", "t0", size_bytes=gib(1))
        fed.sim.run()
        assert grow.record.ok
        assert fed.tenant_footprint("t0") == gib(3)
        outcome = run_migration(fed, "t0", "pod1")
        assert outcome.committed
        assert outcome.bytes_copied == gib(3)
        # The re-homed guest keeps its grown footprint.
        assert fed.tenant_footprint("t0") == gib(3)
        pool_consistent(fed)

    def test_claim_committed_at_boot_not_held_through_copy(self):
        # A slow inter-pod link stretches the copy window; during it
        # the target's registry already carries the footprint, so the
        # ledger claim must be gone — otherwise concurrent placements
        # would count the bytes twice and spill spuriously.
        fed = build_federation(2, racks_per_pod=1,
                               interpod_link_bps=gib(2) * 8 / 10.0)
        boot_tenant(fed, "t0", "pod0")
        probes = {}

        def prober():
            while "t0" not in fed._moving:
                yield fed.sim.timeout(0.05)
            # Deep inside the move (the copy alone takes ~10 s).
            yield fed.sim.timeout(5.0)
            assert "t0" in fed._moving
            probes["claims"] = list(fed.placer.pending_claims)
            probes["target_claimed"] = fed.placer.snapshot(
                "pod1").claimed_bytes

        fed.sim.process(prober())
        outcome = run_migration(fed, "t0", "pod1")
        assert outcome.committed
        assert probes["claims"] == []
        assert probes["target_claimed"] == 0
        pool_consistent(fed)

    def test_migration_waits_for_inflight_tenant_work(self):
        fed = build_fed(2)
        boot_tenant(fed, "t0", "pod0")
        # Submit work and immediately start the migration: the move
        # must not copy until the scale-up has executed.
        grow = fed.submit("scale_up", "t0", size_bytes=gib(1))
        outcome = run_migration(fed, "t0", "pod1")
        assert grow.record.ok
        assert outcome.committed
        assert outcome.bytes_copied == gib(3)  # includes the scale-up
        pool_consistent(fed)


class TestRollback:
    def _asymmetric_fed(self):
        """pod0 roomy, pod1 too small to take a 2 GiB tenant."""
        big = (PodBuilder("pod0").with_racks(1)
               .with_compute_bricks(2, cores=16, local_memory=gib(1))
               .with_memory_bricks(2, modules=2, module_size=gib(4))
               .with_section_size(mib(256))
               .with_controller_shards(None).build())
        small = (PodBuilder("pod1").with_racks(1)
                 .with_compute_bricks(1, cores=16, local_memory=mib(256))
                 .with_memory_bricks(1, modules=1, module_size=mib(512))
                 .with_section_size(mib(256))
                 .with_controller_shards(None).build())
        return FederationController([big, small])

    def test_target_rejection_rolls_back(self):
        fed = self._asymmetric_fed()
        boot_tenant(fed, "t0", "pod0")
        source_allocated = sum(
            e.allocator.allocated_bytes
            for e in fed.pods["pod0"].system.sdm.registry.memory_entries)
        outcome = run_migration(fed, "t0", "pod1")
        assert not outcome.committed
        assert "rejected" in outcome.note
        # The tenant never moved and nothing was stranded anywhere.
        assert fed.pod_of("t0") == "pod0"
        assert fed.pods["pod1"].system.vms == []
        assert sum(
            e.allocator.allocated_bytes
            for e in fed.pods["pod0"].system.sdm.registry.memory_entries
        ) == source_allocated
        assert all(e.allocator.allocated_bytes == 0
                   for e in fed.pods["pod1"].system.sdm.registry
                   .memory_entries)
        pool_consistent(fed)
        assert fed.stats.migration_rollbacks == 1
        assert fed.stats.migrations == 0

    def test_departed_tenant_is_a_noop(self):
        fed = build_fed(2)
        boot_tenant(fed, "t0", "pod0")
        depart = fed.submit("depart", "t0")
        # Start the migration in the same scheduling round as the
        # depart: by the time the move drains the tenant's tail, the
        # VM is gone and the move must back off without touching pod1.
        outcome = run_migration(fed, "t0", "pod1")
        assert depart.record.ok
        assert not outcome.committed
        assert "departed" in outcome.note
        assert fed.stats.migration_rollbacks == 0
        pool_consistent(fed)

    def test_invalid_targets_rejected(self):
        fed = build_fed(2)
        boot_tenant(fed, "t0", "pod0")

        def bad(target):
            def driver():
                yield from fed.migrate_tenant_process("t0", target)
            fed.sim.process(driver())
            with pytest.raises(FederationError):
                fed.sim.run()

        bad("pod9")   # unknown pod
        bad("pod0")   # already home


class TestFifoAcrossReassignment:
    def test_requests_around_a_move_execute_in_order(self):
        fed = build_fed(2)
        boot_tenant(fed, "t0", "pod0")
        order = []

        def client():
            first = yield from fed.submit_process(
                "scale_up", "t0", size_bytes=gib(1))
            yield first.done
            order.append(("first", fed.pod_of("t0"), first.record.ok))
            # A move is racing us; this submission must wait it out and
            # land on the tenant's *final* pod, after the first op.
            second = yield from fed.submit_process(
                "scale_up", "t0", size_bytes=gib(1))
            yield second.done
            order.append(("second", fed.pod_of("t0"), second.record.ok))

        def mover():
            yield fed.sim.timeout(0.001)
            yield from fed.migrate_tenant_process("t0", "pod1")

        fed.sim.process(client())
        fed.sim.process(mover())
        fed.sim.run()
        assert [(label, ok) for label, _pod, ok in order] == [
            ("first", True), ("second", True)]
        # The move happened between the two operations: the second one
        # executed on the new pod, after re-homing.
        assert fed.pod_of("t0") == "pod1"
        assert order[1][1] == "pod1"
        assert any(r.kind == "scale_up" and r.ok
                   for r in fed.pods["pod1"].plane.stats.records)
        # Same-tenant FIFO at the record level: the second scale_up
        # started only after the first executed.
        records = [r for pod in fed.pods.values()
                   for r in pod.plane.stats.records
                   if r.kind == "scale_up"]
        assert len(records) == 2
        first, second = sorted(records, key=lambda r: r.submitted_s)
        assert second.started_s >= first.started_s
        pool_consistent(fed)


class TestConservationProperty:
    """Concurrent inter-pod migrations conserve allocated bytes."""

    @settings(max_examples=15, deadline=None)
    @given(st.lists(
        st.tuples(st.integers(min_value=0, max_value=1),   # home pod
                  st.sampled_from([gib(1), gib(2), gib(3)]),  # footprint
                  st.booleans()),                          # migrate it?
        min_size=1, max_size=6))
    def test_total_allocated_bytes_conserved(self, tenants):
        fed = build_fed(2)
        for index, (home, size, _move) in enumerate(tenants):
            boot_tenant(fed, f"t{index}", f"pod{home}", ram_bytes=size)
        footprint_before = sum(
            fed.tenant_footprint(f"t{index}")
            for index in range(len(tenants)))
        assert footprint_before == sum(size for _h, size, _m in tenants)

        # Fire every requested migration concurrently on one clock;
        # some will roll back (target full) — that must conserve too.
        for index, (home, _size, move) in enumerate(tenants):
            if move:
                def driver(tenant=f"t{index}", target=f"pod{1 - home}"):
                    yield from fed.migrate_tenant_process(tenant, target)
                fed.sim.process(driver())
        fed.sim.run()

        # Inter-pod migration leaves total allocated bytes conserved.
        footprint_after = sum(
            fed.tenant_footprint(f"t{index}")
            for index in range(len(tenants)))
        assert footprint_after == footprint_before
        assert len(fed._tenant_pod) == len(tenants)
        pool_consistent(fed)
        assert fed.stats.migrations + fed.stats.migration_rollbacks == sum(
            1 for _h, _s, move in tenants if move)
