"""Federation controller: topology, routing, spill, traces, rebalancer."""

from __future__ import annotations

import pytest

from repro.cluster.trace import TenantSpec, TenantTrace, poisson_trace
from repro.errors import FederationError
from repro.federation import (
    FederationController,
    FederationRebalancer,
    build_federation,
)
from repro.orchestration.requests import VmAllocationRequest
from repro.orchestration.sharding import ShardedSdmController
from repro.units import gib


def build_fed(pods=2, **kwargs):
    kwargs.setdefault("racks_per_pod", 1)
    return build_federation(pods, **kwargs)


def boot_tenant(fed, tenant_id, pod_id, ram_bytes=gib(2), vcpus=1):
    """Boot a tenant directly on *pod_id* (test shortcut around the
    placer) and run the shared simulator until it lands."""
    request = fed.pods[pod_id].plane.submit(
        "boot", tenant_id,
        request=VmAllocationRequest(vm_id=tenant_id, vcpus=vcpus,
                                    ram_bytes=ram_bytes))
    fed._tenant_pod[tenant_id] = pod_id
    fed.sim.run()
    assert request.record.ok, request.record.note
    return request


class TestConstruction:
    def test_pods_share_one_clock_but_not_contexts(self):
        fed = build_fed(2)
        planes = [pod.plane for pod in fed.pods.values()]
        assert planes[0].sim is planes[1].sim is fed.sim
        assert planes[0].ctx is not planes[1].ctx

    def test_each_pod_keeps_its_sharded_controller(self):
        fed = build_fed(2, racks_per_pod=2)
        for pod in fed.pods.values():
            assert isinstance(pod.system.sdm, ShardedSdmController)
            assert pod.system.sdm.shard_count == 2

    def test_pod_ids_from_builders(self):
        fed = build_fed(3)
        assert sorted(fed.pods) == ["pod0", "pod1", "pod2"]

    def test_empty_or_duplicate_pods_rejected(self):
        with pytest.raises(FederationError):
            FederationController([])
        system = build_fed(1).pods["pod0"].system
        with pytest.raises(FederationError):
            FederationController([system, system], pod_ids=["a", "a"])


class TestRouting:
    def test_submit_routes_to_current_pod(self):
        fed = build_fed(2)
        boot_tenant(fed, "t0", "pod1")
        request = fed.submit("depart", "t0")
        fed.sim.run()
        assert request.record.ok
        assert any(r.tenant_id == "t0" and r.kind == "depart"
                   for r in fed.pods["pod1"].plane.stats.records)

    def test_depart_deregisters_the_tenant(self):
        fed = build_fed(2)
        boot_tenant(fed, "t0", "pod0")
        fed.submit("depart", "t0")
        fed.sim.run()
        # Routing tables hold no departed tenants: a later lookup (or a
        # rebalancer planning pass) must not see a ghost registration.
        with pytest.raises(FederationError):
            fed.pod_of("t0")
        assert fed.tenants_on("pod0") == []

    def test_unknown_tenant_rejected(self):
        fed = build_fed(2)
        with pytest.raises(FederationError):
            fed.submit("depart", "ghost")
        with pytest.raises(FederationError):
            fed.pod_of("ghost")

    def test_tenants_on_lists_by_pod(self):
        fed = build_fed(2)
        boot_tenant(fed, "a", "pod0")
        boot_tenant(fed, "b", "pod1")
        assert fed.tenants_on("pod0") == ["a"]
        assert fed.tenants_on("pod1") == ["b"]
        with pytest.raises(FederationError):
            fed.tenants_on("pod9")


class TestSpillOnExhaustion:
    def _exhausting_trace(self, count=10):
        """Tenants of 4 GiB arriving back to back: 10 x 4 = 40 GiB
        against one 16 GiB home pod."""
        return TenantTrace("spill", [
            TenantSpec(f"t{i:02d}", arrival_s=0.05 * i, vcpus=1,
                       ram_bytes=gib(4), lifetime_s=30.0)
            for i in range(count)])

    def test_pinned_placement_rejects_overflow(self):
        fed = build_fed(2, spill_policy="never")
        stats = fed.serve_trace(self._exhausting_trace(),
                                home_of=lambda spec: "pod0")
        assert stats.spills == 0
        assert stats.boots_rejected > 0
        # The second pod sat idle the whole time.
        assert fed.pods["pod1"].system.vms == []

    def test_spill_places_overflow_on_the_other_pod(self):
        fed = build_fed(2, spill_policy="least-loaded")
        stats = fed.serve_trace(self._exhausting_trace(),
                                home_of=lambda spec: "pod0")
        assert stats.spills > 0
        # The overflow really booted on the other pod's plane.
        assert fed.pods["pod1"].plane.stats.completed("boot")
        pinned = build_fed(2, spill_policy="never")
        pinned_stats = pinned.serve_trace(self._exhausting_trace(),
                                          home_of=lambda spec: "pod0")
        assert stats.boots_admitted > pinned_stats.boots_admitted

    def test_claims_ledger_clean_after_trace(self):
        fed = build_fed(2)
        fed.serve_trace(self._exhausting_trace(),
                        home_of=lambda spec: "pod0")
        assert fed.placer.pending_claims == []


class TestServeTrace:
    def test_full_lifecycle_across_pods(self):
        fed = build_fed(2)
        trace = poisson_trace(
            20, arrival_rate_hz=10.0, vcpus=1, ram_bytes=gib(2),
            mean_lifetime_s=0.8, scale_fraction=0.5, scale_bytes=gib(1),
            seed=11, name="fedtrace")
        stats = fed.serve_trace(trace)
        assert stats.boots_admitted == 20
        assert stats.duration_s > 0
        assert len(stats.admission_records) == 20
        # Per-pod stats are attached and cover all request kinds.
        assert set(stats.pod_stats) == {"pod0", "pod1"}
        assert len(stats.records("boot")) == 20
        assert stats.records("scale_up")
        # Every pool drained: no leaked segments anywhere.
        for pod in fed.pods.values():
            live = sum(s.size for s in pod.system.sdm.live_segments)
            allocated = sum(
                e.allocator.allocated_bytes
                for e in pod.system.sdm.registry.memory_entries)
            assert live == allocated
        assert fed.placer.pending_claims == []

    def test_drain_guard_with_rebalancer(self):
        fed = build_fed(2, rebalancer=FederationRebalancer())
        with pytest.raises(FederationError):
            fed.drain()


class TestRebalancer:
    def test_drains_overloaded_pod_in_idle_window(self):
        rebalancer = FederationRebalancer(interval_s=0.1,
                                          imbalance_threshold=0.2,
                                          max_migrations_per_pass=2)
        fed = build_fed(2, rebalancer=rebalancer)
        # Load pod0 heavily, pod1 not at all, then go idle long enough
        # for the rebalancer to notice.
        trace = TenantTrace("skew", [
            TenantSpec(f"t{i}", arrival_s=0.01 * i, vcpus=1,
                       ram_bytes=gib(4), lifetime_s=8.0)
            for i in range(3)])
        stats = fed.serve_trace(trace, home_of=lambda spec: "pod0")
        assert stats.boots_admitted == 3
        assert rebalancer.report.passes > 0
        assert rebalancer.report.migrations >= 1
        assert rebalancer.report.bytes_drained >= gib(4)
        # The drained tenant really re-booted on the cold pod's plane.
        assert fed.pods["pod1"].plane.stats.completed("boot")
        assert fed.stats.migrations == rebalancer.report.migrations

    def test_balanced_pods_left_alone(self):
        rebalancer = FederationRebalancer(interval_s=0.1,
                                          imbalance_threshold=0.25)
        fed = build_fed(2, rebalancer=rebalancer)
        trace = TenantTrace("even", [
            TenantSpec(f"t{i}", arrival_s=0.01 * i, vcpus=1,
                       ram_bytes=gib(2), lifetime_s=2.0)
            for i in range(4)])
        fed.serve_trace(
            trace, home_of=lambda spec: f"pod{int(spec.tenant_id[1]) % 2}")
        assert rebalancer.report.migrations == 0

    def test_invalid_configuration_rejected(self):
        with pytest.raises(FederationError):
            FederationRebalancer(interval_s=0)
        with pytest.raises(FederationError):
            FederationRebalancer(imbalance_threshold=0.0)
        with pytest.raises(FederationError):
            FederationRebalancer(max_migrations_per_pass=0)
