"""Parallel federation: worker-count equivalence and barrier edges.

The contract under test is the PR's headline: the worker count is a
*physical* knob — 0 (inline), 1, 2 or 4 OS processes must produce
field-for-field identical federation statistics, down to the
fingerprint that folds in every counter, record and timestamp.
"""

from __future__ import annotations

import pytest

from repro.cluster.trace import poisson_trace
from repro.errors import ParallelSimError
from repro.federation.parallel import (
    build_parallel_federation,
    federation_fingerprint,
)
from repro.federation.rebalancer import FederationRebalancer
from repro.units import gib, mib

SEED = 2018
PODS = 2


def small_trace(tenants=24, rate_hz=40.0, seed=SEED):
    """Small but full-vocabulary: boots, scale up/down, migration,
    departures — every message kind crosses the wire."""
    return poisson_trace(
        tenants, rate_hz, vcpus=2, ram_bytes=gib(1),
        mean_lifetime_s=0.5, scale_fraction=0.5, scale_bytes=mib(256),
        migrate_fraction=0.25, seed=seed, name="pfed-test")


def build(workers: int, pods: int = PODS, **kwargs):
    kwargs.setdefault("racks_per_pod", 1)
    kwargs.setdefault("spill_policy", "least-loaded")
    kwargs.setdefault("rebalancer", FederationRebalancer(
        interval_s=0.25, imbalance_threshold=0.2))
    return build_parallel_federation(pods, workers=workers, **kwargs)


def serve(workers: int, **kwargs):
    with build(workers, **kwargs) as fed:
        stats = fed.serve_trace(small_trace())
        report = fed.window_report
    return stats, report


def fields_of(stats):
    """The cell-level fields the experiment reports, extracted for a
    direct field-for-field comparison (the fingerprint then covers
    everything else, records and timestamps included)."""
    return {
        "admitted": stats.boots_admitted,
        "rejected": stats.boots_rejected,
        "spills": stats.spills,
        "migrations": stats.migrations,
        "bytes_migrated": stats.bytes_migrated,
        "duration_s": stats.duration_s,
        "p50_boot_s": stats.admission_latency_percentile(50),
        "p99_boot_s": stats.admission_latency_percentile(99),
        "fingerprint": federation_fingerprint(stats),
    }


class TestWorkerCountEquivalence:
    def test_worker_count_never_changes_the_simulation(self):
        reference_stats, reference_report = serve(workers=0)
        reference = fields_of(reference_stats)
        assert reference["admitted"] > 0
        for workers in (1, 2, 4):
            stats, report = serve(workers=workers)
            assert fields_of(stats) == reference, f"workers={workers}"
            assert report.rounds == reference_report.rounds
            assert report.lp_events == reference_report.lp_events

    def test_equivalence_survives_a_different_seed(self):
        with build(0) as fed:
            ref = fed.serve_trace(small_trace(seed=7))
        with build(2) as fed:
            par = fed.serve_trace(small_trace(seed=7))
        assert fields_of(ref) == fields_of(par)

    def test_different_seeds_differ(self):
        with build(0) as fed:
            one = fed.serve_trace(small_trace(seed=7))
        with build(0) as fed:
            two = fed.serve_trace(small_trace(seed=8))
        assert (federation_fingerprint(one)
                != federation_fingerprint(two))

    def test_sync_window_is_physics_not_noise(self):
        """Unlike the worker count, the sync window (inter-pod link
        latency) is part of the simulated system: changing it changes
        arrival times, so the fingerprint must move."""
        with build(0) as fed:
            base = fed.serve_trace(small_trace())
        with build(0, sync_window_s=5e-3) as fed:
            wide = fed.serve_trace(small_trace())
        assert (federation_fingerprint(base)
                != federation_fingerprint(wide))


class TestBarrierEdges:
    @pytest.mark.parametrize("window", [0.0, -1e-6, float("inf"),
                                        float("nan")])
    def test_degenerate_sync_window_rejected(self, window):
        with pytest.raises(ParallelSimError, match="sync window"):
            build_parallel_federation(PODS, workers=0,
                                      sync_window_s=window)

    def test_negative_workers_rejected(self):
        with pytest.raises(ParallelSimError, match=">= 0"):
            build_parallel_federation(PODS, workers=-1)

    def test_worker_crash_mid_run_is_a_clean_error(self):
        fed = build(workers=1)
        try:
            for worker in fed.fleet._workers:
                worker.terminate()
                worker.join(timeout=5.0)
            with pytest.raises(ParallelSimError,
                               match="died mid-barrier|is gone"):
                fed.serve_trace(small_trace(tenants=4))
        finally:
            fed.close()

    def test_close_is_idempotent(self):
        fed = build(workers=2)
        fed.close()
        fed.close()

    def test_report_decomposition_is_consistent(self):
        _, report = serve(workers=0)
        assert report.rounds > 0
        assert report.lp_busy_s >= report.lp_critical_s > 0
        assert report.critical_path_s >= report.lp_critical_s
        assert report.hub_overlapped_s >= 0.0
        assert isinstance(fed_events_total(report), int)


def fed_events_total(report):
    return sum(report.lp_events.values())
