"""Smoke tests: every example script runs and prints its key results.

Examples are part of the public surface — if an API change breaks them,
these tests fail before a user does.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    """Import and run ``examples/<name>.py`` and return its stdout."""
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        del sys.modules[spec.name]
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart", capsys)
        assert "booted vm-0" in out
        assert "scale-up of 8 GiB took" in out
        assert "powered off" in out

    def test_video_surveillance(self, capsys):
        out = run_example("video_surveillance", capsys)
        assert "investigations" in out
        assert "mean time-to-capacity" in out
        assert "elastic provisioning averaged" in out

    def test_nfv_elastic_keyserver(self, capsys):
        out = run_example("nfv_elastic_keyserver", capsys)
        assert "0 VMs spawned" in out
        assert "demand satisfied at" in out

    def test_network_analytics_100gbe(self, capsys):
        out = run_example("network_analytics_100gbe", capsys)
        assert "line rate held" in out
        assert "speedup from disaggregated memory" in out

    def test_tco_study(self, capsys):
        out = run_example("tco_study", capsys)
        assert "TCO study" in out
        assert "headline" in out

    def test_live_migration(self, capsys):
        out = run_example("live_migration", capsys)
        assert "migration ledger" in out
        assert "faster" in out

    def test_elastic_multi_tenant(self, capsys):
        out = run_example("elastic_multi_tenant", capsys)
        assert "anti-correlated demand" in out
        assert "elastic redistribution carried both tenants" in out

    def test_all_examples_covered(self):
        """Every example file has a smoke test here."""
        examples = {p.stem for p in EXAMPLES_DIR.glob("*.py")}
        tested = {name[len("test_"):] for name in dir(self)
                  if name.startswith("test_") and
                  name != "test_all_examples_covered"}
        assert examples == tested
