"""Tests for the multi-queue link scheduler (DES).

The load-bearing property: under the priority discipline a demand miss
is *never* queued behind prefetch or write-back traffic — the arbiter
never starts a bulk transfer while a demand waits.
"""

from __future__ import annotations

import pytest

from repro.datamover.scheduler import (
    HEADER_BYTES,
    LinkScheduler,
    TransferClass,
)
from repro.errors import DataMoverError
from repro.fabric.interconnect import Hop, HopKind, HopPath, Interconnect, PathScope
from repro.memory.path import link_one_way_s
from repro.sim.engine import Simulator
from repro.units import gbps, kib, transfer_time


def drain(sim):
    sim.run()


class TestPriorityDiscipline:
    def test_demand_overtakes_queued_prefetches(self):
        sim = Simulator()
        sched = LinkScheduler(sim, discipline="priority")
        prefetches = []
        demand = []

        def load():
            prefetches.extend(sched.submit(TransferClass.PREFETCH, kib(4))
                              for _ in range(8))
            # Let the first prefetch reach the wire (non-preemptive)...
            yield sim.timeout(1e-9)
            demand.append(sched.submit(TransferClass.DEMAND, 64))
        sim.process(load())
        drain(sim)
        # ...then the demand claims the very next slot: it serves
        # second, ahead of the seven still-queued prefetches.
        order = [t.transfer_id for t in sched.service_log]
        assert order.index(demand[0].transfer_id) == 1
        assert all(p.delivered_s is not None for p in prefetches)

    def test_demand_never_queued_behind_bulk(self):
        """The acceptance invariant, over an adversarial mixed load."""
        sim = Simulator()
        sched = LinkScheduler(sim, discipline="priority")

        def storm():
            for burst in range(32):
                sched.submit(TransferClass.PREFETCH, kib(4))
                sched.submit(TransferClass.WRITEBACK, kib(4))
                demand = sched.submit(TransferClass.DEMAND, 64)
                yield demand.done
        sim.process(storm())
        drain(sim)
        assert sched.demand_blocked_by_bulk() == 0

    def test_writeback_outranks_prefetch(self):
        sim = Simulator()
        sched = LinkScheduler(sim, discipline="priority")
        writeback = []

        def load():
            sched.submit(TransferClass.PREFETCH, kib(4))
            sched.submit(TransferClass.PREFETCH, kib(4))
            yield sim.timeout(1e-9)
            writeback.append(sched.submit(TransferClass.WRITEBACK, 64))
        sim.process(load())
        drain(sim)
        order = [t.transfer_id for t in sched.service_log]
        assert order.index(writeback[0].transfer_id) == 1


class TestFifoDiscipline:
    def test_demand_waits_behind_earlier_bulk(self):
        sim = Simulator()
        sched = LinkScheduler(sim, discipline="fifo")

        def load():
            for _ in range(8):
                sched.submit(TransferClass.PREFETCH, kib(4))
            yield sim.timeout(1e-9)
            demand = sched.submit(TransferClass.DEMAND, 64)
            yield demand.done
        sim.process(load())
        drain(sim)
        # Arrival order is honoured: the demand is served last and the
        # inversion counter sees the bulk transfers started while it
        # queued.
        assert sched.service_log[-1].klass is TransferClass.DEMAND
        assert sched.demand_blocked_by_bulk() > 0

    def test_fifo_wait_exceeds_priority_wait(self):
        def run(discipline: str) -> float:
            sim = Simulator()
            sched = LinkScheduler(sim, discipline=discipline)

            def load():
                for _ in range(16):
                    sched.submit(TransferClass.PREFETCH, kib(4))
                yield sim.timeout(1e-9)
                for _ in range(4):
                    demand = sched.submit(TransferClass.DEMAND, 64)
                    yield demand.done
            sim.process(load())
            drain(sim)
            return sched.stats.mean_wait_s(TransferClass.DEMAND)
        assert run("fifo") > run("priority")


class TestWireModel:
    def test_serialization_at_link_rate(self):
        sim = Simulator()
        sched = LinkScheduler(sim, link_rate_bps=gbps(10))
        transfer = sched.submit(TransferClass.DEMAND, kib(4))
        drain(sim)
        expected = (transfer_time(kib(4), gbps(10))
                    + sched.one_way_s)
        assert transfer.delivered_s == pytest.approx(expected)

    def test_hop_path_sets_flight_time_and_bottleneck(self):
        slow_hop = HopPath(
            hops=(Hop("constrained", HopKind.FIBRE, fibre_m=100.0,
                      bandwidth_bps=gbps(1)),),
            scope=PathScope.POD)
        sim = Simulator()
        sched = LinkScheduler(sim, hop_path=slow_hop,
                              link_rate_bps=gbps(10))
        assert sched.link_rate_bps == gbps(1)  # capped by the hop
        # Same one-way composition as the contention sim and access
        # paths: flight time plus a transceiver at each end.
        assert sched.one_way_s == pytest.approx(link_one_way_s(slow_hop))
        assert sched.one_way_s > slow_hop.propagation_delay_s

    def test_inter_rack_path_slower_than_intra(self):
        interconnect = Interconnect()
        sim_a, sim_b = Simulator(), Simulator()
        intra = LinkScheduler(sim_a,
                              hop_path=interconnect.intra_rack_path())
        inter = LinkScheduler(sim_b,
                              hop_path=interconnect.inter_rack_path())
        assert inter.one_way_s > intra.one_way_s


class TestValidation:
    def test_unknown_discipline(self):
        with pytest.raises(DataMoverError):
            LinkScheduler(Simulator(), discipline="wfq")

    def test_positive_rate(self):
        with pytest.raises(DataMoverError):
            LinkScheduler(Simulator(), link_rate_bps=0)

    def test_positive_size(self):
        sched = LinkScheduler(Simulator())
        with pytest.raises(DataMoverError):
            sched.submit(TransferClass.DEMAND, 0)

    def test_header_constant_sane(self):
        assert HEADER_BYTES > 0
