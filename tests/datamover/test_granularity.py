"""Tests for the adaptive fetch-granularity selector."""

from __future__ import annotations

import pytest

from repro.datamover.cache import LINE_BYTES, PAGE_BYTES
from repro.datamover.granularity import (
    AdaptiveGranularitySelector,
    FetchGranularity,
    FixedGranularitySelector,
    GranularityConfig,
)
from repro.errors import DataMoverError


def dense_walk(selector, segment_id, pages, lines_per_page):
    for page in range(pages):
        for line in range(lines_per_page):
            selector.record_access(
                segment_id, page * PAGE_BYTES + line * LINE_BYTES)


class TestAdaptiveSelector:
    def test_starts_at_line_granularity(self):
        selector = AdaptiveGranularitySelector()
        assert selector.mode("seg") is FetchGranularity.LINE
        assert selector.fetch_bytes("seg") == LINE_BYTES

    def test_dense_access_promotes_to_page(self):
        selector = AdaptiveGranularitySelector()
        dense_walk(selector, "seg", pages=2, lines_per_page=32)
        assert selector.mode("seg") is FetchGranularity.PAGE
        assert selector.fetch_bytes("seg") == PAGE_BYTES
        assert selector.flips("seg") == 1

    def test_sparse_access_stays_at_line(self):
        selector = AdaptiveGranularitySelector()
        # One line per page: no spatial locality to amortize a page.
        for page in range(64):
            selector.record_access("seg", page * PAGE_BYTES)
        assert selector.mode("seg") is FetchGranularity.LINE

    def test_page_mode_demotes_when_locality_dies(self):
        selector = AdaptiveGranularitySelector(
            GranularityConfig(window_pages=4))
        dense_walk(selector, "seg", pages=4, lines_per_page=32)
        assert selector.mode("seg") is FetchGranularity.PAGE
        # The dense pages age out of the 4-page window; sparse pages
        # (1 line each) replace them and drag the mean under demote.
        for page in range(100, 120):
            selector.record_access("seg", page * PAGE_BYTES)
        assert selector.mode("seg") is FetchGranularity.LINE
        assert selector.flips("seg") == 2

    def test_no_switch_before_warmup(self):
        selector = AdaptiveGranularitySelector(
            GranularityConfig(min_accesses=1000))
        dense_walk(selector, "seg", pages=2, lines_per_page=32)
        assert selector.mode("seg") is FetchGranularity.LINE

    def test_segments_tracked_independently(self):
        selector = AdaptiveGranularitySelector()
        dense_walk(selector, "dense", pages=2, lines_per_page=32)
        for page in range(64):
            selector.record_access("sparse", page * PAGE_BYTES)
        assert selector.mode("dense") is FetchGranularity.PAGE
        assert selector.mode("sparse") is FetchGranularity.LINE

    def test_forget_resets_state(self):
        selector = AdaptiveGranularitySelector()
        dense_walk(selector, "seg", pages=2, lines_per_page=32)
        selector.forget("seg")
        assert selector.mode("seg") is FetchGranularity.LINE
        assert selector.flips("seg") == 0

    def test_negative_address_rejected(self):
        with pytest.raises(DataMoverError):
            AdaptiveGranularitySelector().record_access("seg", -1)


class TestConfigValidation:
    def test_thresholds_ordered(self):
        with pytest.raises(DataMoverError):
            GranularityConfig(promote_lines=2.0, demote_lines=4.0)

    def test_window_positive(self):
        with pytest.raises(DataMoverError):
            GranularityConfig(window_pages=0)

    def test_min_accesses_positive(self):
        with pytest.raises(DataMoverError):
            GranularityConfig(min_accesses=0)


class TestFixedSelector:
    def test_pinned_granularity_never_moves(self):
        selector = FixedGranularitySelector(FetchGranularity.PAGE)
        dense_walk(selector, "seg", pages=2, lines_per_page=32)
        assert selector.mode("seg") is FetchGranularity.PAGE
        assert selector.fetch_bytes("seg") == PAGE_BYTES
        assert selector.flips("seg") == 0
