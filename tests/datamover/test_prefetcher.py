"""Tests for the sequential and stride prefetchers."""

from __future__ import annotations

import pytest

from repro.datamover.prefetcher import (
    NullPrefetcher,
    SequentialPrefetcher,
    StridePrefetcher,
)
from repro.errors import DataMoverError


class TestSequential:
    def test_predicts_next_blocks(self):
        prefetcher = SequentialPrefetcher(depth=3)
        assert prefetcher.observe("seg", 0x1000, 64) == [
            0x1040, 0x1080, 0x10C0]

    def test_depth_validated(self):
        with pytest.raises(DataMoverError):
            SequentialPrefetcher(depth=0)


class TestStride:
    def test_silent_until_confident(self):
        prefetcher = StridePrefetcher(depth=2, confidence_threshold=2)
        assert prefetcher.observe("seg", 0x0, 64) == []      # first miss
        assert prefetcher.observe("seg", 0x40, 64) == []     # confidence 1
        assert prefetcher.observe("seg", 0x80, 64) == [0xC0, 0x100]

    def test_detects_non_unit_stride(self):
        prefetcher = StridePrefetcher(depth=2, confidence_threshold=2)
        prefetcher.observe("seg", 0x0, 64)
        prefetcher.observe("seg", 0x1000, 64)
        predictions = prefetcher.observe("seg", 0x2000, 64)
        assert predictions == [0x3000, 0x4000]

    def test_random_stream_stays_silent(self):
        prefetcher = StridePrefetcher(depth=4, confidence_threshold=2)
        issued = []
        for base in (0x0, 0x5000, 0x100, 0x9000, 0x240):
            issued.extend(prefetcher.observe("seg", base, 64))
        assert issued == []

    def test_stride_change_resets_confidence(self):
        prefetcher = StridePrefetcher(depth=1, confidence_threshold=2)
        prefetcher.observe("seg", 0x0, 64)
        prefetcher.observe("seg", 0x40, 64)
        assert prefetcher.observe("seg", 0x80, 64)  # confident at +64
        assert prefetcher.observe("seg", 0x1080, 64) == []  # new stride
        assert prefetcher.observe("seg", 0x2080, 64) == [0x3080]

    def test_segments_independent(self):
        prefetcher = StridePrefetcher(depth=1, confidence_threshold=2)
        prefetcher.observe("a", 0x0, 64)
        prefetcher.observe("a", 0x40, 64)
        assert prefetcher.observe("b", 0x0, 64) == []  # fresh segment

    def test_forget_drops_state(self):
        prefetcher = StridePrefetcher(depth=1, confidence_threshold=2)
        prefetcher.observe("seg", 0x0, 64)
        prefetcher.observe("seg", 0x40, 64)
        prefetcher.forget("seg")
        assert prefetcher.observe("seg", 0x80, 64) == []

    def test_validation(self):
        with pytest.raises(DataMoverError):
            StridePrefetcher(depth=0)
        with pytest.raises(DataMoverError):
            StridePrefetcher(confidence_threshold=0)


class TestNull:
    def test_never_predicts(self):
        prefetcher = NullPrefetcher()
        assert prefetcher.observe("seg", 0x0, 64) == []
