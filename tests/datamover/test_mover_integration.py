"""Integration: the data mover over a 2-rack PodFabric.

Boots VMs on a memory-poor pod until a segment's circuit crosses the
pod switch, attaches a :class:`~repro.datamover.mover.DataMover` to the
owning compute brick, and verifies the end-to-end story: hits
short-circuit the optical path, kernel/hypervisor reads route through
the mover, detach flushes dirty blocks, and the placement layer learns
about hot bricks.
"""

from __future__ import annotations

import pytest

from repro.core.builder import PodBuilder
from repro.datamover.mover import MoverConfig
from repro.errors import ReproError, SoftwareError
from repro.memory.path import CircuitAccessPath
from repro.memory.transactions import MemoryTransaction
from repro.orchestration.placement import PowerAwarePackingPolicy
from repro.orchestration.requests import VmAllocationRequest
from repro.units import gib


@pytest.fixture(scope="module")
def pod_system():
    """A 2-rack pod packed until a cross-rack segment exists."""
    system = (PodBuilder("dmint")
              .with_racks(2)
              .with_compute_bricks(2, cores=8, local_memory=gib(2))
              .with_memory_bricks(1, modules=1, module_size=gib(8))
              .build())
    for index in range(16):
        try:
            system.boot_vm(VmAllocationRequest(
                f"vm-{index}", vcpus=1, ram_bytes=gib(4)))
        except ReproError:
            break
        if any(_crosses(system, s) for s in system.sdm.live_segments):
            break
    return system


def _crosses(system, segment) -> bool:
    record = system.sdm.segment_record(segment.segment_id)
    hop_path = record.circuit.hop_path
    return hop_path is not None and hop_path.crosses_racks


def _cross_rack_segment(system):
    for segment in system.sdm.live_segments:
        if _crosses(system, segment):
            return segment, system.sdm.segment_record(segment.segment_id)
    raise AssertionError("packing never produced a cross-rack segment")


class TestMoverOverPodFabric:
    def test_hits_short_circuit_the_pod_switch(self, pod_system):
        segment, record = _cross_rack_segment(pod_system)
        mover = pod_system.attach_data_mover(segment.compute_brick_id)
        address = record.entry.base + 4096

        cold = mover.read(address)
        warm = mover.read(address)
        assert not cold.hit and warm.hit
        assert cold.fetched_bytes > 0 and warm.fetched_bytes == 0
        # The cross-rack miss pays the pod-switch tier; the hit stays
        # on-brick and is an order of magnitude cheaper.
        assert cold.latency_s > 10 * warm.latency_s
        assert warm.latency_s < 200e-9

    def test_mover_beats_uncached_path_on_locality(self, pod_system):
        segment, record = _cross_rack_segment(pod_system)
        stack = pod_system.stack(segment.compute_brick_id)
        memory = pod_system.sdm.registry.memory(
            segment.memory_brick_id).brick
        uncached = CircuitAccessPath(stack.brick, memory, record.circuit)
        base = record.entry.base + 16 * 4096
        addresses = [base + page * 4096 + line * 64
                     for page in range(8) for line in range(32)]

        uncached_total = sum(
            uncached.access(MemoryTransaction.read(a)).round_trip_s
            for a in addresses)
        mover = pod_system.attach_data_mover(
            segment.compute_brick_id,
            MoverConfig(granularity="adaptive", prefetch="stride"))
        mover_total = sum(mover.read(a).latency_s for a in addresses)
        assert mover.stats.hit_ratio >= 0.8
        assert mover_total * 2 < uncached_total

    def test_kernel_and_hypervisor_route_through_mover(self, pod_system):
        segment, record = _cross_rack_segment(pod_system)
        stack = pod_system.stack(segment.compute_brick_id)
        mover = pod_system.attach_data_mover(segment.compute_brick_id)
        address = record.entry.base + 32 * 4096

        first = stack.kernel.remote_read(address)
        again = stack.kernel.remote_read(address)
        assert not first.hit and again.hit
        assert mover.stats.demand_accesses >= 2

        vm_id = segment.vm_id or pod_system.vms[0].vm_id
        if any(v.vm_id == vm_id for v in stack.hypervisor.vms):
            result = stack.hypervisor.guest_read(vm_id, address)
            assert result.hit

    def test_unbound_kernel_rejects_remote_reads(self):
        system = (PodBuilder("dmunbound")
                  .with_racks(1)
                  .with_compute_bricks(1, cores=4, local_memory=gib(2))
                  .with_memory_bricks(1, modules=1, module_size=gib(8))
                  .build())
        stack = system.stacks[0]
        with pytest.raises(SoftwareError, match="no data mover"):
            stack.kernel.remote_read(0x1000)

    def test_write_dirties_and_detach_flushes(self):
        system = (PodBuilder("dmflush")
                  .with_racks(2)
                  .with_compute_bricks(1, cores=8, local_memory=gib(2))
                  .with_memory_bricks(1, modules=1, module_size=gib(8))
                  .build())
        system.boot_vm(VmAllocationRequest("vm-0", vcpus=1,
                                           ram_bytes=gib(1)))
        result = system.scale_up("vm-0", gib(1))
        segment = result.segment
        mover = system.attach_data_mover(segment.compute_brick_id)
        record = system.sdm.segment_record(segment.segment_id)
        address = record.entry.base + 4096

        write = mover.write(address)
        assert not write.hit  # write-allocate fetched the block
        assert mover.cache.block_for(address).dirty
        assert segment.segment_id in mover.registered_segments()

        system.scale_down("vm-0", segment.segment_id)
        # The kernel detach flushed the dirty block back over the
        # still-live circuit before offlining the window.
        assert mover.stats.writebacks >= 1
        assert mover.stats.writeback_bytes >= 64
        assert mover.cache.block_for(address) is None
        assert segment.segment_id not in mover.registered_segments()

    def test_misaligned_prefetch_predictions_skipped(self, pod_system):
        """A stride learned at line granularity can predict bases that
        are line- but not page-aligned after a granularity flip; they
        must be dropped, not crash the demand access (regression)."""
        segment, record = _cross_rack_segment(pod_system)
        mover = pod_system.attach_data_mover(
            segment.compute_brick_id, MoverConfig(granularity="page"))

        class CrookedPrefetcher:
            def observe(self, segment_id, base, size):
                return [base + size + 2112]  # 64- but not 4096-aligned

            def forget(self, segment_id):
                pass

        mover.prefetcher = CrookedPrefetcher()
        result = mover.read(record.entry.base + 200 * 4096)
        assert not result.hit
        assert mover.stats.prefetch_fills == 0  # skipped, not crashed

    def test_reattach_flushes_old_movers_dirty_blocks(self):
        system = (PodBuilder("dmreattach")
                  .with_racks(1)
                  .with_compute_bricks(1, cores=8, local_memory=gib(2))
                  .with_memory_bricks(1, modules=1, module_size=gib(8))
                  .build())
        system.boot_vm(VmAllocationRequest("vm-0", vcpus=1,
                                           ram_bytes=gib(1)))
        result = system.scale_up("vm-0", gib(1))
        segment = result.segment
        record = system.sdm.segment_record(segment.segment_id)
        old = system.attach_data_mover(segment.compute_brick_id)
        old.write(record.entry.base + 4096)
        assert old.cache.block_for(record.entry.base + 4096).dirty

        fresh = system.attach_data_mover(segment.compute_brick_id)
        # The replaced mover wrote its dirty block back before handing
        # the brick over; the new mover starts cold but registered.
        assert old.stats.writebacks >= 1
        assert old.cache.block_for(record.entry.base + 4096) is None
        assert fresh.cache.block_count == 0
        assert segment.segment_id in fresh.registered_segments()

    def test_hot_segments_feed_placement(self, pod_system):
        segment, record = _cross_rack_segment(pod_system)
        mover = pod_system.attach_data_mover(segment.compute_brick_id)
        base = record.entry.base + 64 * 4096
        for index in range(64):
            mover.read(base + (index % 16) * 64)
        assert mover.segment_accesses(segment.segment_id) >= 64

        hot = mover.hot_memory_bricks(min_accesses=64)
        assert segment.memory_brick_id in hot

        policy = pod_system.sdm.policy
        assert isinstance(policy, PowerAwarePackingPolicy)
        noted = pod_system.note_hot_placement(min_accesses=64)
        assert segment.memory_brick_id in noted
        assert segment.memory_brick_id in policy.hot_bricks
