"""Tests for the remote page cache (hit/miss, eviction, write-back)."""

from __future__ import annotations

import pytest

from repro.datamover.cache import (
    LINE_BYTES,
    PAGE_BYTES,
    RemotePageCache,
)
from repro.errors import DataMoverError


class TestLookupAndFill:
    def test_miss_then_hit(self):
        cache = RemotePageCache(capacity_bytes=PAGE_BYTES)
        assert cache.lookup(0x1000) is None
        cache.fill(0x1000, LINE_BYTES)
        block = cache.lookup(0x1010)  # same line
        assert block is not None
        assert block.base == 0x1000
        assert cache.hits == 1
        assert cache.misses == 1
        assert cache.hit_ratio == 0.5

    def test_page_block_serves_every_line(self):
        cache = RemotePageCache(capacity_bytes=2 * PAGE_BYTES)
        cache.fill(0x2000, PAGE_BYTES)
        for line in range(PAGE_BYTES // LINE_BYTES):
            assert cache.lookup(0x2000 + line * LINE_BYTES) is not None
        assert cache.misses == 0

    def test_page_fill_absorbs_covered_lines(self):
        cache = RemotePageCache(capacity_bytes=4 * PAGE_BYTES)
        cache.fill(0x1000, LINE_BYTES, dirty=True)
        cache.fill(0x1040, LINE_BYTES)
        cache.fill(0x1000, PAGE_BYTES)
        assert cache.block_count == 1
        block = cache.block_for(0x1040)
        assert block.size == PAGE_BYTES
        assert block.dirty  # inherited from the absorbed dirty line

    def test_refill_marks_dirty_without_duplicating(self):
        cache = RemotePageCache(capacity_bytes=PAGE_BYTES)
        cache.fill(0x0, LINE_BYTES)
        assert cache.fill(0x0, LINE_BYTES, dirty=True) == []
        assert cache.block_count == 1
        assert cache.block_for(0x0).dirty

    def test_misaligned_fill_rejected(self):
        cache = RemotePageCache()
        with pytest.raises(DataMoverError):
            cache.fill(0x10, PAGE_BYTES)
        with pytest.raises(DataMoverError):
            cache.fill(0x0, 128)


class TestEviction:
    def test_lru_evicts_least_recent(self):
        cache = RemotePageCache(capacity_bytes=2 * PAGE_BYTES, policy="lru")
        cache.fill(0x0000, PAGE_BYTES)
        cache.fill(0x1000, PAGE_BYTES)
        cache.lookup(0x0000)  # page 0 is now the most recent
        evicted = cache.fill(0x2000, PAGE_BYTES)
        assert [b.base for b in evicted] == [0x1000]
        assert cache.block_for(0x0000) is not None

    def test_clock_gives_second_chance(self):
        cache = RemotePageCache(capacity_bytes=2 * PAGE_BYTES, policy="clock")
        cache.fill(0x0000, PAGE_BYTES)
        cache.fill(0x1000, PAGE_BYTES)
        # Both referenced: the hand clears page 0 first, so page 0 is
        # the victim on the next pass.
        evicted = cache.fill(0x2000, PAGE_BYTES)
        assert len(evicted) == 1
        assert cache.evictions == 1

    def test_dirty_eviction_reported_for_write_back(self):
        cache = RemotePageCache(capacity_bytes=PAGE_BYTES, policy="lru")
        cache.fill(0x0000, PAGE_BYTES, dirty=True)
        evicted = cache.fill(0x1000, PAGE_BYTES)
        assert len(evicted) == 1
        assert evicted[0].dirty
        assert cache.dirty_evictions == 1

    def test_occupancy_never_exceeds_capacity(self):
        cache = RemotePageCache(capacity_bytes=2 * PAGE_BYTES)
        for page in range(8):
            cache.fill(page * PAGE_BYTES, PAGE_BYTES)
            assert cache.occupancy_bytes <= cache.capacity_bytes


class TestWritesAndInvalidation:
    def test_mark_dirty(self):
        cache = RemotePageCache()
        cache.fill(0x0, LINE_BYTES)
        assert cache.mark_dirty(0x20)
        assert cache.block_for(0x0).dirty
        assert not cache.mark_dirty(0x9000)  # not cached

    def test_invalidate_range_returns_dirty_blocks(self):
        cache = RemotePageCache(capacity_bytes=8 * PAGE_BYTES)
        cache.fill(0x0000, PAGE_BYTES, dirty=True)
        cache.fill(0x1000, PAGE_BYTES)
        cache.fill(0x8000, LINE_BYTES, dirty=True)  # outside the range
        dropped = cache.invalidate_range(0x0000, 2 * PAGE_BYTES)
        assert {b.base for b in dropped} == {0x0000, 0x1000}
        assert sum(1 for b in dropped if b.dirty) == 1
        assert cache.block_for(0x8000) is not None

    def test_clean_clears_dirty_bit(self):
        cache = RemotePageCache()
        cache.fill(0x0, LINE_BYTES, dirty=True)
        block = cache.block_for(0x0)
        cache.clean(block)
        assert not block.dirty


class TestValidation:
    def test_capacity_must_hold_a_page(self):
        with pytest.raises(DataMoverError):
            RemotePageCache(capacity_bytes=PAGE_BYTES - 1)

    def test_unknown_policy_rejected(self):
        with pytest.raises(DataMoverError):
            RemotePageCache(policy="fifo")

    def test_invalidate_range_size_positive(self):
        with pytest.raises(DataMoverError):
            RemotePageCache().invalidate_range(0, 0)
