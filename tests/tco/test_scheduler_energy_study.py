"""Unit tests for the FCFS scheduler, power model and TCO study."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.tco.datacenter import (
    ConventionalDatacenter,
    DisaggregatedDatacenter,
)
from repro.tco.energy import PowerModel
from repro.tco.scheduler import FcfsScheduler
from repro.tco.study import TcoStudy
from repro.tco.workloads import TABLE_I, VmDemand


def vm(vm_id="vm", vcpus=4, ram_gib=4):
    return VmDemand(vm_id, vcpus, ram_gib)


class TestFcfsScheduler:
    def test_arrival_order_preserved(self):
        dc = ConventionalDatacenter(1, 8, 8)
        outcome = FcfsScheduler().schedule(
            dc, [vm("big", 8, 8), vm("small", 1, 1)])
        # The big VM arrived first and took the node; the small one lost.
        assert outcome.admitted_count == 1
        assert outcome.placed[0].vm.vm_id == "big"
        assert outcome.rejected[0].vm_id == "small"

    def test_rejection_does_not_block_later_fits(self):
        dc = ConventionalDatacenter(1, 8, 8)
        outcome = FcfsScheduler().schedule(
            dc, [vm("a", 6, 6), vm("huge", 8, 8), vm("b", 2, 2)])
        assert outcome.admitted_count == 2
        assert [p.vm.vm_id for p in outcome.placed] == ["a", "b"]

    def test_admission_rate(self):
        dc = ConventionalDatacenter(1, 8, 8)
        outcome = FcfsScheduler().schedule(dc, [vm("a", 8, 8), vm("b", 1, 1)])
        assert outcome.admission_rate == pytest.approx(0.5)

    def test_empty_workload(self):
        outcome = FcfsScheduler().schedule(ConventionalDatacenter(), [])
        assert outcome.admitted_count == 0
        assert outcome.admission_rate == 0.0


class TestPowerModel:
    def test_all_on_parity_up_to_switch_ports(self):
        model = PowerModel()
        conventional = ConventionalDatacenter(64, 32, 32)
        disaggregated = DisaggregatedDatacenter(64, 32, 64, 32)
        conv = model.conventional_power_all_on_w(conventional)
        disagg = model.disaggregated_power_all_on_w(disaggregated)
        # Same resources, near-equal draw; optical ports add ~0.1%.
        assert disagg == pytest.approx(conv, rel=0.01)
        assert disagg > conv

    def test_off_units_draw_nothing(self):
        model = PowerModel()
        dc = ConventionalDatacenter(4, 8, 8)
        dc.place(vm("a", 8, 8))
        assert model.conventional_power_w(dc) == pytest.approx(
            model.node_active_w)

    def test_disaggregated_counts_both_pools(self):
        model = PowerModel()
        dc = DisaggregatedDatacenter(2, 8, 2, 8)
        dc.place(vm("a", 8, 8))
        expected = (model.compute_brick_active_w
                    + model.memory_brick_active_w
                    + 2 * model.ports_per_brick * model.optical_port_w)
        assert model.disaggregated_power_w(dc) == pytest.approx(expected)

    def test_normalized_power(self):
        model = PowerModel()
        conventional = ConventionalDatacenter(2, 8, 8)
        disaggregated = DisaggregatedDatacenter(2, 8, 2, 8)
        for dc in (conventional, disaggregated):
            dc.place(vm("a", 1, 8))
        normalized = model.normalized_power(disaggregated, conventional)
        assert 0 < normalized < 2

    def test_normalize_against_dark_dc_rejected(self):
        model = PowerModel()
        with pytest.raises(ConfigurationError):
            model.normalized_power(DisaggregatedDatacenter(1, 1, 1, 1),
                                   ConventionalDatacenter(1, 1, 1))

    def test_energy_kwh(self):
        model = PowerModel()
        assert model.energy_kwh(1000.0, 24.0) == pytest.approx(24.0)
        with pytest.raises(ConfigurationError):
            model.energy_kwh(100.0, -1.0)

    def test_invalid_powers_rejected(self):
        with pytest.raises(ConfigurationError):
            PowerModel(node_active_w=0.0)


class TestTcoStudy:
    @pytest.fixture(scope="class")
    def results(self):
        return {r.config_name: r
                for r in TcoStudy(node_count=32, seed=7).run_all()}

    def test_all_configs_run(self, results):
        assert set(results) == set(TABLE_I)

    def test_disaggregated_never_worse_at_poweroff(self, results):
        for result in results.values():
            assert (result.disaggregated_poweroff
                    >= result.conventional_poweroff - 1e-9), \
                result.config_name

    def test_unbalanced_mixes_show_large_brick_poweroff(self, results):
        for name in ("High RAM", "High CPU", "More RAM", "More CPU"):
            assert results[name].best_brick_poweroff > 0.5, name

    def test_high_ram_powers_off_compute(self, results):
        result = results["High RAM"]
        assert result.compute_brick_poweroff > result.memory_brick_poweroff

    def test_high_cpu_powers_off_memory(self, results):
        result = results["High CPU"]
        assert result.memory_brick_poweroff > result.compute_brick_poweroff

    def test_balanced_mix_near_parity(self, results):
        result = results["Half Half"]
        assert result.normalized_power == pytest.approx(1.0, abs=0.05)

    def test_energy_savings_on_memory_heavy(self, results):
        assert results["High RAM"].energy_savings > 0.3
        assert results["More RAM"].energy_savings > 0.3

    def test_admission_counts_consistent(self, results):
        for result in results.values():
            assert (result.conventional_admitted
                    + result.conventional_rejected) == result.vm_count
            assert (result.disaggregated_admitted
                    + result.disaggregated_rejected) == result.vm_count

    def test_workload_size_scales_with_fraction(self):
        small = TcoStudy(demand_fraction=0.4)
        large = TcoStudy(demand_fraction=0.8)
        config = TABLE_I["Random"]
        assert large.workload_size(config) > small.workload_size(config)

    def test_workload_size_uses_binding_resource(self):
        study = TcoStudy(node_count=64, cores_per_node=32,
                         ram_per_node_gib=32, demand_fraction=1.0)
        config = TABLE_I["High RAM"]  # RAM is binding
        expected = int((64 * 32) / config.mean_ram_gib)
        assert study.workload_size(config) == expected

    def test_reproducible_for_seed(self):
        first = TcoStudy(seed=11).run_config(TABLE_I["Random"])
        second = TcoStudy(seed=11).run_config(TABLE_I["Random"])
        assert first == second

    def test_bad_demand_fraction_rejected(self):
        with pytest.raises(ConfigurationError):
            TcoStudy(demand_fraction=0.0)

    def test_explicit_vm_count(self):
        result = TcoStudy().run_config(TABLE_I["Half Half"], vm_count=10)
        assert result.vm_count == 10
