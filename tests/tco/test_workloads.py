"""Unit tests for the Table I workload generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.tco.workloads import (
    TABLE_I,
    VmDemand,
    WorkloadConfig,
    config_by_name,
    generate_vms,
    table_rows,
)


class TestTableI:
    def test_six_configurations(self):
        assert list(TABLE_I) == ["Random", "High RAM", "High CPU",
                                 "Half Half", "More RAM", "More CPU"]

    def test_paper_ranges_exact(self):
        assert TABLE_I["Random"].vcpu_min == 1
        assert TABLE_I["Random"].vcpu_max == 32
        assert TABLE_I["High RAM"].ram_min_gib == 24
        assert TABLE_I["High CPU"].vcpu_min == 24
        assert TABLE_I["Half Half"].vcpu_min == 16
        assert TABLE_I["Half Half"].vcpu_max == 16
        assert TABLE_I["More RAM"].vcpu_max == 6
        assert TABLE_I["More CPU"].ram_max_gib == 16

    def test_table_rows_match_paper(self):
        rows = table_rows()
        assert rows[0] == ("Random", "1-32 cores", "1-32 GB")
        assert rows[3] == ("Half Half", "16 cores", "16 GB")

    def test_config_by_name(self):
        assert config_by_name("High RAM") is TABLE_I["High RAM"]
        with pytest.raises(ConfigurationError):
            config_by_name("Mega RAM")


class TestSampling:
    @pytest.mark.parametrize("name", list(TABLE_I))
    def test_samples_within_ranges(self, name):
        config = TABLE_I[name]
        rng = np.random.default_rng(0)
        for vm in generate_vms(config, 300, rng):
            assert config.vcpu_min <= vm.vcpus <= config.vcpu_max
            assert config.ram_min_gib <= vm.ram_gib <= config.ram_max_gib

    def test_bounds_are_attained(self):
        config = TABLE_I["Random"]
        rng = np.random.default_rng(0)
        vms = generate_vms(config, 2000, rng)
        assert min(vm.vcpus for vm in vms) == 1
        assert max(vm.vcpus for vm in vms) == 32

    def test_mean_near_midpoint(self):
        config = TABLE_I["Random"]
        rng = np.random.default_rng(0)
        vms = generate_vms(config, 5000, rng)
        assert np.mean([vm.vcpus for vm in vms]) == pytest.approx(
            config.mean_vcpus, rel=0.05)

    def test_fixed_config_is_constant(self):
        config = TABLE_I["Half Half"]
        rng = np.random.default_rng(0)
        vms = generate_vms(config, 50, rng)
        assert all(vm.vcpus == 16 and vm.ram_gib == 16 for vm in vms)

    def test_reproducible(self):
        config = TABLE_I["Random"]
        first = generate_vms(config, 20, np.random.default_rng(5))
        second = generate_vms(config, 20, np.random.default_rng(5))
        assert first == second

    def test_ids_unique(self):
        config = TABLE_I["Random"]
        vms = generate_vms(config, 100, np.random.default_rng(0))
        assert len({vm.vm_id for vm in vms}) == 100

    def test_negative_count_rejected(self):
        with pytest.raises(ConfigurationError):
            generate_vms(TABLE_I["Random"], -1, np.random.default_rng(0))


class TestValidation:
    def test_bad_vcpu_range(self):
        with pytest.raises(ConfigurationError):
            WorkloadConfig("bad", 5, 4, 1, 2)

    def test_bad_ram_range(self):
        with pytest.raises(ConfigurationError):
            WorkloadConfig("bad", 1, 2, 0, 2)

    def test_vm_demand_validation(self):
        with pytest.raises(ConfigurationError):
            VmDemand("vm", vcpus=0, ram_gib=1)
        with pytest.raises(ConfigurationError):
            VmDemand("vm", vcpus=1, ram_gib=0)

    def test_labels(self):
        assert TABLE_I["Half Half"].vcpu_label == "16 cores"
        assert TABLE_I["Random"].ram_label == "1-32 GB"
