"""Unit tests for the two TCO datacenter models."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.tco.datacenter import (
    ConventionalDatacenter,
    DisaggregatedDatacenter,
)
from repro.tco.workloads import VmDemand


def vm(vm_id="vm", vcpus=4, ram_gib=4):
    return VmDemand(vm_id, vcpus, ram_gib)


class TestConventional:
    def test_aggregates(self):
        dc = ConventionalDatacenter(4, 32, 32)
        assert dc.total_cores == 128
        assert dc.total_ram_gib == 128

    def test_vm_must_fit_one_node(self):
        dc = ConventionalDatacenter(2, 8, 8)
        # 6+6 does not fit after a 4/4 VM on the same node; second node takes it.
        assert dc.place(vm("a", 4, 4)) is not None
        assert dc.place(vm("b", 6, 6)) is not None
        # Now 4 cores free on node0, 2 on node1 -> a 6-core VM is rejected
        # even though 6 cores exist in aggregate.
        assert dc.place(vm("c", 6, 1)) is None

    def test_coupling_blocks_unbalanced(self):
        dc = ConventionalDatacenter(1, 8, 8)
        dc.place(vm("a", 1, 8))  # memory exhausted, 7 cores stranded
        assert dc.place(vm("b", 1, 1)) is None
        assert dc.used_cores() == 1

    def test_packing_prefers_fullest_node(self):
        dc = ConventionalDatacenter(2, 8, 8)
        dc.place(vm("a", 4, 4))
        placement = dc.place(vm("b", 2, 2))
        assert placement.compute_unit == 0  # packed, not spread

    def test_idle_nodes_and_poweroff(self):
        dc = ConventionalDatacenter(4, 8, 8)
        dc.place(vm("a", 8, 8))
        assert len(dc.idle_nodes()) == 3
        assert dc.poweroff_fraction() == pytest.approx(0.75)

    def test_memory_share_recorded(self):
        dc = ConventionalDatacenter(1, 8, 8)
        placement = dc.place(vm("a", 2, 3))
        assert placement.memory_shares == {0: 3}

    def test_invalid_dimensions(self):
        with pytest.raises(ConfigurationError):
            ConventionalDatacenter(0, 8, 8)


class TestDisaggregated:
    def test_aggregates(self):
        dc = DisaggregatedDatacenter(4, 32, 4, 32)
        assert dc.total_cores == 128
        assert dc.total_ram_gib == 128

    def test_cores_from_single_brick(self):
        dc = DisaggregatedDatacenter(2, 8, 2, 8)
        dc.place(vm("a", 5, 1))
        dc.place(vm("b", 5, 1))
        # 3 cores free on each brick; a 5-core VM cannot span them.
        assert dc.place(vm("c", 5, 1)) is None

    def test_ram_spans_bricks(self):
        dc = DisaggregatedDatacenter(1, 32, 2, 8)
        placement = dc.place(vm("a", 1, 12))
        assert placement is not None
        assert sum(placement.memory_shares.values()) == 12
        assert len(placement.memory_shares) == 2

    def test_unbalanced_workload_packs(self):
        # The scenario conventional cannot do: memory-heavy VMs.
        dc = DisaggregatedDatacenter(4, 8, 4, 8)
        for index in range(4):
            assert dc.place(vm(f"m{index}", 1, 8)) is not None
        # All 32 GiB RAM used by 4 VMs on ONE compute brick.
        assert len(dc.idle_compute_bricks()) == 3
        assert len(dc.idle_memory_bricks()) == 0

    def test_ram_exhaustion_rejects(self):
        dc = DisaggregatedDatacenter(1, 32, 1, 8)
        dc.place(vm("a", 1, 8))
        assert dc.place(vm("b", 1, 1)) is None

    def test_memory_packing_avoids_idle_bricks(self):
        dc = DisaggregatedDatacenter(1, 32, 3, 8)
        dc.place(vm("a", 1, 4))
        placement = dc.place(vm("b", 1, 4))
        # Second VM fills brick 0 before waking any idle brick.
        assert list(placement.memory_shares) == [0]
        assert len(dc.idle_memory_bricks()) == 2

    def test_poweroff_fractions(self):
        dc = DisaggregatedDatacenter(4, 8, 4, 8)
        dc.place(vm("a", 8, 8))
        assert dc.compute_poweroff_fraction() == pytest.approx(0.75)
        assert dc.memory_poweroff_fraction() == pytest.approx(0.75)
        assert dc.poweroff_fraction() == pytest.approx(0.75)

    def test_used_totals(self):
        dc = DisaggregatedDatacenter(2, 8, 2, 8)
        dc.place(vm("a", 3, 5))
        assert dc.used_cores() == 3
        assert dc.used_ram_gib() == 5

    def test_invalid_dimensions(self):
        with pytest.raises(ConfigurationError):
            DisaggregatedDatacenter(1, 1, 0, 1)


class TestPoolingAdvantage:
    def test_disaggregated_hosts_what_conventional_cannot(self):
        """The §VI claim, in miniature: equal aggregates, memory-heavy VMs."""
        conventional = ConventionalDatacenter(2, 8, 8)
        disaggregated = DisaggregatedDatacenter(2, 8, 2, 8)
        demands = [vm(f"v{i}", 1, 5) for i in range(3)]
        conv_placed = sum(conventional.place(d) is not None for d in demands)
        disagg_placed = sum(
            disaggregated.place(d) is not None for d in demands)
        assert conv_placed == 2   # third VM: no node has 5 GiB left
        assert disagg_placed == 3  # pooled RAM covers all three
