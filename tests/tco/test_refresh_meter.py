"""Tests for the refresh-TCO extension and the energy meter."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.sim.engine import Simulator
from repro.tco.meter import EnergyMeter
from repro.tco.refresh import RefreshCostModel, RefreshStudy


class TestRefreshStudy:
    def test_disaggregation_saves_on_long_horizons(self):
        outcome = RefreshStudy(unit_count=64).run(horizon_years=12.0)
        # 12 years: conventional buys whole fleets at years 0/3/6/9 (4x),
        # disaggregated buys compute 4x but memory only 2x.
        assert outcome.conventional_refreshes == 4
        assert outcome.compute_brick_refreshes == 4
        assert outcome.memory_brick_refreshes == 2
        assert outcome.savings_fraction > 0.05

    def test_premium_eats_into_savings(self):
        cheap = RefreshStudy(
            64, RefreshCostModel(brick_cost_premium=1.0)).run(12.0)
        pricey = RefreshStudy(
            64, RefreshCostModel(brick_cost_premium=1.25)).run(12.0)
        assert cheap.savings_fraction > pricey.savings_fraction

    def test_no_savings_when_cadences_match(self):
        # Same refresh clock for both components: modularity only costs.
        model = RefreshCostModel(compute_refresh_years=3.0,
                                 memory_refresh_years=3.0,
                                 brick_cost_premium=1.10)
        outcome = RefreshStudy(64, model).run(12.0)
        assert outcome.savings_fraction < 0

    def test_short_horizon_single_buy(self):
        outcome = RefreshStudy(64).run(horizon_years=2.0)
        assert outcome.conventional_refreshes == 1
        assert outcome.compute_brick_refreshes == 1
        # Initial buy only: the premium makes bricks slightly pricier.
        assert outcome.savings_fraction < 0

    def test_savings_at_aligned_horizons(self):
        """Savings are a step function of the horizon: equal at every
        horizon aligned to both cadences, dipping in between (an extra
        conventional fleet buy lands before the memory bricks age out)."""
        study = RefreshStudy(64)
        aligned = [study.run(h).savings_fraction for h in (6.0, 12.0, 18.0)]
        assert all(s > 0 for s in aligned)
        assert aligned[0] == pytest.approx(aligned[1], abs=1e-9)
        assert aligned[1] == pytest.approx(aligned[2], abs=1e-9)
        misaligned = study.run(9.0).savings_fraction
        assert misaligned < aligned[0]

    def test_breakeven_premium_above_one(self):
        study = RefreshStudy(64)
        breakeven = study.breakeven_premium(12.0)
        assert breakeven > 1.0
        # At exactly the breakeven premium, costs match.
        model = RefreshCostModel(brick_cost_premium=breakeven)
        outcome = RefreshStudy(64, model).run(12.0)
        assert outcome.savings_fraction == pytest.approx(0.0, abs=1e-9)

    def test_total_scales_with_units(self):
        small = RefreshStudy(10).run(12.0)
        large = RefreshStudy(100).run(12.0)
        assert large.conventional_total == pytest.approx(
            10 * small.conventional_total)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RefreshStudy(0)
        with pytest.raises(ConfigurationError):
            RefreshCostModel(node_cost=0)
        with pytest.raises(ConfigurationError):
            RefreshCostModel(compute_cost_fraction=1.5)
        with pytest.raises(ConfigurationError):
            RefreshCostModel(brick_cost_premium=0.9)
        with pytest.raises(ConfigurationError):
            RefreshStudy(64).run(horizon_years=0)


class TestEnergyMeter:
    def test_piecewise_integration(self):
        meter = EnergyMeter()
        meter.sample(100.0, time_s=0.0)
        meter.sample(50.0, time_s=10.0)
        meter.sample(0.0, time_s=20.0)
        assert meter.energy_j(until_s=30.0) == pytest.approx(1500.0)

    def test_constant_power(self):
        meter = EnergyMeter()
        meter.sample(200.0, time_s=0.0)
        assert meter.energy_j(until_s=3600.0) == pytest.approx(720_000.0)
        assert meter.energy_kwh(until_s=3600.0) == pytest.approx(0.2)

    def test_mean_power(self):
        meter = EnergyMeter()
        meter.sample(100.0, time_s=0.0)
        meter.sample(300.0, time_s=10.0)
        assert meter.mean_power_w(until_s=20.0) == pytest.approx(200.0)

    def test_with_simulator_clock(self):
        sim = Simulator()
        meter = EnergyMeter(clock=lambda: sim.now)

        def scenario():
            meter.sample(100.0)
            yield sim.timeout(5.0)
            meter.sample(10.0)
            yield sim.timeout(5.0)

        sim.process(scenario())
        sim.run()
        assert meter.energy_j() == pytest.approx(550.0)

    def test_empty_meter(self):
        meter = EnergyMeter()
        assert meter.energy_j(until_s=100.0) == 0.0
        assert meter.mean_power_w(until_s=100.0) == 0.0

    def test_out_of_order_rejected(self):
        meter = EnergyMeter()
        meter.sample(10.0, time_s=5.0)
        with pytest.raises(ConfigurationError, match="time-ordered"):
            meter.sample(20.0, time_s=1.0)

    def test_negative_power_rejected(self):
        with pytest.raises(ConfigurationError):
            EnergyMeter().sample(-1.0, time_s=0.0)

    def test_no_clock_requires_explicit_time(self):
        with pytest.raises(ConfigurationError, match="no clock"):
            EnergyMeter().sample(10.0)

    def test_backwards_integration_rejected(self):
        meter = EnergyMeter()
        meter.sample(10.0, time_s=10.0)
        with pytest.raises(ConfigurationError):
            meter.energy_j(until_s=5.0)

    def test_reset(self):
        meter = EnergyMeter()
        meter.sample(10.0, time_s=0.0)
        meter.reset()
        assert meter.samples == []
