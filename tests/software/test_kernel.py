"""Unit tests for the baremetal kernel."""

from __future__ import annotations

import pytest

from repro.errors import HotplugError, HypervisorError
from repro.hardware.bricks import ComputeBrick
from repro.memory.segments import RemoteSegment
from repro.software.kernel import BaremetalKernel
from repro.units import gib, mib


@pytest.fixture
def kernel() -> BaremetalKernel:
    return BaremetalKernel(ComputeBrick("cb0", local_memory_bytes=gib(4)))


def make_segment(segment_id="seg0", size=gib(2)) -> RemoteSegment:
    return RemoteSegment(segment_id=segment_id, memory_brick_id="mb0",
                         offset=0, size=size, compute_brick_id="cb0")


class TestRamAccounting:
    def test_initial_ram_is_local(self, kernel):
        assert kernel.total_ram_bytes == gib(4)
        assert kernel.available_bytes == gib(4)

    def test_reserve_release(self, kernel):
        kernel.reserve_ram(gib(1))
        assert kernel.available_bytes == gib(3)
        kernel.release_ram(gib(1))
        assert kernel.available_bytes == gib(4)

    def test_over_reserve_rejected(self, kernel):
        with pytest.raises(HypervisorError, match="cannot reserve"):
            kernel.reserve_ram(gib(5))

    def test_over_release_rejected(self, kernel):
        kernel.reserve_ram(gib(1))
        with pytest.raises(HypervisorError):
            kernel.release_ram(gib(2))

    def test_non_positive_rejected(self, kernel):
        with pytest.raises(HypervisorError):
            kernel.reserve_ram(0)
        with pytest.raises(HypervisorError):
            kernel.release_ram(-1)


class TestAttachDetach:
    def test_attach_grows_ram(self, kernel):
        record, latency = kernel.attach_segment(make_segment())
        assert latency > 0
        assert kernel.total_ram_bytes == gib(6)
        assert record.window_base >= gib(4)
        assert record.window_size == gib(2)

    def test_attach_same_id_rejected(self, kernel):
        kernel.attach_segment(make_segment())
        with pytest.raises(HotplugError, match="already attached"):
            kernel.attach_segment(make_segment())

    def test_detach_shrinks_ram(self, kernel):
        kernel.attach_segment(make_segment())
        latency = kernel.detach_segment("seg0")
        assert latency > 0
        assert kernel.total_ram_bytes == gib(4)
        assert kernel.attached_segments == []

    def test_detach_unknown_rejected(self, kernel):
        with pytest.raises(HotplugError, match="not attached"):
            kernel.detach_segment("ghost")

    def test_detach_blocked_by_reservations(self, kernel):
        kernel.attach_segment(make_segment())
        kernel.reserve_ram(gib(5))  # uses part of the remote window
        with pytest.raises(HotplugError, match="reserved"):
            kernel.detach_segment("seg0")

    def test_detach_allowed_when_headroom_remains(self, kernel):
        kernel.attach_segment(make_segment())
        kernel.reserve_ram(gib(3))
        kernel.detach_segment("seg0")  # 4 GiB local still covers it
        assert kernel.total_ram_bytes == gib(4)

    def test_attach_uses_section_alignment(self):
        kernel = BaremetalKernel(ComputeBrick("cb0"),
                                 section_bytes=mib(128))
        record, _latency = kernel.attach_segment(
            make_segment(size=mib(100)))
        assert record.window_size == mib(128)

    def test_window_lookup(self, kernel):
        kernel.attach_segment(make_segment())
        assert kernel.window_of_segment("seg0") is not None
        assert kernel.window_of_segment("ghost") is None

    def test_multiple_segments_stack(self, kernel):
        first, _ = kernel.attach_segment(make_segment("a", gib(1)))
        second, _ = kernel.attach_segment(make_segment("b", gib(1)))
        assert second.window_base >= first.window_base + first.window_size
        assert kernel.total_ram_bytes == gib(6)

    def test_attach_latency_scales_with_size(self, kernel):
        _, small = kernel.attach_segment(make_segment("small", gib(1)))
        _, large = kernel.attach_segment(make_segment("large", gib(4)))
        assert large > small
