"""Unit tests for the balloon driver, SDM agent and scale-up controller."""

from __future__ import annotations

import pytest

from repro.errors import BalloonError, OrchestrationError, SegmentTableError
from repro.hardware.bricks import ComputeBrick
from repro.hardware.rmst import SegmentEntry
from repro.memory.segments import RemoteSegment, SegmentState
from repro.software.agent import SdmAgent
from repro.software.balloon import BalloonDriver
from repro.software.hypervisor import Hypervisor
from repro.software.kernel import BaremetalKernel
from repro.software.scaleup import (
    AttachTicket,
    ScaleUpController,
    ScaleUpRequest,
)
from repro.software.vm import VirtualMachine
from repro.units import gib, mib


class TestBalloon:
    @pytest.fixture
    def vm(self):
        vm = VirtualMachine("vm-0", 2, gib(4))
        vm.start()
        return vm

    def test_inflate_reduces_visible_ram(self, vm):
        balloon = BalloonDriver(vm)
        latency = balloon.inflate(gib(1))
        assert latency > 0
        assert vm.ram_bytes == gib(3)
        assert balloon.inflated_bytes == gib(1)

    def test_guaranteed_floor_enforced(self, vm):
        balloon = BalloonDriver(vm)  # floor defaults to 2 GiB
        with pytest.raises(BalloonError, match="guaranteed"):
            balloon.inflate(gib(3))

    def test_deflate_returns_memory(self, vm):
        balloon = BalloonDriver(vm)
        balloon.inflate(gib(1))
        latency = balloon.deflate(gib(1))
        assert latency > 0
        assert vm.ram_bytes == gib(4)

    def test_deflate_more_than_inflated_rejected(self, vm):
        balloon = BalloonDriver(vm)
        balloon.inflate(mib(512))
        with pytest.raises(BalloonError):
            balloon.deflate(gib(1))

    def test_available_for_inflation(self, vm):
        balloon = BalloonDriver(vm, guaranteed_bytes=gib(1))
        assert balloon.available_for_inflation() == gib(3)
        balloon.inflate(gib(3))
        assert balloon.available_for_inflation() == 0

    def test_inflate_faster_to_deflate(self, vm):
        balloon = BalloonDriver(vm)
        inflate_latency = balloon.inflate(gib(1))
        deflate_latency = balloon.deflate(gib(1))
        assert deflate_latency < inflate_latency

    def test_non_positive_rejected(self, vm):
        balloon = BalloonDriver(vm)
        with pytest.raises(BalloonError):
            balloon.inflate(0)
        with pytest.raises(BalloonError):
            balloon.deflate(0)


class TestSdmAgent:
    @pytest.fixture
    def agent(self):
        kernel = BaremetalKernel(ComputeBrick("cb0"))
        return SdmAgent(kernel)

    def entry(self, agent):
        return SegmentEntry(
            "seg0", base=agent.kernel.brick.local_memory_bytes,
            size=gib(1), remote_brick_id="mb0", remote_offset=0,
            egress_port_id="cb0.cbn0")

    def test_program_and_unprogram(self, agent):
        latency = agent.program_segment(self.entry(agent))
        assert latency > 0
        assert len(agent.kernel.brick.rmst) == 1
        agent.unprogram_segment("seg0")
        assert len(agent.kernel.brick.rmst) == 0
        assert agent.configs_applied == 2

    def test_program_duplicate_propagates(self, agent):
        agent.program_segment(self.entry(agent))
        with pytest.raises(SegmentTableError):
            agent.program_segment(self.entry(agent))

    def test_attach_wrong_brick_rejected(self, agent):
        segment = RemoteSegment("s", "mb0", 0, gib(1),
                                compute_brick_id="other-brick")
        with pytest.raises(OrchestrationError, match="agent runs on"):
            agent.attach_segment(segment)

    def test_attach_detach_roundtrip(self, agent):
        segment = RemoteSegment("s", "mb0", 0, gib(1),
                                compute_brick_id="cb0")
        attach_latency = agent.attach_segment(segment)
        assert attach_latency > agent.timings.rpc_latency_s
        detach_latency = agent.detach_segment("s")
        assert detach_latency > 0


class _StubAllocator:
    """Deterministic MemoryAllocator for controller tests."""

    def __init__(self, kernel: BaremetalKernel) -> None:
        self.kernel = kernel
        self.released: list[str] = []
        self._count = 0

    def allocate(self, compute_brick_id, vm_id, size_bytes):
        segment = RemoteSegment(
            f"seg-{self._count}", "mb0", offset=self._count * size_bytes,
            size=size_bytes, compute_brick_id=compute_brick_id, vm_id=vm_id)
        window = self.kernel.address_map.reserve_window(
            segment.segment_id, size_bytes)
        entry = SegmentEntry(
            segment.segment_id, base=window.base, size=window.size,
            remote_brick_id="mb0", remote_offset=segment.offset,
            egress_port_id=f"{compute_brick_id}.cbn0")
        self._count += 1
        return AttachTicket(segment, entry, control_latency_s=0.01)

    def release(self, segment_id):
        self.released.append(segment_id)
        return 0.005


class TestScaleUpController:
    @pytest.fixture
    def controller(self):
        kernel = BaremetalKernel(
            ComputeBrick("cb0", core_count=8, local_memory_bytes=gib(4)))
        hypervisor = Hypervisor(kernel)
        hypervisor.spawn_vm("vm-0", 2, gib(2))
        agent = SdmAgent(kernel)
        return ScaleUpController(hypervisor, agent, _StubAllocator(kernel))

    def test_scale_up_pipeline_steps(self, controller):
        result = controller.scale_up(ScaleUpRequest("vm-0", gib(1)))
        assert set(result.steps) == {
            "controller", "sdm", "glue_config", "kernel_attach", "hypervisor"}
        assert result.total_latency_s > 0
        assert result.segment.state is SegmentState.ACTIVE
        assert controller.hypervisor.vm("vm-0").ram_bytes == gib(3)

    def test_scale_up_grows_kernel_ram(self, controller):
        controller.scale_up(ScaleUpRequest("vm-0", gib(1)))
        assert controller.agent.kernel.total_ram_bytes == gib(5)

    def test_scale_down_reverses(self, controller):
        result = controller.scale_up(ScaleUpRequest("vm-0", gib(1)))
        steps = controller.scale_down("vm-0", result.segment.segment_id)
        assert set(steps) == {
            "controller", "hypervisor", "kernel_detach", "glue_config", "sdm"}
        assert result.segment.state is SegmentState.RELEASED
        assert controller.attached_segments() == []
        assert controller.allocator.released == [result.segment.segment_id]

    def test_scale_down_unknown_segment(self, controller):
        with pytest.raises(OrchestrationError, match="not attached"):
            controller.scale_down("vm-0", "ghost")

    def test_unknown_vm_rejected(self, controller):
        with pytest.raises(Exception):
            controller.scale_up(ScaleUpRequest("ghost", gib(1)))

    def test_requests_counter(self, controller):
        result = controller.scale_up(ScaleUpRequest("vm-0", gib(1)))
        controller.scale_down("vm-0", result.segment.segment_id)
        assert controller.requests_served == 2

    def test_zero_size_request_rejected(self):
        with pytest.raises(OrchestrationError):
            ScaleUpRequest("vm-0", 0)
