"""Unit tests for memory sections and the hotplug state machine."""

from __future__ import annotations

import pytest

from repro.errors import HotplugError
from repro.software.hotplug import HotplugTimings, MemoryHotplug
from repro.software.pages import (
    DEFAULT_SECTION_BYTES,
    MemorySection,
    SectionState,
)
from repro.units import gib, mib


class TestMemorySection:
    def test_lifecycle(self):
        section = MemorySection(0)
        section.transition(SectionState.PRESENT)
        section.transition(SectionState.ONLINE)
        assert section.is_online
        section.transition(SectionState.PRESENT)
        section.transition(SectionState.ABSENT)

    def test_absent_to_online_illegal(self):
        with pytest.raises(HotplugError, match="illegal"):
            MemorySection(0).transition(SectionState.ONLINE)

    def test_online_to_absent_illegal(self):
        section = MemorySection(0, state=SectionState.ONLINE)
        with pytest.raises(HotplugError):
            section.transition(SectionState.ABSENT)

    def test_base_address(self):
        section = MemorySection(3, section_bytes=mib(128))
        assert section.base_address == 3 * mib(128)

    def test_negative_index_rejected(self):
        with pytest.raises(HotplugError):
            MemorySection(-1)


class TestSectionSpan:
    def test_aligned_range(self):
        hotplug = MemoryHotplug(mib(128))
        span = hotplug.section_span(gib(1), mib(256))
        assert list(span) == [8, 9]

    def test_misaligned_base_rejected(self):
        hotplug = MemoryHotplug(mib(128))
        with pytest.raises(HotplugError, match="not aligned"):
            hotplug.section_span(mib(64), mib(128))

    def test_misaligned_size_rejected(self):
        hotplug = MemoryHotplug(mib(128))
        with pytest.raises(HotplugError, match="not aligned"):
            hotplug.section_span(0, mib(100))


class TestOperations:
    @pytest.fixture
    def hotplug(self) -> MemoryHotplug:
        return MemoryHotplug(mib(128))

    def test_add_marks_present(self, hotplug):
        latency = hotplug.add_memory(0, mib(256))
        assert latency > 0
        assert hotplug.present_bytes() == mib(256)
        assert hotplug.online_bytes() == 0

    def test_add_twice_rejected_atomically(self, hotplug):
        hotplug.add_memory(0, mib(128))
        with pytest.raises(HotplugError, match="already"):
            hotplug.add_memory(0, mib(256))
        # Nothing of the second range was touched.
        assert hotplug.section(1).state is SectionState.ABSENT

    def test_online_full_flow(self, hotplug):
        hotplug.add_memory(0, mib(256))
        hotplug.online(0, mib(256))
        assert hotplug.online_bytes() == mib(256)

    def test_online_absent_rejected(self, hotplug):
        with pytest.raises(HotplugError, match="cannot online"):
            hotplug.online(0, mib(128))

    def test_offline_then_remove(self, hotplug):
        hotplug.add_memory(0, mib(128))
        hotplug.online(0, mib(128))
        hotplug.offline(0, mib(128))
        assert hotplug.online_bytes() == 0
        hotplug.remove_memory(0, mib(128))
        assert hotplug.present_bytes() == 0

    def test_remove_online_rejected(self, hotplug):
        hotplug.add_memory(0, mib(128))
        hotplug.online(0, mib(128))
        with pytest.raises(HotplugError, match="offline it first"):
            hotplug.remove_memory(0, mib(128))

    def test_offline_not_online_rejected(self, hotplug):
        hotplug.add_memory(0, mib(128))
        with pytest.raises(HotplugError):
            hotplug.offline(0, mib(128))

    def test_operations_counter(self, hotplug):
        hotplug.add_memory(0, mib(128))
        hotplug.online(0, mib(128))
        assert hotplug.operations == 2

    def test_sections_in_state(self, hotplug):
        hotplug.add_memory(0, mib(256))
        hotplug.online(0, mib(128))
        assert len(hotplug.sections_in_state(SectionState.ONLINE)) == 1
        assert len(hotplug.sections_in_state(SectionState.PRESENT)) == 1


class TestLatencyModel:
    def test_latency_scales_with_sections(self):
        hotplug = MemoryHotplug(mib(128))
        one = hotplug.add_memory(0, mib(128))
        eight = hotplug.add_memory(gib(1), gib(1))
        overhead = hotplug.timings.operation_overhead_s
        assert (eight - overhead) == pytest.approx(8 * (one - overhead))

    def test_offline_slower_than_online(self):
        timings = HotplugTimings()
        assert timings.offline_per_section_s > timings.online_per_section_s

    def test_bigger_sections_fewer_operations(self):
        small = MemoryHotplug(mib(128))
        large = MemoryHotplug(gib(1))
        small_latency = small.add_memory(0, gib(2)) + small.online(0, gib(2))
        large_latency = large.add_memory(0, gib(2)) + large.online(0, gib(2))
        # 1 GiB sections cover the range with 8x fewer sections.
        assert large_latency < small_latency

    def test_custom_timings_respected(self):
        timings = HotplugTimings(add_per_section_s=1.0,
                                 operation_overhead_s=0.0)
        hotplug = MemoryHotplug(mib(128), timings)
        assert hotplug.add_memory(0, mib(256)) == pytest.approx(2.0)

    def test_default_section_size(self):
        assert MemoryHotplug().section_bytes == DEFAULT_SECTION_BYTES
