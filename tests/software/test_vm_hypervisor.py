"""Unit tests for VMs and the hypervisor."""

from __future__ import annotations

import pytest

from repro.errors import HypervisorError
from repro.hardware.bricks import ComputeBrick
from repro.software.hypervisor import Hypervisor
from repro.software.kernel import BaremetalKernel
from repro.software.vm import VirtualMachine, VmState
from repro.units import gib, mib


@pytest.fixture
def hypervisor() -> Hypervisor:
    kernel = BaremetalKernel(
        ComputeBrick("cb0", core_count=8, local_memory_bytes=gib(16)))
    return Hypervisor(kernel)


class TestVirtualMachine:
    def test_lifecycle(self):
        vm = VirtualMachine("vm-0", vcpus=2, ram_bytes=gib(2))
        assert vm.state is VmState.PROVISIONING
        vm.start()
        assert vm.is_running
        vm.terminate()
        assert vm.state is VmState.TERMINATED

    def test_illegal_transition(self):
        vm = VirtualMachine("vm-0", 1, gib(1))
        vm.start()
        vm.terminate()
        with pytest.raises(HypervisorError):
            vm.start()

    def test_pause_resume(self):
        vm = VirtualMachine("vm-0", 1, gib(1))
        vm.start()
        vm.transition(VmState.PAUSED)
        vm.transition(VmState.RUNNING)
        assert vm.is_running

    def test_accept_dimm_grows_visible_ram(self):
        vm = VirtualMachine("vm-0", 1, gib(2))
        vm.start()
        latency = vm.accept_dimm(gib(1))
        assert latency > 0
        assert vm.ram_bytes == gib(3)

    def test_accept_dimm_requires_running(self):
        vm = VirtualMachine("vm-0", 1, gib(2))
        with pytest.raises(HypervisorError, match="cannot hotplug"):
            vm.accept_dimm(gib(1))

    def test_guest_hotplug_latency_scales(self):
        vm = VirtualMachine("vm-0", 1, gib(2))
        vm.start()
        small = vm.accept_dimm(mib(256))
        large = vm.accept_dimm(gib(2))
        assert large > small

    def test_surrender_cannot_undercut_initial(self):
        vm = VirtualMachine("vm-0", 1, gib(2))
        vm.start()
        vm.accept_dimm(gib(1))
        vm.surrender_ram(gib(1))
        with pytest.raises(HypervisorError, match="initial"):
            vm.surrender_ram(gib(1))

    def test_invalid_construction(self):
        with pytest.raises(HypervisorError):
            VirtualMachine("vm-0", 0, gib(1))
        with pytest.raises(HypervisorError):
            VirtualMachine("vm-0", 1, 0)


class TestHypervisorSpawn:
    def test_spawn_reserves_resources(self, hypervisor):
        vm, latency = hypervisor.spawn_vm("vm-0", vcpus=4, ram_bytes=gib(8))
        assert latency > 0
        assert vm.is_running
        assert hypervisor.cores_in_use() == 4
        assert hypervisor.kernel.available_bytes == gib(8)

    def test_core_admission_control(self, hypervisor):
        hypervisor.spawn_vm("vm-0", vcpus=6, ram_bytes=gib(1))
        with pytest.raises(HypervisorError, match="cores"):
            hypervisor.spawn_vm("vm-1", vcpus=4, ram_bytes=gib(1))

    def test_ram_admission_control(self, hypervisor):
        with pytest.raises(HypervisorError, match="reserve"):
            hypervisor.spawn_vm("vm-0", vcpus=1, ram_bytes=gib(32))

    def test_duplicate_id_rejected(self, hypervisor):
        hypervisor.spawn_vm("vm-0", 1, gib(1))
        with pytest.raises(HypervisorError, match="already in use"):
            hypervisor.spawn_vm("vm-0", 1, gib(1))

    def test_terminate_releases(self, hypervisor):
        hypervisor.spawn_vm("vm-0", 4, gib(8))
        hypervisor.terminate_vm("vm-0")
        assert hypervisor.cores_in_use() == 0
        assert hypervisor.kernel.available_bytes == gib(16)
        assert hypervisor.vms == []

    def test_unknown_vm_lookup(self, hypervisor):
        with pytest.raises(HypervisorError, match="hosts no VM"):
            hypervisor.vm("ghost")


class TestDimmHotplug:
    def test_hotplug_dimm_full_flow(self, hypervisor):
        hypervisor.spawn_vm("vm-0", 2, gib(4))
        dimm, latency = hypervisor.hotplug_dimm("vm-0", gib(2), "seg-0")
        assert latency > hypervisor.timings.dimm_attach_s
        assert dimm.segment_id == "seg-0"
        assert hypervisor.vm("vm-0").ram_bytes == gib(6)
        assert hypervisor.kernel.available_bytes == gib(10)

    def test_dimm_slots_exhaustion(self, hypervisor):
        hypervisor.spawn_vm("vm-0", 1, gib(1))
        limited = Hypervisor(hypervisor.kernel, dimm_slots=1)
        # Use a separate hypervisor instance with 1 slot for clarity.
        limited.spawn_vm("vm-1", 1, gib(1))
        limited.hotplug_dimm("vm-1", mib(128))
        with pytest.raises(HypervisorError, match="DIMM slots"):
            limited.hotplug_dimm("vm-1", mib(128))

    def test_hotplug_respects_kernel_capacity(self, hypervisor):
        hypervisor.spawn_vm("vm-0", 1, gib(15))
        with pytest.raises(HypervisorError):
            hypervisor.hotplug_dimm("vm-0", gib(4))

    def test_failed_guest_attach_rolls_back_reservation(self, hypervisor):
        vm, _ = hypervisor.spawn_vm("vm-0", 1, gib(1))
        vm.transition(VmState.PAUSED)  # guest cannot accept DIMMs now
        available = hypervisor.kernel.available_bytes
        with pytest.raises(HypervisorError):
            hypervisor.hotplug_dimm("vm-0", gib(1))
        assert hypervisor.kernel.available_bytes == available

    def test_unplug_dimm(self, hypervisor):
        hypervisor.spawn_vm("vm-0", 1, gib(2))
        dimm, _ = hypervisor.hotplug_dimm("vm-0", gib(1))
        latency = hypervisor.unplug_dimm("vm-0", dimm.dimm_id)
        assert latency > 0
        assert hypervisor.vm("vm-0").ram_bytes == gib(2)
        assert hypervisor.dimms_of("vm-0") == []

    def test_unplug_unknown_dimm(self, hypervisor):
        hypervisor.spawn_vm("vm-0", 1, gib(1))
        with pytest.raises(HypervisorError, match="no DIMM"):
            hypervisor.unplug_dimm("vm-0", "ghost")

    def test_guest_ram_accounting(self, hypervisor):
        hypervisor.spawn_vm("vm-0", 1, gib(2))
        hypervisor.spawn_vm("vm-1", 1, gib(3))
        hypervisor.hotplug_dimm("vm-0", gib(1))
        assert hypervisor.guest_ram_bytes() == gib(6)
