"""Correlated failure domains: hazards, blast radius, seed replay.

Pins the domain layer's contracts: a domain event takes every member
down in one instant and repairs them together; a member repaired
independently stays invisible until every enclosing domain clears (the
early-resurrection regression); domain streams never perturb the
per-class schedules, so PR 7 seeds replay bit-identically with domains
layered on; and the hazard plumbing (exponential/Weibull, CLI specs)
validates its inputs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import FaultError
from repro.faults import (
    ExponentialHazard,
    FailureDomain,
    FaultClass,
    FaultInjector,
    FaultSpec,
    WeibullHazard,
    pod_network_domains,
    rack_power_domains,
)
from repro.faults.domains import coerce_hazard
from repro.federation import build_federation


def build_fed(pods=2, **kwargs):
    kwargs.setdefault("racks_per_pod", 2)
    return build_federation(pods, **kwargs)


def tiny_domain(name="dom", members=None, mtbf_s=50.0, mttr_s=5.0,
                hazard=None):
    if members is None:
        members = ((FaultClass.MEMORY_BRICK, "pod0:pod0.rack0.mb0"),)
    return FailureDomain(name=name, kind="power", members=members,
                         mtbf_s=mtbf_s, mttr_s=mttr_s, hazard=hazard)


class TestHazards:
    def test_exponential_draw_uses_the_stream(self):
        draws = ExponentialHazard(10.0).draw(np.random.default_rng(1))
        assert draws > 0

    def test_weibull_shape_one_matches_exponential_scale(self):
        # Weibull(shape=1) is the exponential: same stream, same draws.
        weibull = WeibullHazard(scale_s=10.0, shape=1.0)
        expo = ExponentialHazard(mean_s=10.0)
        assert weibull.draw(np.random.default_rng(3)) == pytest.approx(
            expo.draw(np.random.default_rng(3)))

    @pytest.mark.parametrize("bad", [0.0, -1.0])
    def test_hazard_parameters_must_be_positive(self, bad):
        with pytest.raises(FaultError):
            ExponentialHazard(bad)
        with pytest.raises(FaultError):
            WeibullHazard(scale_s=bad, shape=1.0)
        with pytest.raises(FaultError):
            WeibullHazard(scale_s=1.0, shape=bad)

    def test_coerce_hazard_parses_both_kinds(self):
        weibull = coerce_hazard("weibull:30:0.7")
        assert isinstance(weibull, WeibullHazard)
        assert (weibull.scale_s, weibull.shape) == (30.0, 0.7)
        expo = coerce_hazard("exponential:40")
        assert isinstance(expo, ExponentialHazard)
        assert expo.mean_s == 40.0

    @pytest.mark.parametrize("spec", [
        "weibull:30", "weibull:a:b", "exponential:", "bathtub:1:2"])
    def test_coerce_hazard_rejects_malformed_specs(self, spec):
        with pytest.raises(FaultError):
            coerce_hazard(spec)


class TestFailureDomain:
    def test_requires_members_and_positive_clocks(self):
        with pytest.raises(FaultError):
            tiny_domain(members=())
        with pytest.raises(FaultError):
            tiny_domain(mtbf_s=0.0)
        with pytest.raises(FaultError):
            tiny_domain(mttr_s=-1.0)

    def test_effective_hazard_defaults_to_exponential_mtbf(self):
        assert tiny_domain(mtbf_s=77.0).effective_hazard == \
            ExponentialHazard(77.0)
        bathtub = WeibullHazard(scale_s=30.0, shape=0.7)
        assert tiny_domain(hazard=bathtub).effective_hazard is bathtub

    def test_duplicate_domain_names_are_rejected(self):
        fed = build_fed()
        with pytest.raises(FaultError, match="duplicate"):
            FaultInjector(fed, classes=(),
                          domains=(tiny_domain(), tiny_domain()))


class TestBuilders:
    def test_rack_power_domains_cover_every_rack(self):
        fed = build_fed(2)
        domains = {d.name: d for d in rack_power_domains(fed)}
        assert set(domains) == {
            "power.pod0.pod0.rack0", "power.pod0.pod0.rack1",
            "power.pod1.pod1.rack0", "power.pod1.pod1.rack1"}
        members = domains["power.pod0.pod0.rack0"].member_set
        # The rack's bricks and its uplink trip together.
        assert (FaultClass.RACK_UPLINK, "pod0:pod0.rack0") in members
        assert any(klass is FaultClass.MEMORY_BRICK
                   and target.startswith("pod0:pod0.rack0.")
                   for klass, target in members)
        assert not any(target.startswith("pod0:pod0.rack1")
                       for _, target in members)

    def test_pod_network_domains_group_switch_with_uplinks(self):
        fed = build_fed(2)
        domains = {d.name: d for d in pod_network_domains(fed)}
        assert set(domains) == {"net.pod0", "net.pod1"}
        assert domains["net.pod0"].member_set == {
            (FaultClass.SWITCH, "pod0"),
            (FaultClass.RACK_UPLINK, "pod0:pod0.rack0"),
            (FaultClass.RACK_UPLINK, "pod0:pod0.rack1")}


class TestDomainOutages:
    def test_fire_takes_all_members_down_and_repairs_together(self):
        fed = build_fed(1)
        injector = FaultInjector(
            fed, classes=(), domains=rack_power_domains(fed)).install()
        outage = injector.fire_domain("power.pod0.pod0.rack0",
                                      repair_after_s=5.0, scripted=True)
        assert outage is not None
        failed = {(e.klass, e.target) for e in injector.active_faults}
        assert failed == set(outage.injected) != set()
        assert injector.active_domains == [outage]
        # Refiring an active domain is a no-op.
        assert injector.fire_domain("power.pod0.pod0.rack0",
                                    repair_after_s=5.0) is None
        fed.sim.run(until=6.0)
        assert injector.active_faults == []
        assert injector.active_domains == []
        assert injector.quiescent

    def test_unknown_domain_name_is_rejected(self):
        fed = build_fed(1)
        injector = FaultInjector(fed, classes=()).install()
        with pytest.raises(FaultError, match="unknown domain"):
            injector.fire_domain("power.nowhere", repair_after_s=1.0)

    def test_member_repair_defers_until_the_domain_clears(self):
        # The early-resurrection regression: a brick whose own repair
        # lands while its power domain is still dark must stay down
        # until the domain clears — power off means off.
        fed = build_fed(1)
        injector = FaultInjector(
            fed, classes=(), self_heal=False,
            domains=rack_power_domains(fed)).install()
        brick = "pod0:pod0.rack0.mb0"
        injector.inject("memory_brick", brick, repair_after_s=2.0,
                        scripted=True)
        injector.fire_domain("power.pod0.pod0.rack0",
                             repair_after_s=10.0, scripted=True)
        fed.sim.run(until=5.0)  # past the brick's own repair horizon
        assert any(e.target == brick
                   for e in injector.active_faults)
        fed.sim.run(until=11.0)  # past the domain's clear instant
        assert injector.active_faults == []

    def test_domain_events_fire_from_their_own_mtbf_clock(self):
        fed = build_fed(1)
        injector = FaultInjector(
            fed, classes=(), seed=11,
            domains=rack_power_domains(fed, mtbf_s=20.0,
                                       mttr_s=2.0)).install()
        fed.sim.run(until=200.0)
        assert injector.domain_outages_fired > 0
        assert injector.metrics.fault_count() > 0

    def test_weibull_domains_change_the_schedule_deterministically(self):
        def outage_times(hazard):
            fed = build_fed(1)
            injector = FaultInjector(
                fed, classes=(), seed=11,
                domains=rack_power_domains(
                    fed, mtbf_s=20.0, mttr_s=2.0,
                    hazard=hazard)).install()
            fed.sim.run(until=200.0)
            return [e.failed_s for e in injector.metrics.events]

        bathtub = WeibullHazard(scale_s=20.0, shape=0.7)
        assert outage_times(bathtub) == outage_times(bathtub)
        assert outage_times(bathtub) != outage_times(None)

    def test_domains_never_perturb_per_class_streams(self):
        # A PR 7 seed must replay its independent-failure schedule
        # bit-identically with domains layered on: domains draw from
        # their own faults.domain.* streams.  (Domain MTBF far beyond
        # the horizon isolates stream bookkeeping from blast-radius
        # interactions on the shared target population.)
        def brick_schedule(with_domains):
            fed = build_fed(2)
            domains = (rack_power_domains(fed, mtbf_s=1e9, mttr_s=2.0)
                       if with_domains else ())
            injector = FaultInjector(
                fed, seed=7, classes=("memory_brick",),
                specs={FaultClass.MEMORY_BRICK: FaultSpec(
                    FaultClass.MEMORY_BRICK, mtbf_s=10.0, mttr_s=1.0)},
                domains=domains).install()
            fed.sim.run(until=150.0)
            return [(e.target, e.failed_s)
                    for e in injector.metrics.events]

        plain = brick_schedule(False)
        assert plain  # the horizon is long enough to see brick faults
        assert brick_schedule(True) == plain
