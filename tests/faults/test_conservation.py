"""Conservation under failure + self-healing: nothing strands.

The hypothesis property the ISSUE names: whatever fault fires and
however the reaction runs (takeover, evacuation, re-admission — or no
reaction at all), once the dust settles no segment capacity is leaked
or double-booked on any pod and no :class:`PodClaim` is stranded in
the placer — and after every tenant departs, the pools drain to zero
and the committed ledger is empty.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import FaultInjector
from repro.federation import build_federation
from repro.orchestration.requests import VmAllocationRequest
from repro.units import gib


def boot_tenant(fed, tenant_id, pod_id, ram_bytes=gib(2)):
    request = fed.pods[pod_id].plane.submit(
        "boot", tenant_id,
        request=VmAllocationRequest(vm_id=tenant_id, vcpus=1,
                                    ram_bytes=ram_bytes))
    fed._tenant_pod[tenant_id] = pod_id
    fed.sim.run()
    assert request.record.ok, request.record.note
    claim = fed.placer.reserve(pod_id, ram_bytes, 1,
                               tenant_id=tenant_id)
    fed.placer.commit(claim)


def pool_consistent(fed):
    for pod in fed.pods.values():
        entries = pod.system.sdm.registry.memory_entries
        allocated = sum(e.allocator.allocated_bytes for e in entries)
        live = sum(s.size for s in pod.system.sdm.live_segments)
        assert allocated == live, pod.pod_id
        for entry in entries:
            entry.allocator.check_invariants()
        assert getattr(pod.system.sdm, "pending_holds", []) == []
    assert fed.placer.pending_claims == []


def depart_all(fed, tenants):
    for tenant_id in tenants:
        fed.sim.process(fed.submit_process("depart", tenant_id))
    fed.sim.run()


durations = st.floats(min_value=1.0, max_value=20.0,
                      allow_nan=False, allow_infinity=False)


@settings(max_examples=15, deadline=None)
@given(tenant_count=st.integers(min_value=1, max_value=3),
       self_heal=st.booleans(), repair_after=durations)
def test_pod_loss_conserves_capacity_and_claims(tenant_count, self_heal,
                                                repair_after):
    fed = build_federation(2, racks_per_pod=1)
    tenants = [f"t{i}" for i in range(tenant_count)]
    for tenant_id in tenants:
        boot_tenant(fed, tenant_id, "pod0")
    injector = FaultInjector(fed, classes=(), self_heal=self_heal)
    injector.inject("pod", "pod0", repair_after_s=repair_after)
    fed.sim.run()
    assert injector.quiescent
    pool_consistent(fed)
    # Every tenant still runs somewhere, backed by one ledger claim.
    for tenant_id in tenants:
        pod_id = fed.pod_of(tenant_id)
        assert fed.placer.ledger_claim(tenant_id).pod_id == pod_id
        assert pod_id in [v for v in (p.pod_id for p in fed.pods.values())
                          if fed.pods[v].alive]
    depart_all(fed, tenants)
    pool_consistent(fed)
    for pod in fed.pods.values():
        assert pod.system.vms == []
        assert all(e.allocator.allocated_bytes == 0
                   for e in pod.system.sdm.registry.memory_entries)
    assert all(fed.placer.ledger_claim(t) is None for t in tenants)
    assert fed.placer.ledger_for_pod("pod0") == []
    assert fed.placer.ledger_for_pod("pod1") == []


@settings(max_examples=15, deadline=None)
@given(self_heal=st.booleans(), repair_after=durations,
       klass=st.sampled_from(["memory_brick", "shard"]))
def test_pod_internal_faults_conserve_capacity(self_heal, repair_after,
                                               klass):
    fed = build_federation(1, racks_per_pod=2)
    tenants = ["t0", "t1"]
    for tenant_id in tenants:
        boot_tenant(fed, tenant_id, "pod0")
    pod = fed.pods["pod0"]
    sdm = pod.system.sdm
    if klass == "memory_brick":
        segment = next(s for s in sdm.live_segments if s.vm_id == "t0")
        target = f"pod0:{segment.memory_brick_id}"
    else:
        rack = sdm.registry.rack_of(pod.system.hosting("t0").brick_id)
        target = f"pod0:{sdm.shard_of_rack(rack)}"
    injector = FaultInjector(fed, classes=(), self_heal=self_heal)
    injector.inject(klass, target, repair_after_s=repair_after)
    fed.sim.run()
    assert injector.quiescent
    assert pod.plane.degraded == set()
    assert sdm.live_shards() == sdm.shard_names()
    pool_consistent(fed)
    depart_all(fed, tenants)
    pool_consistent(fed)
    assert pod.system.vms == []
    assert all(e.allocator.allocated_bytes == 0
               for e in sdm.registry.memory_entries)
