"""Per-tier reactions: what each layer does when its component dies.

Each test boots real tenants through a federation, injects one fault
manually (the injector is constructed but never installed, so no MTBF
timers run and a bare ``sim.run()`` drains to the repair) and asserts
the tier's reaction — degrade, evacuate, re-queue, take over,
re-admit — plus the pool consistency every path must preserve.
"""

from __future__ import annotations

from repro.datamover.scheduler import LinkScheduler, TransferClass
from repro.faults import FaultInjector
from repro.federation import build_federation
from repro.orchestration.requests import VmAllocationRequest
from repro.units import gib, mib


def build_fed(pods=1, **kwargs):
    kwargs.setdefault("racks_per_pod", 2)
    return build_federation(pods, **kwargs)


def boot_tenant(fed, tenant_id, pod_id, ram_bytes=gib(2), vcpus=1,
                ledger=False):
    request = fed.pods[pod_id].plane.submit(
        "boot", tenant_id,
        request=VmAllocationRequest(vm_id=tenant_id, vcpus=vcpus,
                                    ram_bytes=ram_bytes))
    fed._tenant_pod[tenant_id] = pod_id
    fed.sim.run()
    assert request.record.ok, request.record.note
    if ledger:
        # What a trace-driven admission leaves behind: the committed
        # claim re-admission replays after a pod loss.
        claim = fed.placer.reserve(pod_id, ram_bytes, vcpus,
                                   tenant_id=tenant_id)
        fed.placer.commit(claim)
    return request


def drive(fed, generator):
    holder = {}

    def runner():
        holder["result"] = yield from generator

    fed.sim.process(runner())
    fed.sim.run()
    return holder.get("result")


def pool_consistent(fed):
    """Allocated bytes == live segment bytes on every pod; no claims."""
    for pod in fed.pods.values():
        entries = pod.system.sdm.registry.memory_entries
        allocated = sum(e.allocator.allocated_bytes for e in entries)
        live = sum(s.size for s in pod.system.sdm.live_segments)
        assert allocated == live, pod.pod_id
        for entry in entries:
            entry.allocator.check_invariants()
        assert getattr(pod.system.sdm, "pending_holds", []) == []
    assert fed.placer.pending_claims == []


def tenant_segment(fed, pod_id, tenant_id):
    sdm = fed.pods[pod_id].system.sdm
    return next(s for s in sdm.live_segments if s.vm_id == tenant_id)


def strand_segment_across_racks(fed, pod_id, tenant_id):
    """Boot the tenant and move its segment into the other rack,
    returning ``(home_rack, remote_rack)`` — the setup for
    uplink/switch faults."""
    boot_tenant(fed, tenant_id, pod_id)
    pod = fed.pods[pod_id]
    sdm = pod.system.sdm
    registry = sdm.registry
    segment = tenant_segment(fed, pod_id, tenant_id)
    home = registry.rack_of(segment.compute_brick_id)
    remote_candidates = [c for c in registry.memory_availability()
                         if c.rack_id != home]
    target = sdm.policy.select_memory_brick(remote_candidates,
                                            segment.size)
    assert target is not None
    drive(fed, sdm.relocate_segment_process(pod.plane.ctx,
                                            segment.segment_id, target))
    segment = tenant_segment(fed, pod_id, tenant_id)
    remote = registry.rack_of(segment.memory_brick_id)
    assert remote != home
    return home, remote


class TestMemoryBrick:
    def test_self_heal_evacuates_the_stranded_segments(self):
        fed = build_fed(1)
        boot_tenant(fed, "t0", "pod0")
        pod = fed.pods["pod0"]
        brick = tenant_segment(fed, "pod0", "t0").memory_brick_id
        injector = FaultInjector(fed, classes=())
        event = injector.inject("memory_brick", f"pod0:{brick}",
                                repair_after_s=30.0)
        assert event.impacted_tenants == ("t0",)
        fed.sim.run(until=fed.sim.now + 10.0)  # heal done, repair not
        assert event.healed_tenants == ("t0",)
        assert "t0" not in pod.plane.degraded
        assert tenant_segment(fed, "pod0", "t0").memory_brick_id != brick
        fed.sim.run()
        assert injector.quiescent
        # Healed in about a copy, not the 30 s hardware repair.
        assert injector.metrics.tenant_seconds_unavailable < 30.0
        pool_consistent(fed)

    def test_without_self_heal_downtime_is_the_full_repair(self):
        fed = build_fed(1)
        boot_tenant(fed, "t0", "pod0")
        brick = tenant_segment(fed, "pod0", "t0").memory_brick_id
        injector = FaultInjector(fed, classes=(), self_heal=False)
        event = injector.inject("memory_brick", f"pod0:{brick}",
                                repair_after_s=30.0)
        fed.sim.run()
        assert event.healed_tenants == ()
        assert injector.metrics.tenant_seconds_unavailable == 30.0
        # The repaired brick serves again; the segment never moved.
        assert tenant_segment(fed, "pod0", "t0").memory_brick_id == brick
        assert "t0" not in fed.pods["pod0"].plane.degraded
        pool_consistent(fed)


class TestRackUplink:
    def test_self_heal_relocates_reachable_tenants_segments(self):
        fed = build_fed(1)
        home, remote = strand_segment_across_racks(fed, "pod0", "t0")
        pod = fed.pods["pod0"]
        registry = pod.system.sdm.registry
        injector = FaultInjector(fed, classes=())
        event = injector.inject("rack_uplink", f"pod0:{remote}",
                                repair_after_s=30.0)
        # t0's VM runs in the other rack, so it is cut off, reachable,
        # and healable by re-materializing the segment.
        assert event.impacted_tenants == ("t0",)
        fed.sim.run(until=fed.sim.now + 10.0)
        assert event.healed_tenants == ("t0",)
        assert "t0" not in pod.plane.degraded
        segment = tenant_segment(fed, "pod0", "t0")
        assert registry.rack_of(segment.memory_brick_id) != remote
        fed.sim.run()
        assert injector.quiescent
        # The cut-off rack's bricks rejoined the placement pool.
        assert all(not e.failed for e in registry.memory_entries)
        pool_consistent(fed)

    def test_registered_link_parks_and_requeues_transfers(self):
        fed = build_fed(1)
        boot_tenant(fed, "t0", "pod0")
        rack = fed.pods["pod0"].system.sdm.registry.memory_entries[0].rack_id
        link = LinkScheduler(fed.sim)
        injector = FaultInjector(fed, classes=())
        injector.register_link(f"pod0:{rack}", link)
        transfer = link.submit(TransferClass.DEMAND, mib(1))
        injector.inject("rack_uplink", f"pod0:{rack}",
                        repair_after_s=5.0)
        assert not link.link_up
        assert link.parked_count == 1
        assert link.stats.failed_transfers == 1
        fed.sim.run()
        # Repair re-queued and delivered the stalled transfer.
        assert link.link_up
        assert link.stats.requeued_transfers == 1
        assert transfer.done.triggered
        assert transfer.started_s >= 5.0


class TestSwitch:
    def test_self_heal_confines_cross_rack_segments(self):
        fed = build_fed(1)
        home, remote = strand_segment_across_racks(fed, "pod0", "t0")
        pod = fed.pods["pod0"]
        registry = pod.system.sdm.registry
        injector = FaultInjector(fed, classes=())
        event = injector.inject("switch", "pod0", repair_after_s=30.0)
        assert event.impacted_tenants == ("t0",)
        fed.sim.run(until=fed.sim.now + 10.0)
        assert event.healed_tenants == ("t0",)
        segment = tenant_segment(fed, "pod0", "t0")
        # Confined into the compute brick's own rack: no data path
        # crosses the dead inter-rack switch any more.
        assert registry.rack_of(segment.memory_brick_id) == home
        fed.sim.run()
        assert injector.quiescent
        pool_consistent(fed)

    def test_rack_local_tenants_are_unaffected(self):
        fed = build_fed(1)
        boot_tenant(fed, "t0", "pod0")  # policy places rack-locally
        segment = tenant_segment(fed, "pod0", "t0")
        registry = fed.pods["pod0"].system.sdm.registry
        assert (registry.rack_of(segment.memory_brick_id)
                == registry.rack_of(segment.compute_brick_id))
        injector = FaultInjector(fed, classes=())
        event = injector.inject("switch", "pod0", repair_after_s=5.0)
        assert event.impacted_tenants == ()
        fed.sim.run()
        assert injector.metrics.tenant_seconds_unavailable == 0.0


class TestShard:
    def test_takeover_is_instant_and_impacts_nobody(self):
        fed = build_fed(1)
        boot_tenant(fed, "t0", "pod0")
        pod = fed.pods["pod0"]
        sdm = pod.system.sdm
        rack = sdm.registry.rack_of(pod.system.hosting("t0").brick_id)
        shard = sdm.shard_of_rack(rack)
        injector = FaultInjector(fed, classes=())
        event = injector.inject("shard", f"pod0:{shard}",
                                repair_after_s=10.0)
        # The survivors serve the dead shard's racks from the same
        # event: zero tenants cut off, zero downtime.
        assert event.impacted_tenants == ()
        assert shard not in sdm.live_shards()
        assert sdm.rack_is_served(rack)
        fed.sim.run()
        assert shard in sdm.live_shards()
        assert injector.metrics.tenant_seconds_unavailable == 0.0
        pool_consistent(fed)

    def test_without_takeover_the_racks_tenants_degrade(self):
        fed = build_fed(1)
        boot_tenant(fed, "t0", "pod0")
        pod = fed.pods["pod0"]
        sdm = pod.system.sdm
        rack = sdm.registry.rack_of(pod.system.hosting("t0").brick_id)
        shard = sdm.shard_of_rack(rack)
        injector = FaultInjector(fed, classes=(), self_heal=False)
        event = injector.inject("shard", f"pod0:{shard}",
                                repair_after_s=10.0)
        assert event.impacted_tenants == ("t0",)
        assert not sdm.rack_is_served(rack)
        assert "t0" in pod.plane.degraded
        fed.sim.run()
        assert "t0" not in pod.plane.degraded
        assert sdm.rack_is_served(rack)
        assert injector.metrics.tenant_seconds_unavailable == 10.0
        pool_consistent(fed)

    def test_takeover_requires_a_surviving_shard(self):
        fed = build_fed(1)
        sdm = fed.pods["pod0"].system.sdm
        injector = FaultInjector(fed, classes=())
        assert injector.inject("shard", "pod0:shard0",
                               repair_after_s=5.0) is not None
        # Only shard1 lives: killing it too would leave nobody to
        # take over, so the guard declines.
        assert injector.inject("shard", "pod0:shard1",
                               repair_after_s=5.0) is None
        fed.sim.run()
        assert sdm.live_shards() == ["shard0", "shard1"]


class TestPod:
    def test_self_heal_readmits_from_the_ledger(self):
        fed = build_fed(2)
        boot_tenant(fed, "t0", "pod0", ledger=True)
        injector = FaultInjector(fed, classes=())
        event = injector.inject("pod", "pod0", repair_after_s=10.0)
        assert event.impacted_tenants == ("t0",)
        fed.sim.run()
        # Re-admitted on the survivor, in about a boot time.
        assert fed.pod_of("t0") == "pod1"
        assert event.healed_tenants == ("t0",)
        assert injector.metrics.readmissions == 1
        assert injector.metrics.readmission_failures == 0
        assert injector.metrics.readmission_success_rate == 1.0
        assert injector.metrics.tenant_seconds_unavailable < 10.0
        # The ledger entry was superseded and the dead replica fenced:
        # the repaired pod never double-books that capacity.
        assert fed.placer.ledger_claim("t0").pod_id == "pod1"
        assert fed.pods["pod0"].system.vms == []
        assert [v.vm_id for v in fed.pods["pod1"].system.vms] == ["t0"]
        pool_consistent(fed)

    def test_without_self_heal_tenants_ride_out_the_outage(self):
        fed = build_fed(2)
        boot_tenant(fed, "t0", "pod0", ledger=True)
        injector = FaultInjector(fed, classes=(), self_heal=False)
        injector.inject("pod", "pod0", repair_after_s=10.0)
        fed.sim.run()
        assert fed.pod_of("t0") == "pod0"
        assert injector.metrics.readmissions == 0
        assert injector.metrics.tenant_seconds_unavailable == 10.0
        assert fed.placer.ledger_claim("t0").pod_id == "pod0"
        pool_consistent(fed)

    def test_depart_during_outage_accrues_no_further_downtime(self):
        fed = build_fed(2)
        boot_tenant(fed, "t0", "pod0", ledger=True)
        injector = FaultInjector(fed, classes=(), self_heal=False)
        # The depart hook is wired by install(); classes=() keeps the
        # MTBF side inert, so a bare run still drains.
        injector.install()
        injector.inject("pod", "pod0", repair_after_s=10.0)

        def departer():
            yield fed.sim.timeout(4.0)
            # The pod repairs at t=10; the depart parks in its paused
            # plane until then, so the tenant leaves at the repair.
            yield from fed.submit_process("depart", "t0")

        fed.sim.process(departer())
        fed.sim.run()
        assert injector.metrics.tenant_seconds_unavailable == 10.0
        assert fed.placer.ledger_claim("t0") is None
        assert "t0" not in fed._tenant_pod
