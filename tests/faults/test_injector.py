"""Fault injector mechanics: determinism, plans, guards, accounting.

The reaction paths (what each tier does when its component dies) live
in ``test_reactions.py``; this module pins the injector's *scheduling*
contract — the same seed replays the identical fault schedule, streams
are isolated per class, scripted plans fire on their declared clock —
and the validation/guard surface of :meth:`FaultInjector.inject`.
"""

from __future__ import annotations

import pytest

from repro.errors import FaultError
from repro.faults import (
    DEFAULT_SPECS,
    AvailabilityMetrics,
    FaultClass,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    ScriptedFault,
)
from repro.federation import build_federation
from repro.sim.engine import Simulator


def build_fed(pods=2, **kwargs):
    kwargs.setdefault("racks_per_pod", 2)
    return build_federation(pods, **kwargs)


def schedule(seed, classes=None, horizon=120.0, self_heal=True):
    """Install an injector on an idle federation and record the
    ``(class, target, time)`` schedule up to *horizon*."""
    fed = build_fed(3)
    injector = FaultInjector(fed, seed=seed, classes=classes,
                             self_heal=self_heal).install()
    fed.sim.run(until=horizon)
    return [(e.klass.value, e.target, e.failed_s)
            for e in injector.metrics.events]


class TestDeterminism:
    def test_same_seed_replays_the_identical_schedule(self):
        first = schedule(2018)
        again = schedule(2018)
        assert first  # the horizon is long enough to see faults
        assert first == again

    def test_different_seeds_draw_different_schedules(self):
        assert schedule(1) != schedule(2)

    def test_streams_are_isolated_per_class(self):
        # Enabling another class must not perturb a class's own
        # schedule: every class draws from its own named RNG stream.
        # (Switch faults never change the brick target population, so
        # the brick events match target-for-target, not just in time.)
        brick_only = schedule(7, classes=("memory_brick",))
        mixed = schedule(7, classes=("memory_brick", "switch"))
        assert [e for e in mixed if e[0] == "memory_brick"] == brick_only
        assert any(e[0] == "switch" for e in mixed)

    def test_no_classes_schedules_nothing(self):
        assert schedule(2018, classes=()) == []

    def test_plan_replays_on_its_declared_clock(self):
        fed = build_fed(2)
        plan = FaultPlan()
        plan.add(5.0, "switch", "pod1", 2.0)
        plan.add(1.0, "switch", "pod0", 2.0)
        injector = FaultInjector(fed, classes=(), plan=plan).install()
        fed.sim.run(until=20.0)
        assert [(e.target, e.failed_s, e.scripted)
                for e in injector.metrics.events] == [
            ("pod0", 1.0, True), ("pod1", 5.0, True)]


class TestFaultPlan:
    def test_ordered_is_total_and_deterministic(self):
        plan = FaultPlan()
        plan.add(3.0, "pod", "pod1", 1.0)
        plan.add(3.0, "memory_brick", "pod0:mb0", 1.0)
        plan.add(1.0, "pod", "pod0", 1.0)
        assert [(f.at_s, f.klass.value) for f in plan.ordered()] == [
            (1.0, "pod"), (3.0, "memory_brick"), (3.0, "pod")]
        assert len(plan) == 3
        assert list(plan) == plan.ordered()

    def test_add_coerces_class_names(self):
        fault = FaultPlan().add(0.0, "rack_uplink", "pod0:rack0", 1.0)
        assert fault.klass is FaultClass.RACK_UPLINK

    def test_unknown_class_rejected(self):
        with pytest.raises(FaultError, match="unknown fault class"):
            FaultPlan().add(0.0, "gamma_ray", "pod0", 1.0)

    def test_negative_time_rejected(self):
        with pytest.raises(FaultError, match=">= 0"):
            ScriptedFault(-1.0, FaultClass.POD, "pod0", 1.0)

    def test_non_positive_duration_rejected(self):
        with pytest.raises(FaultError, match="duration"):
            ScriptedFault(0.0, FaultClass.POD, "pod0", 0.0)

    def test_spec_validation(self):
        with pytest.raises(FaultError, match="MTBF"):
            FaultSpec(FaultClass.POD, mtbf_s=0.0, mttr_s=1.0)
        with pytest.raises(FaultError, match="MTTR"):
            FaultSpec(FaultClass.POD, mtbf_s=1.0, mttr_s=-1.0)

    def test_default_specs_cover_every_class(self):
        assert set(DEFAULT_SPECS) == set(FaultClass)


class TestInjectGuards:
    def make(self, pods=2, **kwargs):
        fed = build_fed(pods)
        return fed, FaultInjector(fed, classes=(), **kwargs)

    def test_unknown_pod_rejected(self):
        _, injector = self.make()
        with pytest.raises(FaultError, match="unknown pod"):
            injector.inject("pod", "pod9", repair_after_s=1.0)

    def test_component_target_requires_pod_prefix(self):
        _, injector = self.make()
        with pytest.raises(FaultError, match="pod:component"):
            injector.inject("memory_brick", "mb0", repair_after_s=1.0)

    def test_unknown_brick_rack_and_shard_rejected(self):
        _, injector = self.make()
        with pytest.raises(FaultError, match="unknown memory brick"):
            injector.inject("memory_brick", "pod0:nope",
                            repair_after_s=1.0)
        with pytest.raises(FaultError, match="unknown rack"):
            injector.inject("rack_uplink", "pod0:nope",
                            repair_after_s=1.0)
        with pytest.raises(FaultError, match="unknown shard"):
            injector.inject("shard", "pod0:shard9", repair_after_s=1.0)

    def test_non_positive_repair_delay_rejected(self):
        _, injector = self.make()
        with pytest.raises(FaultError, match="repair delay"):
            injector.inject("switch", "pod0", repair_after_s=0.0)

    def test_double_failure_declined(self):
        _, injector = self.make()
        assert injector.inject("switch", "pod0",
                               repair_after_s=5.0) is not None
        assert injector.inject("switch", "pod0",
                               repair_after_s=5.0) is None

    def test_last_live_pod_is_never_severed(self):
        fed, injector = self.make()
        assert injector.inject("pod", "pod0",
                               repair_after_s=5.0) is not None
        assert injector.inject("pod", "pod1",
                               repair_after_s=5.0) is None
        assert injector._targets(FaultClass.POD) == []
        fed.sim.run()  # repairs drain

    def test_dead_pod_components_decline_injection(self):
        fed, injector = self.make()
        brick = fed.pods["pod0"].system.sdm.registry.memory_entries[0]
        injector.inject("pod", "pod0", repair_after_s=5.0)
        assert injector.inject(
            "memory_brick", f"pod0:{brick.brick.brick_id}",
            repair_after_s=1.0) is None
        fed.sim.run()

    def test_install_twice_is_an_error(self):
        fed = build_fed(2)
        injector = FaultInjector(fed, seed=3).install()
        with pytest.raises(FaultError, match="already installed"):
            injector.install()

    def test_stop_halts_new_faults(self):
        fed = build_fed(2)
        injector = FaultInjector(fed, seed=3).install()
        fed.sim.run(until=80.0)
        count = injector.metrics.fault_count()
        assert count > 0
        injector.stop()
        fed.sim.run(until=500.0)
        # Repairs of already-active faults complete; nothing new fires.
        assert injector.metrics.fault_count() == count
        assert injector.quiescent

    def test_active_faults_and_quiescence(self):
        fed, injector = self.make()
        assert injector.quiescent
        event = injector.inject("switch", "pod0", repair_after_s=5.0)
        assert injector.active_faults == [event]
        assert not injector.quiescent
        fed.sim.run()
        assert injector.quiescent
        assert event.repaired_s == 5.0
        assert event.repair_duration_s == 5.0


class TestAvailabilityMetrics:
    def test_overlapping_faults_are_reference_counted(self):
        sim = Simulator()
        metrics = AvailabilityMetrics(sim)

        def drive():
            metrics.mark_unavailable("t0")
            metrics.mark_unavailable("t0")  # second overlapping fault
            yield sim.timeout(5.0)
            metrics.mark_available("t0")    # one fault clears: still down
            assert metrics.tenants_down == ["t0"]
            yield sim.timeout(5.0)
            metrics.mark_available("t0")    # last one clears

        sim.process(drive())
        sim.run()
        assert metrics.tenant_seconds_unavailable == 10.0
        assert metrics.tenants_down == []

    def test_mark_available_without_fault_is_a_no_op(self):
        metrics = AvailabilityMetrics(Simulator())
        metrics.mark_available("t0")
        assert metrics.tenant_seconds_unavailable == 0.0

    def test_departed_tenant_stops_accruing(self):
        sim = Simulator()
        metrics = AvailabilityMetrics(sim)

        def drive():
            metrics.mark_unavailable("t0")
            yield sim.timeout(3.0)
            metrics.mark_departed("t0", "pod0")
            yield sim.timeout(7.0)
            metrics.mark_available("t0")  # late repair: no double count

        sim.process(drive())
        sim.run()
        assert metrics.tenant_seconds_unavailable == 3.0

    def test_finalize_closes_open_intervals(self):
        sim = Simulator()
        metrics = AvailabilityMetrics(sim)

        def drive():
            metrics.mark_unavailable("t0")
            yield sim.timeout(4.0)

        sim.process(drive())
        sim.run()
        assert metrics.finalize() == 4.0
        assert metrics.tenants_down == []

    def test_mttr_and_readmission_rate(self):
        fed = build_fed(2)
        injector = FaultInjector(fed, classes=())
        injector.inject("switch", "pod0", repair_after_s=4.0)
        injector.inject("switch", "pod1", repair_after_s=8.0)
        fed.sim.run()
        metrics = injector.metrics
        assert metrics.fault_count() == 2
        assert metrics.fault_count(FaultClass.SWITCH) == 2
        assert metrics.fault_count(FaultClass.POD) == 0
        assert metrics.mttr_s() == 6.0
        assert metrics.mttr_s(FaultClass.SWITCH) == 6.0
        assert metrics.mttr_s(FaultClass.POD) == 0.0
        assert metrics.readmission_success_rate == 1.0
