"""Tests for the exception hierarchy."""

from __future__ import annotations

import inspect

import pytest

from repro import errors


def all_error_classes():
    return [
        obj for _name, obj in inspect.getmembers(errors, inspect.isclass)
        if issubclass(obj, Exception)
    ]


class TestHierarchy:
    def test_everything_derives_from_repro_error(self):
        for cls in all_error_classes():
            assert issubclass(cls, errors.ReproError), cls.__name__

    def test_single_except_catches_all(self):
        for cls in all_error_classes():
            if cls is errors.ReproError:
                continue
            with pytest.raises(errors.ReproError):
                raise cls("boom")

    def test_subsystem_grouping(self):
        assert issubclass(errors.CircuitError, errors.NetworkError)
        assert issubclass(errors.LinkBudgetError, errors.NetworkError)
        assert issubclass(errors.RoutingError, errors.NetworkError)
        assert issubclass(errors.PortError, errors.HardwareError)
        assert issubclass(errors.SlotError, errors.HardwareError)
        assert issubclass(errors.SegmentTableError, errors.HardwareError)
        assert issubclass(errors.HotplugError, errors.SoftwareError)
        assert issubclass(errors.HypervisorError, errors.SoftwareError)
        assert issubclass(errors.BalloonError, errors.SoftwareError)
        assert issubclass(errors.ReservationError, errors.OrchestrationError)
        assert issubclass(errors.PlacementError, errors.OrchestrationError)
        assert issubclass(errors.AddressError, errors.MemoryError_)
        assert issubclass(errors.AllocationError, errors.MemoryError_)

    def test_memory_error_does_not_shadow_builtin(self):
        assert errors.MemoryError_ is not MemoryError
        assert not issubclass(errors.MemoryError_, MemoryError)

    def test_cross_subsystem_isolation(self):
        # A network error is not a hardware error and vice versa.
        assert not issubclass(errors.CircuitError, errors.HardwareError)
        assert not issubclass(errors.SlotError, errors.NetworkError)

    def test_every_class_documented(self):
        for cls in all_error_classes():
            assert cls.__doc__, f"{cls.__name__} lacks a docstring"
