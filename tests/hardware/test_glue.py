"""Unit tests for the Transaction Glue Logic models."""

from __future__ import annotations

import pytest

from repro.errors import SegmentTableError
from repro.hardware.glue import (
    ComputeGlueLogic,
    GlueLogicTimings,
    MemoryGlueLogic,
)
from repro.hardware.memory_tech import DDR4_2400, MemoryModule
from repro.hardware.rmst import RemoteMemorySegmentTable, SegmentEntry
from repro.units import gib


@pytest.fixture
def rmst():
    table = RemoteMemorySegmentTable()
    table.install(SegmentEntry("seg0", base=gib(4), size=gib(2),
                               remote_brick_id="mb0", remote_offset=gib(1),
                               egress_port_id="cb0.cbn2"))
    return table


class TestComputeGlueLogic:
    def test_steer_resolves_translation_and_port(self, rmst):
        glue = ComputeGlueLogic(rmst)
        decision = glue.steer(gib(4) + 4096)
        assert decision.remote_address == gib(1) + 4096
        assert decision.egress_port_id == "cb0.cbn2"
        assert decision.entry.segment_id == "seg0"

    def test_steer_latency_is_fixed_pipeline(self, rmst):
        timings = GlueLogicTimings()
        glue = ComputeGlueLogic(rmst, timings)
        decision = glue.steer(gib(4))
        expected = (timings.issue_latency_s + timings.lookup_latency_s
                    + timings.forward_latency_s)
        assert decision.latency_s == pytest.approx(expected)
        assert glue.request_path_latency_s == pytest.approx(expected)

    def test_miss_counts_and_raises(self, rmst):
        glue = ComputeGlueLogic(rmst)
        with pytest.raises(SegmentTableError):
            glue.steer(0)
        assert glue.lookup_misses == 1
        assert glue.transactions_steered == 0

    def test_steer_counter(self, rmst):
        glue = ComputeGlueLogic(rmst)
        glue.steer(gib(4))
        glue.steer(gib(5))
        assert glue.transactions_steered == 2

    def test_response_latency_smaller_than_request(self, rmst):
        glue = ComputeGlueLogic(rmst)
        assert glue.response_path_latency_s < glue.request_path_latency_s


class TestMemoryGlueLogic:
    @pytest.fixture
    def modules(self):
        return [MemoryModule(f"m{i}", DDR4_2400, gib(4)) for i in range(3)]

    def test_offset_to_module_windows(self, modules):
        glue = MemoryGlueLogic(modules)
        module, local = glue.module_for_offset(0)
        assert module is modules[0] and local == 0
        module, local = glue.module_for_offset(gib(4))
        assert module is modules[1] and local == 0
        module, local = glue.module_for_offset(gib(11))
        assert module is modules[2] and local == gib(3)

    def test_offset_beyond_capacity_raises(self, modules):
        glue = MemoryGlueLogic(modules)
        with pytest.raises(SegmentTableError, match="exceeds"):
            glue.module_for_offset(gib(12))

    def test_negative_offset_rejected(self, modules):
        glue = MemoryGlueLogic(modules)
        with pytest.raises(SegmentTableError):
            glue.module_for_offset(-1)

    def test_ingress_counts_and_latency(self, modules):
        glue = MemoryGlueLogic(modules)
        _module, _local, latency = glue.ingress(gib(5))
        assert latency == glue.timings.ingress_latency_s
        assert glue.ingress_count == 1

    def test_egress_latency(self, modules):
        glue = MemoryGlueLogic(modules)
        assert glue.egress_latency_s() == glue.timings.egress_latency_s
        assert glue.egress_count == 1

    def test_total_capacity(self, modules):
        assert MemoryGlueLogic(modules).total_capacity_bytes == gib(12)
