"""Unit tests for trays and the rack."""

from __future__ import annotations

import pytest

from repro.errors import SlotError
from repro.hardware.bricks import (
    AcceleratorBrick,
    BrickType,
    ComputeBrick,
    MemoryBrick,
)
from repro.hardware.rack import Rack
from repro.hardware.tray import Tray


class TestTray:
    def test_plug_into_first_free_slot(self):
        tray = Tray("t0", slot_count=4)
        brick = ComputeBrick("cb0")
        assert tray.plug(brick) == 0
        assert brick.tray_id == "t0"
        assert brick.slot_index == 0
        assert tray.occupied_slots == 1

    def test_plug_specific_slot(self):
        tray = Tray("t0", slot_count=4)
        assert tray.plug(ComputeBrick("cb0"), slot_index=2) == 2
        assert tray.slot(2) is not None
        assert tray.slot(0) is None

    def test_occupied_slot_rejected(self):
        tray = Tray("t0", slot_count=2)
        tray.plug(ComputeBrick("cb0"), slot_index=1)
        with pytest.raises(SlotError, match="occupied"):
            tray.plug(ComputeBrick("cb1"), slot_index=1)

    def test_full_tray_rejected(self):
        tray = Tray("t0", slot_count=1)
        tray.plug(ComputeBrick("cb0"))
        with pytest.raises(SlotError, match="full"):
            tray.plug(ComputeBrick("cb1"))

    def test_double_plug_rejected(self):
        tray_a, tray_b = Tray("a"), Tray("b")
        brick = ComputeBrick("cb0")
        tray_a.plug(brick)
        with pytest.raises(SlotError, match="already plugged"):
            tray_b.plug(brick)

    def test_unplug_returns_and_clears(self):
        tray = Tray("t0")
        brick = ComputeBrick("cb0")
        index = tray.plug(brick)
        returned = tray.unplug(index)
        assert returned is brick
        assert brick.tray_id is None
        assert not brick.is_plugged
        assert tray.unplug_events == 1

    def test_unplug_empty_slot_rejected(self):
        with pytest.raises(SlotError, match="empty"):
            Tray("t0").unplug(0)

    def test_slot_index_bounds(self):
        tray = Tray("t0", slot_count=2)
        with pytest.raises(SlotError):
            tray.slot(2)
        with pytest.raises(SlotError):
            tray.plug(ComputeBrick("cb0"), slot_index=-1)

    def test_replug_after_unplug(self):
        tray = Tray("t0", slot_count=1)
        brick = ComputeBrick("cb0")
        tray.plug(brick)
        tray.unplug(0)
        assert tray.plug(brick) == 0
        assert tray.plug_events == 2

    def test_bricks_filter_by_type(self):
        tray = Tray("t0")
        tray.plug(ComputeBrick("cb0"))
        tray.plug(MemoryBrick("mb0"))
        assert len(list(tray.bricks())) == 2
        assert len(list(tray.bricks(BrickType.MEMORY))) == 1

    def test_contains(self):
        tray = Tray("t0")
        brick = ComputeBrick("cb0")
        tray.plug(brick)
        assert tray.contains(brick)
        assert not tray.contains(ComputeBrick("cb1"))

    def test_zero_slots_rejected(self):
        with pytest.raises(SlotError):
            Tray("t0", slot_count=0)


class TestRack:
    @pytest.fixture
    def rack(self):
        rack = Rack("r0")
        tray0 = rack.new_tray()
        tray0.plug(ComputeBrick("cb0"))
        tray0.plug(MemoryBrick("mb0"))
        tray1 = rack.new_tray()
        tray1.plug(AcceleratorBrick("ab0"))
        return rack

    def test_auto_tray_ids(self, rack):
        assert [t.tray_id for t in rack.trays] == ["r0.tray0", "r0.tray1"]

    def test_duplicate_tray_rejected(self, rack):
        with pytest.raises(SlotError):
            rack.add_tray(Tray("r0.tray0"))

    def test_tray_lookup(self, rack):
        assert rack.tray("r0.tray1").occupied_slots == 1
        with pytest.raises(SlotError):
            rack.tray("ghost")

    def test_brick_lookup_across_trays(self, rack):
        assert rack.brick("ab0").brick_id == "ab0"
        with pytest.raises(SlotError):
            rack.brick("ghost")

    def test_typed_views(self, rack):
        assert len(rack.compute_bricks()) == 1
        assert len(rack.memory_bricks()) == 1
        assert len(rack.accelerator_bricks()) == 1

    def test_inventory(self, rack):
        inventory = rack.inventory()
        assert inventory == {"dCOMPUBRICK": 1, "dMEMBRICK": 1,
                             "dACCELBRICK": 1}

    def test_same_tray(self, rack):
        cb = rack.brick("cb0")
        mb = rack.brick("mb0")
        ab = rack.brick("ab0")
        assert rack.same_tray(cb, mb)
        assert not rack.same_tray(cb, ab)

    def test_fibre_length(self, rack):
        cb = rack.brick("cb0")
        mb = rack.brick("mb0")
        ab = rack.brick("ab0")
        assert rack.fibre_length_m(cb, mb) == 0.0
        assert rack.fibre_length_m(cb, ab) == 10.0

    def test_total_power(self, rack):
        draw = rack.total_power_draw_w()
        assert draw > 0
        rack.brick("mb0").power_off()
        assert rack.total_power_draw_w() < draw

    def test_tray_slot_count_override(self):
        rack = Rack("r1")
        tray = rack.new_tray(slot_count=2)
        assert tray.slot_count == 2
