"""Unit tests for power states and accounting."""

from __future__ import annotations

import pytest

from repro.errors import PowerStateError
from repro.hardware.power import (
    PowerAccountant,
    Powered,
    PowerProfile,
    PowerState,
)


@pytest.fixture
def profile() -> PowerProfile:
    return PowerProfile(active_w=20.0, idle_w=8.0)


class TestPowerProfile:
    def test_draw_per_state(self, profile):
        assert profile.draw(PowerState.ACTIVE) == 20.0
        assert profile.draw(PowerState.IDLE) == 8.0
        assert profile.draw(PowerState.OFF) == 0.0

    def test_ordering_enforced(self):
        with pytest.raises(ValueError):
            PowerProfile(active_w=5.0, idle_w=10.0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            PowerProfile(active_w=-1.0, idle_w=-2.0)

    def test_nonzero_off_allowed(self):
        profile = PowerProfile(active_w=10.0, idle_w=5.0, off_w=0.5)
        assert profile.draw(PowerState.OFF) == 0.5


class TestPowered:
    def test_starts_idle(self, profile):
        component = Powered(profile)
        assert component.power_state is PowerState.IDLE
        assert component.is_powered

    def test_idle_to_active(self, profile):
        component = Powered(profile)
        component.set_power_state(PowerState.ACTIVE)
        assert component.power_draw_w == 20.0

    def test_off_to_active_is_illegal(self, profile):
        component = Powered(profile, initial_state=PowerState.OFF)
        with pytest.raises(PowerStateError):
            component.set_power_state(PowerState.ACTIVE)

    def test_active_to_off_is_illegal_directly(self, profile):
        component = Powered(profile, initial_state=PowerState.ACTIVE)
        with pytest.raises(PowerStateError):
            component.set_power_state(PowerState.OFF)

    def test_power_off_from_active_steps_through_idle(self, profile):
        component = Powered(profile, initial_state=PowerState.ACTIVE)
        component.power_off()
        assert component.power_state is PowerState.OFF
        assert not component.is_powered

    def test_power_on_from_off(self, profile):
        component = Powered(profile, initial_state=PowerState.OFF)
        component.power_on()
        assert component.power_state is PowerState.IDLE

    def test_power_on_noop_when_powered(self, profile):
        component = Powered(profile, initial_state=PowerState.ACTIVE)
        component.power_on()
        assert component.power_state is PowerState.ACTIVE

    def test_same_state_transition_is_noop(self, profile):
        component = Powered(profile)
        component.set_power_state(PowerState.IDLE)
        assert component.power_state is PowerState.IDLE


class TestPowerAccountant:
    def test_sums_components(self, profile):
        components = [Powered(profile) for _ in range(3)]
        accountant = PowerAccountant(components)
        assert accountant.total_draw_w() == pytest.approx(24.0)

    def test_attach_later(self, profile):
        accountant = PowerAccountant()
        accountant.attach(Powered(profile, initial_state=PowerState.ACTIVE))
        assert accountant.component_count == 1
        assert accountant.total_draw_w() == pytest.approx(20.0)

    def test_tracks_state_changes(self, profile):
        component = Powered(profile)
        accountant = PowerAccountant([component])
        component.power_off()
        assert accountant.total_draw_w() == 0.0

    def test_energy(self, profile):
        accountant = PowerAccountant(
            [Powered(profile, initial_state=PowerState.ACTIVE)])
        assert accountant.energy_j(10.0) == pytest.approx(200.0)

    def test_energy_negative_duration_rejected(self, profile):
        accountant = PowerAccountant([Powered(profile)])
        with pytest.raises(ValueError):
            accountant.energy_j(-1.0)


def test_total_draw_is_method(profile):
    # total_draw_w is a method, not a property; calling it works.
    accountant = PowerAccountant([Powered(profile)])
    assert accountant.total_draw_w() == pytest.approx(8.0)
