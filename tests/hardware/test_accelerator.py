"""Unit tests for the accelerator slot / PCAP middleware."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, HardwareError
from repro.hardware.accelerator import (
    AcceleratorSlot,
    AcceleratorState,
    Bitstream,
    ReconfigurationMiddleware,
    WrapperRegister,
)
from repro.units import mib


def make_bitstream(name="edge-detect", size=mib(8), cost=50):
    return Bitstream(name, size_bytes=size, resource_cost=cost)


class TestBitstream:
    def test_pcap_time_grows_with_size(self):
        small = make_bitstream(size=mib(4))
        large = make_bitstream(size=mib(32))
        assert large.pcap_program_time_s > small.pcap_program_time_s

    def test_pcap_time_has_fixed_overhead(self):
        tiny = make_bitstream(size=1)
        assert tiny.pcap_program_time_s > 0.001

    def test_invalid_size_rejected(self):
        with pytest.raises(ConfigurationError):
            make_bitstream(size=0)

    def test_invalid_cost_rejected(self):
        with pytest.raises(ConfigurationError):
            make_bitstream(cost=0)


class TestAcceleratorSlot:
    def test_configure_then_start_stop(self):
        slot = AcceleratorSlot("s0")
        latency = slot.configure(make_bitstream())
        assert latency > 0
        assert slot.state is AcceleratorState.CONFIGURED
        slot.start()
        assert slot.state is AcceleratorState.RUNNING
        assert slot.wrapper.read(WrapperRegister.CONTROL) == 1
        slot.stop()
        assert slot.state is AcceleratorState.CONFIGURED
        assert slot.wrapper.read(WrapperRegister.CONTROL) == 0

    def test_start_empty_slot_rejected(self):
        with pytest.raises(HardwareError):
            AcceleratorSlot("s0").start()

    def test_stop_non_running_rejected(self):
        slot = AcceleratorSlot("s0")
        slot.configure(make_bitstream())
        with pytest.raises(HardwareError):
            slot.stop()

    def test_reconfigure_while_running_rejected(self):
        slot = AcceleratorSlot("s0")
        slot.configure(make_bitstream("a"))
        slot.start()
        with pytest.raises(HardwareError, match="stop"):
            slot.configure(make_bitstream("b"))

    def test_oversized_bitstream_rejected(self):
        slot = AcceleratorSlot("s0", resource_budget=40)
        with pytest.raises(HardwareError, match="budget"):
            slot.configure(make_bitstream(cost=50))

    def test_reconfiguration_counter(self):
        slot = AcceleratorSlot("s0")
        slot.configure(make_bitstream("a"))
        slot.configure(make_bitstream("b"))
        assert slot.reconfiguration_count == 2
        assert slot.bitstream.name == "b"

    def test_clear_blanks_even_running(self):
        slot = AcceleratorSlot("s0")
        slot.configure(make_bitstream())
        slot.start()
        slot.clear()
        assert slot.state is AcceleratorState.EMPTY
        assert slot.bitstream is None

    def test_wrapper_rejects_negative_register_value(self):
        slot = AcceleratorSlot("s0")
        with pytest.raises(HardwareError):
            slot.wrapper.write(WrapperRegister.DATA_BASE, -1)


class TestMiddleware:
    def test_receive_and_reconfigure(self):
        slot = AcceleratorSlot("s0")
        middleware = ReconfigurationMiddleware(slot)
        middleware.receive_bitstream(make_bitstream("fn"))
        latency = middleware.reconfigure("fn")
        assert latency > 0
        assert slot.is_configured

    def test_reconfigure_unknown_rejected(self):
        middleware = ReconfigurationMiddleware(AcceleratorSlot("s0"))
        with pytest.raises(HardwareError, match="has not been uploaded"):
            middleware.reconfigure("ghost")

    def test_reupload_replaces(self):
        middleware = ReconfigurationMiddleware(AcceleratorSlot("s0"))
        middleware.receive_bitstream(make_bitstream("fn", size=mib(4)))
        middleware.receive_bitstream(make_bitstream("fn", size=mib(16)))
        assert middleware.stored_bitstreams == ["fn"]

    def test_drop(self):
        middleware = ReconfigurationMiddleware(AcceleratorSlot("s0"))
        middleware.receive_bitstream(make_bitstream("fn"))
        middleware.drop_bitstream("fn")
        assert middleware.stored_bitstreams == []
        with pytest.raises(HardwareError):
            middleware.drop_bitstream("fn")
