"""Unit tests for the Remote Memory Segment Table."""

from __future__ import annotations

import pytest

from repro.errors import SegmentTableError
from repro.hardware.rmst import RemoteMemorySegmentTable, SegmentEntry
from repro.units import gib


def entry(segment_id="seg0", base=gib(4), size=gib(1), brick="mb0",
          offset=0, port="cb0.cbn0"):
    return SegmentEntry(segment_id, base, size, brick, offset, port)


class TestSegmentEntry:
    def test_end_and_contains(self):
        e = entry()
        assert e.end == gib(5)
        assert e.contains(gib(4))
        assert e.contains(gib(5) - 1)
        assert not e.contains(gib(5))
        assert not e.contains(gib(4) - 1)

    def test_translate(self):
        e = entry(offset=gib(2))
        assert e.translate(gib(4) + 4096) == gib(2) + 4096

    def test_translate_outside_raises(self):
        with pytest.raises(SegmentTableError):
            entry().translate(0)

    def test_overlap_detection(self):
        a = entry("a", base=0, size=100)
        b = entry("b", base=50, size=100)
        c = entry("c", base=100, size=50)
        assert a.overlaps(b) and b.overlaps(a)
        assert not a.overlaps(c)

    def test_invalid_size_rejected(self):
        with pytest.raises(SegmentTableError):
            entry(size=0)

    def test_negative_base_rejected(self):
        with pytest.raises(SegmentTableError):
            entry(base=-1)


class TestTable:
    def test_install_and_lookup(self):
        table = RemoteMemorySegmentTable()
        e = entry()
        table.install(e)
        assert table.lookup(gib(4) + 123) is e

    def test_lookup_miss_raises(self):
        table = RemoteMemorySegmentTable()
        with pytest.raises(SegmentTableError, match="misses"):
            table.lookup(0)

    def test_lookup_or_none(self):
        table = RemoteMemorySegmentTable()
        assert table.lookup_or_none(0) is None

    def test_duplicate_id_rejected(self):
        table = RemoteMemorySegmentTable()
        table.install(entry())
        with pytest.raises(SegmentTableError, match="already installed"):
            table.install(entry(base=gib(10)))

    def test_overlapping_ranges_rejected(self):
        table = RemoteMemorySegmentTable()
        table.install(entry("a", base=0, size=gib(2)))
        with pytest.raises(SegmentTableError, match="overlaps"):
            table.install(entry("b", base=gib(1), size=gib(2)))

    def test_capacity_enforced(self):
        table = RemoteMemorySegmentTable(capacity=2)
        table.install(entry("a", base=0, size=10))
        table.install(entry("b", base=10, size=10))
        assert table.is_full
        with pytest.raises(SegmentTableError, match="full"):
            table.install(entry("c", base=20, size=10))

    def test_evict_frees_entry(self):
        table = RemoteMemorySegmentTable(capacity=1)
        table.install(entry("a"))
        evicted = table.evict("a")
        assert evicted.segment_id == "a"
        assert len(table) == 0
        table.install(entry("b"))  # slot is reusable

    def test_evict_missing_raises(self):
        with pytest.raises(SegmentTableError):
            RemoteMemorySegmentTable().evict("ghost")

    def test_get(self):
        table = RemoteMemorySegmentTable()
        e = entry("a")
        table.install(e)
        assert table.get("a") is e
        with pytest.raises(SegmentTableError):
            table.get("b")

    def test_segments_for_brick(self):
        table = RemoteMemorySegmentTable()
        table.install(entry("a", base=0, size=10, brick="mb0"))
        table.install(entry("b", base=10, size=10, brick="mb1"))
        table.install(entry("c", base=20, size=10, brick="mb0"))
        ids = {e.segment_id for e in table.segments_for_brick("mb0")}
        assert ids == {"a", "c"}

    def test_mapped_bytes(self):
        table = RemoteMemorySegmentTable()
        table.install(entry("a", base=0, size=gib(1)))
        table.install(entry("b", base=gib(1), size=gib(2)))
        assert table.mapped_bytes() == gib(3)

    def test_free_entries(self):
        table = RemoteMemorySegmentTable(capacity=4)
        table.install(entry("a"))
        assert table.free_entries == 3

    def test_adjacent_segments_allowed(self):
        table = RemoteMemorySegmentTable()
        table.install(entry("a", base=0, size=gib(1)))
        table.install(entry("b", base=gib(1), size=gib(1)))
        assert len(table) == 2

    def test_zero_capacity_rejected(self):
        with pytest.raises(SegmentTableError):
            RemoteMemorySegmentTable(capacity=0)

    def test_iteration(self):
        table = RemoteMemorySegmentTable()
        table.install(entry("a", base=0, size=10))
        table.install(entry("b", base=10, size=10))
        assert {e.segment_id for e in table} == {"a", "b"}
