"""Unit tests for memory technologies and controllers."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.hardware.memory_tech import (
    DDR4_2400,
    HMC_GEN2,
    MemoryController,
    MemoryModule,
    MemoryTechnology,
    technology_by_name,
)
from repro.units import gib


class TestTechnologyPresets:
    def test_ddr4_faster_access_than_hmc(self):
        assert DDR4_2400.access_latency_s < HMC_GEN2.access_latency_s

    def test_hmc_more_bandwidth(self):
        assert HMC_GEN2.bandwidth_bps > DDR4_2400.bandwidth_bps

    def test_hmc_lower_energy_per_bit(self):
        assert (HMC_GEN2.access_energy_pj_per_bit
                < DDR4_2400.access_energy_pj_per_bit)

    def test_lookup_by_name(self):
        assert technology_by_name("DDR4-2400") is DDR4_2400
        assert technology_by_name("HMC-gen2") is HMC_GEN2

    def test_lookup_unknown_raises(self):
        with pytest.raises(ConfigurationError, match="unknown memory"):
            technology_by_name("DDR9")


class TestServiceTime:
    def test_includes_access_and_controller(self):
        service = DDR4_2400.service_time(0)
        expected = DDR4_2400.access_latency_s + DDR4_2400.controller_latency_s
        assert service == pytest.approx(expected)

    def test_grows_with_size(self):
        assert DDR4_2400.service_time(4096) > DDR4_2400.service_time(64)

    def test_negative_size_rejected(self):
        with pytest.raises(ConfigurationError):
            DDR4_2400.service_time(-1)

    def test_access_energy(self):
        energy = DDR4_2400.access_energy_j(64)
        expected = 64 * 8 * 180.0 * 1e-12
        assert energy == pytest.approx(expected)

    def test_invalid_technology_rejected(self):
        with pytest.raises(ConfigurationError):
            MemoryTechnology("bad", access_latency_s=0.0,
                             bandwidth_bps=1.0,
                             access_energy_pj_per_bit=1.0,
                             controller_latency_s=0.0)


class TestMemoryController:
    def test_occupy_serializes_requests(self):
        controller = MemoryController("mc0", DDR4_2400)
        service = controller.service_time(64)
        first_done = controller.occupy(0.0, 64)
        assert first_done == pytest.approx(service)
        second_done = controller.occupy(0.0, 64)
        assert second_done == pytest.approx(2 * service)

    def test_idle_gap_no_queueing(self):
        controller = MemoryController("mc0", DDR4_2400)
        controller.occupy(0.0, 64)
        later = controller.occupy(1.0, 64)
        assert later == pytest.approx(1.0 + controller.service_time(64))

    def test_counters(self):
        controller = MemoryController("mc0", DDR4_2400)
        controller.occupy(0.0, 64)
        controller.occupy(0.0, 128)
        assert controller.requests_served == 2
        assert controller.bytes_moved == 192

    def test_busy_until_advances(self):
        controller = MemoryController("mc0", DDR4_2400)
        assert controller.busy_until == 0.0
        controller.occupy(0.0, 64)
        assert controller.busy_until > 0.0


class TestMemoryModule:
    def test_capacity(self):
        module = MemoryModule("m0", DDR4_2400, gib(16))
        assert module.capacity_bytes == gib(16)
        assert module.capacity_gib == pytest.approx(16.0)

    def test_technology_exposed(self):
        module = MemoryModule("m0", HMC_GEN2, gib(8))
        assert module.technology is HMC_GEN2

    def test_zero_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            MemoryModule("m0", DDR4_2400, 0)

    def test_controller_named_after_module(self):
        module = MemoryModule("brick.mod3", DDR4_2400, gib(4))
        assert module.controller.controller_id == "brick.mod3.mc"
