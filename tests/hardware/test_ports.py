"""Unit tests for transceiver ports."""

from __future__ import annotations

import pytest

from repro.errors import PortError
from repro.hardware.ports import (
    PortGroup,
    PortRole,
    PortState,
    TransceiverPort,
)
from repro.units import gbps


def make_port(name="p0", role=PortRole.CIRCUIT, rate=gbps(10)):
    return TransceiverPort(name, role, rate)


class TestTransceiverPort:
    def test_starts_free(self):
        port = make_port()
        assert port.is_free
        assert port.state is PortState.FREE
        assert port.peer is None

    def test_connect_is_symmetric(self):
        a, b = make_port("a"), make_port("b")
        a.connect(b)
        assert a.peer is b
        assert b.peer is a
        assert not a.is_free and not b.is_free

    def test_connect_to_self_rejected(self):
        port = make_port()
        with pytest.raises(PortError):
            port.connect(port)

    def test_connect_busy_port_rejected(self):
        a, b, c = make_port("a"), make_port("b"), make_port("c")
        a.connect(b)
        with pytest.raises(PortError):
            c.connect(a)

    def test_role_mismatch_rejected(self):
        cbn = make_port("a", PortRole.CIRCUIT)
        pbn = make_port("b", PortRole.PACKET)
        with pytest.raises(PortError):
            cbn.connect(pbn)

    def test_disconnect_frees_both(self):
        a, b = make_port("a"), make_port("b")
        a.connect(b)
        b.disconnect()
        assert a.is_free and b.is_free

    def test_disconnect_free_port_rejected(self):
        with pytest.raises(PortError):
            make_port().disconnect()

    def test_serialization_delay(self):
        port = make_port(rate=gbps(10))
        assert port.serialization_delay(64) == pytest.approx(51.2e-9)

    def test_serialization_negative_rejected(self):
        with pytest.raises(PortError):
            make_port().serialization_delay(-1)

    def test_bad_rate_rejected(self):
        with pytest.raises(PortError):
            TransceiverPort("x", PortRole.CIRCUIT, 0)


class TestPortGroup:
    def test_mixed_roles_rejected(self):
        with pytest.raises(PortError):
            PortGroup([make_port("a", PortRole.CIRCUIT),
                       make_port("b", PortRole.PACKET)])

    def test_allocate_first_free(self):
        ports = [make_port(f"p{i}") for i in range(3)]
        group = PortGroup(ports)
        assert group.allocate() is ports[0]
        ports[0].connect(make_port("ext"))
        assert group.allocate() is ports[1]

    def test_allocate_exhausted_raises(self):
        lone = make_port("p0")
        group = PortGroup([lone])
        lone.connect(make_port("ext"))
        with pytest.raises(PortError):
            group.allocate()

    def test_free_and_connected_views(self):
        ports = [make_port(f"p{i}") for i in range(2)]
        group = PortGroup(ports)
        ports[0].connect(make_port("ext"))
        assert group.free_ports == [ports[1]]
        assert group.connected_ports == [ports[0]]

    def test_by_id(self):
        ports = [make_port(f"p{i}") for i in range(2)]
        group = PortGroup(ports)
        assert group.by_id("p1") is ports[1]
        with pytest.raises(PortError):
            group.by_id("missing")

    def test_len_and_iter(self):
        ports = [make_port(f"p{i}") for i in range(4)]
        group = PortGroup(ports)
        assert len(group) == 4
        assert list(group) == ports
