"""Unit tests for the three brick types."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.hardware.bricks import (
    AcceleratorBrick,
    BrickType,
    ComputeBrick,
    MemoryBrick,
)
from repro.hardware.memory_tech import DDR4_2400, HMC_GEN2
from repro.hardware.ports import PortRole
from repro.units import gib


class TestBrickCommon:
    def test_ports_and_mbo_wired(self):
        brick = ComputeBrick("cb0", cbn_ports=8, pbn_ports=2)
        assert len(brick.circuit_ports) == 8
        assert len(brick.packet_ports) == 2
        assert len(brick.mbo.attached_channels) == 8

    def test_port_roles(self):
        brick = ComputeBrick("cb0")
        assert all(p.role is PortRole.CIRCUIT for p in brick.circuit_ports)
        assert all(p.role is PortRole.PACKET for p in brick.packet_ports)

    def test_port_names_carry_brick_id(self):
        brick = MemoryBrick("mb7")
        assert all(p.port_id.startswith("mb7.cbn")
                   for p in brick.circuit_ports)

    def test_unplugged_initially(self):
        assert not ComputeBrick("cb0").is_plugged

    def test_empty_id_rejected(self):
        with pytest.raises(ConfigurationError):
            ComputeBrick("")

    def test_default_power_profiles_differ_by_type(self):
        compute = ComputeBrick("cb0")
        memory = MemoryBrick("mb0")
        accel = AcceleratorBrick("ab0")
        assert compute.power_profile.active_w != memory.power_profile.active_w
        assert accel.power_profile.active_w > memory.power_profile.active_w


class TestComputeBrick:
    def test_type(self):
        assert ComputeBrick("cb0").brick_type is BrickType.COMPUTE

    def test_default_quad_core(self):
        assert ComputeBrick("cb0").core_count == 4

    def test_local_memory(self):
        brick = ComputeBrick("cb0", local_memory_bytes=gib(8))
        assert brick.local_memory_bytes == gib(8)

    def test_remote_memory_tracks_rmst(self):
        from repro.hardware.rmst import SegmentEntry
        brick = ComputeBrick("cb0")
        assert brick.remote_memory_bytes == 0
        brick.rmst.install(SegmentEntry(
            "s", base=gib(4), size=gib(2), remote_brick_id="mb0",
            remote_offset=0, egress_port_id="cb0.cbn0"))
        assert brick.remote_memory_bytes == gib(2)

    def test_zero_cores_rejected(self):
        with pytest.raises(ConfigurationError):
            ComputeBrick("cb0", core_count=0)

    def test_rmst_capacity_configurable(self):
        brick = ComputeBrick("cb0", rmst_entries=4)
        assert brick.rmst.capacity == 4


class TestMemoryBrick:
    def test_type(self):
        assert MemoryBrick("mb0").brick_type is BrickType.MEMORY

    def test_capacity_is_module_sum(self):
        brick = MemoryBrick("mb0", module_count=4, module_bytes=gib(16))
        assert brick.capacity_bytes == gib(64)
        assert brick.controller_count == 4

    def test_dimensioning(self):
        brick = MemoryBrick("mb0", module_count=2, module_bytes=gib(8))
        assert brick.capacity_bytes == gib(16)

    def test_mixed_technologies(self):
        brick = MemoryBrick("mb0", module_count=2,
                            technologies=[DDR4_2400, HMC_GEN2])
        assert brick.modules[0].technology is DDR4_2400
        assert brick.modules[1].technology is HMC_GEN2

    def test_technology_count_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            MemoryBrick("mb0", module_count=3, technologies=[DDR4_2400])

    def test_zero_modules_rejected(self):
        with pytest.raises(ConfigurationError):
            MemoryBrick("mb0", module_count=0)

    def test_glue_covers_all_modules(self):
        brick = MemoryBrick("mb0", module_count=3, module_bytes=gib(4))
        assert brick.glue.total_capacity_bytes == gib(12)


class TestAcceleratorBrick:
    def test_type(self):
        assert AcceleratorBrick("ab0").brick_type is BrickType.ACCELERATOR

    def test_starts_without_accelerator(self):
        assert not AcceleratorBrick("ab0").hosts_accelerator

    def test_pl_memory(self):
        brick = AcceleratorBrick("ab0", pl_memory_bytes=gib(16))
        assert brick.pl_memory.capacity_bytes == gib(16)

    def test_slot_budget(self):
        brick = AcceleratorBrick("ab0", slot_resources=42)
        assert brick.slot.resource_budget == 42
