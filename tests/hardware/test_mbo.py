"""Unit tests for the mid-board optics model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import PortError
from repro.hardware.mbo import (
    MBO_CHANNEL_COUNT,
    MBO_MEAN_LAUNCH_POWER_DBM,
    MidboardOptics,
)
from repro.hardware.ports import PortRole, TransceiverPort


def make_port(name="p0"):
    return TransceiverPort(name, PortRole.CIRCUIT)


class TestConstruction:
    def test_default_eight_channels(self):
        mbo = MidboardOptics("mbo0")
        assert len(mbo) == MBO_CHANNEL_COUNT

    def test_nominal_launch_power(self):
        mbo = MidboardOptics("mbo0")
        assert all(c.launch_power_dbm == MBO_MEAN_LAUNCH_POWER_DBM
                   for c in mbo)

    def test_launch_spread_requires_rng(self):
        with pytest.raises(PortError):
            MidboardOptics("mbo0", launch_sigma_db=0.5)

    def test_launch_spread_varies_channels(self):
        rng = np.random.default_rng(7)
        mbo = MidboardOptics("mbo0", launch_sigma_db=0.5, rng=rng)
        powers = [c.launch_power_dbm for c in mbo]
        assert len(set(powers)) > 1

    def test_wavelength_1310(self):
        mbo = MidboardOptics("mbo0")
        assert all(c.wavelength_nm == 1310.0 for c in mbo)

    def test_zero_channels_rejected(self):
        with pytest.raises(PortError):
            MidboardOptics("mbo0", channel_count=0)


class TestAttachments:
    def test_attach_and_resolve(self):
        mbo = MidboardOptics("mbo0")
        port = make_port()
        channel = mbo.attach_port(3, port)
        assert channel.channel_index == 3
        assert mbo.channel_for_port(port) is channel

    def test_double_attach_same_channel_rejected(self):
        mbo = MidboardOptics("mbo0")
        mbo.attach_port(0, make_port("a"))
        with pytest.raises(PortError):
            mbo.attach_port(0, make_port("b"))

    def test_same_port_two_channels_rejected(self):
        mbo = MidboardOptics("mbo0")
        port = make_port()
        mbo.attach_port(0, port)
        with pytest.raises(PortError):
            mbo.attach_port(1, port)

    def test_channel_index_bounds(self):
        mbo = MidboardOptics("mbo0")
        with pytest.raises(PortError):
            mbo.channel(8)
        with pytest.raises(PortError):
            mbo.channel(-1)

    def test_unattached_port_lookup_raises(self):
        mbo = MidboardOptics("mbo0")
        with pytest.raises(PortError):
            mbo.channel_for_port(make_port())

    def test_attached_channels_view(self):
        mbo = MidboardOptics("mbo0")
        mbo.attach_port(2, make_port("a"))
        mbo.attach_port(5, make_port("b"))
        indexes = [c.channel_index for c in mbo.attached_channels]
        assert indexes == [2, 5]
