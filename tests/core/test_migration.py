"""Tests for VM migration across compute bricks."""

from __future__ import annotations

import pytest

from repro.core.builder import RackBuilder
from repro.core.migration import MigrationFlow
from repro.errors import HypervisorError, OrchestrationError
from repro.orchestration.requests import VmAllocationRequest
from repro.software.vm import VmState
from repro.units import gib


@pytest.fixture
def migration_rack():
    system = (RackBuilder("mig")
              .with_compute_bricks(3, cores=8, local_memory=gib(2))
              .with_memory_bricks(2, modules=4, module_size=gib(16))
              .build())
    system.boot_vm(VmAllocationRequest("vm-0", vcpus=4, ram_bytes=gib(10)))
    return system


def other_brick(system, vm_id="vm-0"):
    current = system.hosting(vm_id).brick_id
    return next(b.brick_id for b in system.compute_bricks
                if b.brick_id != current)


class TestMigrationFlow:
    def test_vm_lands_running_on_target(self, migration_rack):
        target = other_brick(migration_rack)
        report = migration_rack.migrate_vm("vm-0", target)
        hosted = migration_rack.hosting("vm-0")
        assert hosted.brick_id == target
        assert hosted.vm.is_running
        assert report.total_s > 0

    def test_memory_content_never_copied(self, migration_rack):
        """The headline: remote segments re-point instead of moving."""
        target = other_brick(migration_rack)
        report = migration_rack.migrate_vm("vm-0", target)
        assert report.repointed_bytes >= gib(8)
        # Only the local slice + device state crossed the network.
        assert report.copied_bytes < gib(3)

    def test_beats_conventional_full_copy(self, migration_rack):
        target = other_brick(migration_rack)
        report = migration_rack.migrate_vm("vm-0", target)
        assert report.speedup_vs_conventional > 2.0

    def test_rmst_moves_with_the_vm(self, migration_rack):
        source_id = migration_rack.hosting("vm-0").brick_id
        target = other_brick(migration_rack)
        migration_rack.migrate_vm("vm-0", target)
        assert len(migration_rack.stack(source_id).brick.rmst) == 0
        assert len(migration_rack.stack(target).brick.rmst) >= 1

    def test_circuits_swing_to_target(self, migration_rack):
        source_id = migration_rack.hosting("vm-0").brick_id
        target = other_brick(migration_rack)
        migration_rack.migrate_vm("vm-0", target)
        source_brick = migration_rack.stack(source_id).brick
        target_brick = migration_rack.stack(target).brick
        assert migration_rack.fabric.circuits_of(source_brick) == []
        assert len(migration_rack.fabric.circuits_of(target_brick)) >= 1

    def test_runtime_segments_migrate_too(self, migration_rack):
        result = migration_rack.scale_up("vm-0", gib(4))
        target = other_brick(migration_rack)
        migration_rack.migrate_vm("vm-0", target)
        # Scale-down works through the *target* brick's controller now.
        migration_rack.scale_down("vm-0", result.segment.segment_id)
        assert migration_rack.hosting("vm-0").vm.configured_ram_bytes == \
            gib(10)

    def test_source_resources_freed(self, migration_rack):
        source_id = migration_rack.hosting("vm-0").brick_id
        target = other_brick(migration_rack)
        migration_rack.migrate_vm("vm-0", target)
        source = migration_rack.stack(source_id)
        assert source.hypervisor.cores_in_use() == 0
        assert source.kernel.reserved_bytes == 0
        # Source can host a new VM immediately.
        migration_rack.boot_vm(VmAllocationRequest(
            "vm-new", vcpus=8, ram_bytes=gib(1)))

    def test_lifecycle_after_migration(self, migration_rack):
        target = other_brick(migration_rack)
        migration_rack.migrate_vm("vm-0", target)
        latency = migration_rack.terminate_vm("vm-0")
        assert latency > 0
        assert migration_rack.sdm.live_segments == []
        assert migration_rack.fabric.active_circuits == []

    def test_migrate_to_same_brick_rejected(self, migration_rack):
        current = migration_rack.hosting("vm-0").brick_id
        with pytest.raises(OrchestrationError, match="already on"):
            migration_rack.migrate_vm("vm-0", current)

    def test_target_core_shortage_rejected_preflight(self, migration_rack):
        """A full target is rejected BEFORE the VM is touched."""
        target = other_brick(migration_rack)
        migration_rack.boot_vm(VmAllocationRequest(
            "blocker", vcpus=8, ram_bytes=gib(1)))
        blocker_home = migration_rack.hosting("blocker").brick_id
        if blocker_home == target:
            with pytest.raises(OrchestrationError, match="free cores"):
                migration_rack.migrate_vm("vm-0", target)
            # Pre-flight failure leaves the guest untouched and running.
            hosted = migration_rack.hosting("vm-0")
            assert hosted.vm.is_running
            assert hosted.brick_id != target

    def test_migrate_to_sleeping_brick_wakes_it(self, migration_rack):
        target = other_brick(migration_rack)
        migration_rack.stack(target).brick.power_off()
        report = migration_rack.migrate_vm("vm-0", target)
        assert "target_power_on" in report.steps
        assert migration_rack.stack(target).brick.is_powered
        assert migration_rack.hosting("vm-0").vm.is_running

    def test_conventional_estimate_scales_with_ram(self):
        system = (RackBuilder("est")
                  .with_compute_bricks(2)
                  .with_memory_bricks(1)
                  .build())
        flow = MigrationFlow(system)
        assert (flow.conventional_estimate_s(gib(64))
                > 4 * flow.conventional_estimate_s(gib(8)))

    def test_bad_link_rate_rejected(self, migration_rack):
        with pytest.raises(OrchestrationError):
            MigrationFlow(migration_rack, link_rate_bps=0)


class TestHypervisorEvictAdopt:
    def test_evict_requires_paused(self, migration_rack):
        hosted = migration_rack.hosting("vm-0")
        stack = migration_rack.stack(hosted.brick_id)
        with pytest.raises(HypervisorError, match="paused"):
            stack.hypervisor.evict_vm("vm-0")

    def test_adopt_requires_paused(self, migration_rack):
        hosted = migration_rack.hosting("vm-0")
        source = migration_rack.stack(hosted.brick_id)
        hosted.vm.transition(VmState.PAUSED)
        vm, dimms = source.hypervisor.evict_vm("vm-0")
        vm.transition(VmState.RUNNING)
        target = migration_rack.stack(other_brick(migration_rack))
        with pytest.raises(HypervisorError, match="paused"):
            target.hypervisor.adopt_vm(vm, dimms)

    def test_evict_releases_accounting(self, migration_rack):
        hosted = migration_rack.hosting("vm-0")
        stack = migration_rack.stack(hosted.brick_id)
        hosted.vm.transition(VmState.PAUSED)
        stack.hypervisor.evict_vm("vm-0")
        assert stack.hypervisor.cores_in_use() == 0
        assert stack.kernel.reserved_bytes == 0


class TestSourceSidePreflight:
    """Migration must refuse — cleanly, pre-pause — when the VM's
    remote segments back co-hosted guests' RAM (regression: the kernel
    guard used to fire mid-pipeline, after pause+evict, stranding the
    VM outside any hypervisor)."""

    def test_migration_refused_when_cohosted_ram_depends_on_segments(self):
        system = (RackBuilder("srcpre")
                  .with_compute_bricks(2, cores=8, local_memory=gib(2))
                  .with_memory_bricks(1, modules=1, module_size=gib(8))
                  .build())
        # The VM attaches a 2 GiB remote boot segment to cb0's pool.
        first = system.boot_vm(VmAllocationRequest(
            "vm-a", vcpus=1, ram_bytes=gib(4)))
        assert first.boot_segments  # remote memory really backs it
        brick = first.brick_id
        stack = system.stack(brick)
        # A co-hosted guest's RAM leans on the pool vm-a's segment
        # provides.  Concurrent boot/migrate/depart traffic produces
        # exactly this dependence (observed in control-plane runs);
        # reproducing the multi-VM interleaving here would obscure the
        # point, so the leaning reservation is installed white-box.
        stack.kernel._reserved_bytes += gib(3)

        target = next(s.brick.brick_id for s in system.stacks
                      if s.brick.brick_id != brick)
        with pytest.raises(OrchestrationError, match="co-hosted guest RAM"):
            system.migrate_vm("vm-a", target)

        # Clean refusal: vm-a still runs on the source, untouched, and
        # winds down normally once the dependence is gone.
        assert system.hosting("vm-a").brick_id == brick
        assert system.hosting("vm-a").vm.is_running
        stack.kernel._reserved_bytes -= gib(3)
        system.migrate_vm("vm-a", target)
        assert system.hosting("vm-a").brick_id == target
        system.terminate_vm("vm-a")
        assert system.sdm.live_segments == []
