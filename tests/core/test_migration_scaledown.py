"""Regression: scale-down after migration must detach the right DIMM.

The seed-failing property test distilled: a VM that scaled up, migrated,
and scaled up again ended with two DIMMs named ``vm.dimm0`` — the target
hypervisor's id counter restarts at 0, and the migrated VM arrived with
DIMMs minted by the *source* hypervisor's counter.  ``unplug_dimm``
then matched the wrong (smaller) DIMM, leaving stale reservations that
made ``detach_segment`` reject the detach as if balloon/guest
reservations exceeded the post-detach headroom.
"""

from __future__ import annotations

import pytest

from repro.core.builder import RackBuilder
from repro.errors import HotplugError
from repro.orchestration.requests import VmAllocationRequest
from repro.software.balloon import BalloonDriver
from repro.units import gib


@pytest.fixture
def system():
    return (RackBuilder("reg")
            .with_compute_bricks(3, cores=8, local_memory=gib(2))
            .with_memory_bricks(3, modules=2, module_size=gib(8))
            .build())


class TestScaleDownAfterMigration:
    def test_falsifying_sequence_from_seed(self, system):
        """boot -> scale_up -> migrate -> scale_up -> scale_down."""
        system.boot_vm(
            VmAllocationRequest("vm-0", vcpus=1, ram_bytes=gib(2)))
        first = system.scale_up("vm-0", gib(1))
        system.migrate_vm("vm-0", "reg.cb1")
        second = system.scale_up("vm-0", gib(2))

        steps = system.scale_down("vm-0", second.segment.segment_id)
        assert steps["kernel_detach"] > 0

        kernel = system.stack("reg.cb1").kernel
        # Only the boot RAM and the first scale-up remain reserved.
        assert kernel.reserved_bytes == gib(3)
        # The remaining segment is the first scale-up's.
        attached_ids = {r.segment.segment_id
                        for r in kernel.attached_segments}
        assert attached_ids == {first.segment.segment_id}

    def test_dimm_ids_stay_unique_after_migration(self, system):
        system.boot_vm(
            VmAllocationRequest("vm-0", vcpus=1, ram_bytes=gib(2)))
        system.scale_up("vm-0", gib(1))
        system.migrate_vm("vm-0", "reg.cb1")
        system.scale_up("vm-0", gib(2))
        dimms = system.stack("reg.cb1").hypervisor.dimms_of("vm-0")
        ids = [d.dimm_id for d in dimms]
        assert len(ids) == len(set(ids)) == 2

    def test_scale_down_order_is_preserved(self, system):
        """Both segments remain individually detachable, in any order."""
        system.boot_vm(
            VmAllocationRequest("vm-0", vcpus=1, ram_bytes=gib(2)))
        first = system.scale_up("vm-0", gib(1))
        system.migrate_vm("vm-0", "reg.cb2")
        second = system.scale_up("vm-0", gib(2))
        system.scale_down("vm-0", first.segment.segment_id)
        system.scale_down("vm-0", second.segment.segment_id)
        assert system.stack("reg.cb2").kernel.attached_segments == []


class TestDetachHeadroomWithBalloon:
    def test_balloon_reservation_does_not_block_unrelated_detach(
            self, system):
        """An inflated balloon holds *configured* pages; detaching a
        window whose DIMM was unplugged must still succeed."""
        info = system.boot_vm(
            VmAllocationRequest("vm-0", vcpus=1, ram_bytes=gib(2)))
        result = system.scale_up("vm-0", gib(1))
        balloon = BalloonDriver(info.vm)
        balloon.inflate(gib(1))
        steps = system.scale_down("vm-0", result.segment.segment_id)
        assert steps["kernel_detach"] > 0
        assert system.stack(info.brick_id).kernel.reserved_bytes == gib(2)

    def test_detach_still_guards_genuinely_needed_windows(self, system):
        """Detaching a window that backs live guest RAM must fail."""
        info = system.boot_vm(
            VmAllocationRequest("vm-0", vcpus=1, ram_bytes=gib(4)))
        assert info.boot_segments, "boot should have needed remote memory"
        kernel = system.stack(info.brick_id).kernel
        with pytest.raises(HotplugError, match="would remain"):
            kernel.detach_segment(info.boot_segments[0].segment_id)
