"""Unit tests for the rack builder."""

from __future__ import annotations

import pytest

from repro.core.builder import PodBuilder, RackBuilder
from repro.errors import ConfigurationError, TopologyError
from repro.network.optical.switch import OpticalCircuitSwitch
from repro.orchestration.placement import SpreadPolicy
from repro.orchestration.sdm_controller import SdmTimings
from repro.units import gib


class TestBuild:
    def test_counts(self):
        system = (RackBuilder("r")
                  .with_compute_bricks(3)
                  .with_memory_bricks(2)
                  .with_accelerator_bricks(1)
                  .build())
        assert len(system.compute_bricks) == 3
        assert len(system.memory_bricks) == 2
        assert len(system.accelerator_bricks) == 1

    def test_every_brick_attached_to_fabric(self):
        system = RackBuilder("r").with_compute_bricks(2).build()
        for brick in system.rack.bricks():
            assert system.fabric.is_attached(brick)

    def test_stacks_wired_per_compute_brick(self):
        system = RackBuilder("r").with_compute_bricks(2).build()
        for stack in system.stacks:
            assert stack.hypervisor.kernel is stack.kernel
            assert stack.agent.kernel is stack.kernel
            assert stack.scaleup.allocator is system.sdm

    def test_registry_covers_all_bricks(self):
        system = (RackBuilder("r")
                  .with_compute_bricks(2)
                  .with_memory_bricks(3)
                  .build())
        assert len(system.sdm.registry.compute_entries) == 2
        assert len(system.sdm.registry.memory_entries) == 3

    def test_tray_packing(self):
        system = (RackBuilder("r")
                  .with_compute_bricks(3)
                  .with_memory_bricks(3)
                  .with_tray_slots(4)
                  .build())
        assert len(system.rack.trays) == 2

    def test_switch_auto_sized_for_fleet(self):
        system = (RackBuilder("r")
                  .with_compute_bricks(8)
                  .with_memory_bricks(8)
                  .build())
        assert system.fabric.switch.port_count >= 16 * 8

    def test_custom_switch(self):
        switch = OpticalCircuitSwitch.next_generation("gen2")
        system = (RackBuilder("r")
                  .with_compute_bricks(1)
                  .with_memory_bricks(1)
                  .with_cbn_ports(4)
                  .with_switch(switch)
                  .build())
        assert system.fabric.switch is switch

    def test_custom_policy_and_timings(self):
        policy = SpreadPolicy()
        timings = SdmTimings(reservation_s=0.001)
        system = (RackBuilder("r")
                  .with_policy(policy)
                  .with_sdm_timings(timings)
                  .build())
        assert system.sdm.policy is policy
        assert system.sdm.timings.reservation_s == 0.001

    def test_section_size_propagates(self):
        system = (RackBuilder("r")
                  .with_section_size(gib(1))
                  .build())
        for stack in system.stacks:
            assert stack.kernel.hotplug.section_bytes == gib(1)
        assert system.sdm.registry.segment_alignment == gib(1)

    def test_core_and_memory_dimensions(self):
        system = (RackBuilder("r")
                  .with_compute_bricks(1, cores=32, local_memory=gib(8))
                  .with_memory_bricks(1, modules=8, module_size=gib(8))
                  .build())
        assert system.compute_bricks[0].core_count == 32
        assert system.memory_bricks[0].capacity_bytes == gib(64)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RackBuilder("r").with_compute_bricks(0)
        with pytest.raises(ConfigurationError):
            RackBuilder("r").with_memory_bricks(0)
        with pytest.raises(ConfigurationError):
            RackBuilder("r").with_accelerator_bricks(-1)
        with pytest.raises(ConfigurationError):
            RackBuilder("r").with_tray_slots(0)
        with pytest.raises(ConfigurationError):
            RackBuilder("r").with_cbn_ports(0)


class TestTopologyErrors:
    """Impossible rack/brick counts raise the typed TopologyError (a
    ConfigurationError subclass, so legacy except-clauses still catch)."""

    def test_impossible_brick_counts_are_topology_errors(self):
        with pytest.raises(TopologyError):
            RackBuilder("r").with_compute_bricks(0)
        with pytest.raises(TopologyError):
            RackBuilder("r").with_memory_bricks(-1)
        with pytest.raises(TopologyError):
            RackBuilder("r").with_accelerator_bricks(-1)

    def test_impossible_pod_shapes_are_topology_errors(self):
        with pytest.raises(TopologyError):
            PodBuilder("p").with_racks(0)
        with pytest.raises(TopologyError):
            PodBuilder("p").with_uplinks(0)

    def test_topology_error_subclasses_configuration_error(self):
        assert issubclass(TopologyError, ConfigurationError)

    def test_non_shape_validation_stays_plain_configuration_error(self):
        # Tray slots and CBN ports are rack-internal plumbing, not
        # topology shape: they keep the untyped error.
        for bad_call in (lambda: RackBuilder("r").with_tray_slots(0),
                         lambda: RackBuilder("r").with_cbn_ports(0)):
            with pytest.raises(ConfigurationError) as excinfo:
                bad_call()
            assert not isinstance(excinfo.value, TopologyError)
