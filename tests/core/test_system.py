"""Unit tests for the assembled DisaggregatedRack."""

from __future__ import annotations

import pytest

from repro.errors import OrchestrationError
from repro.memory.segments import SegmentState
from repro.orchestration.requests import VmAllocationRequest
from repro.units import gib


class TestBootVm:
    def test_boot_within_local_memory(self, small_system):
        info = small_system.boot_vm(
            VmAllocationRequest("vm-0", vcpus=2, ram_bytes=gib(1)))
        assert info.boot_segments == []
        assert info.vm.is_running
        assert info.latency_s > 0

    def test_boot_beyond_local_attaches_remote(self, small_system):
        info = small_system.boot_vm(
            VmAllocationRequest("vm-0", vcpus=2, ram_bytes=gib(6)))
        assert len(info.boot_segments) >= 1
        stack = small_system.stack(info.brick_id)
        assert stack.kernel.total_ram_bytes >= gib(6)
        assert all(s.state is SegmentState.ACTIVE
                   for s in info.boot_segments)

    def test_boot_creates_circuits(self, small_system):
        small_system.boot_vm(
            VmAllocationRequest("vm-0", vcpus=2, ram_bytes=gib(6)))
        assert len(small_system.fabric.active_circuits) >= 1

    def test_duplicate_vm_id_rejected(self, system_with_vm):
        with pytest.raises(OrchestrationError, match="already in use"):
            system_with_vm.boot_vm(
                VmAllocationRequest("vm-0", vcpus=1, ram_bytes=gib(1)))

    def test_memory_bigger_than_any_brick(self, small_system):
        # 12 GiB VM on a rack with 2 GiB local + 2 x 16 GiB membricks.
        info = small_system.boot_vm(
            VmAllocationRequest("vm-big", vcpus=2, ram_bytes=gib(12)))
        assert info.vm.configured_ram_bytes == gib(12)

    def test_hosting_lookup(self, system_with_vm):
        hosted = system_with_vm.hosting("vm-0")
        assert hosted.vm.vm_id == "vm-0"
        with pytest.raises(OrchestrationError):
            system_with_vm.hosting("ghost")


class TestScaleUpDown:
    def test_scale_up_increases_vm_ram(self, system_with_vm):
        before = system_with_vm.hosting("vm-0").vm.configured_ram_bytes
        result = system_with_vm.scale_up("vm-0", gib(2))
        after = system_with_vm.hosting("vm-0").vm.configured_ram_bytes
        assert after == before + gib(2)
        assert result.segment.state is SegmentState.ACTIVE

    def test_scale_down_returns_memory(self, system_with_vm):
        result = system_with_vm.scale_up("vm-0", gib(2))
        before = system_with_vm.hosting("vm-0").vm.configured_ram_bytes
        system_with_vm.scale_down("vm-0", result.segment.segment_id)
        after = system_with_vm.hosting("vm-0").vm.configured_ram_bytes
        assert after == before - gib(2)
        assert result.segment.state is SegmentState.RELEASED

    def test_scale_unknown_vm_rejected(self, small_system):
        with pytest.raises(OrchestrationError):
            small_system.scale_up("ghost", gib(1))


class TestTerminate:
    def test_terminate_releases_everything(self, small_system):
        small_system.boot_vm(
            VmAllocationRequest("vm-0", vcpus=2, ram_bytes=gib(6)))
        small_system.scale_up("vm-0", gib(2))
        latency = small_system.terminate_vm("vm-0")
        assert latency > 0
        assert small_system.vms == []
        assert small_system.sdm.live_segments == []
        assert small_system.fabric.active_circuits == []

    def test_terminate_frees_cores_for_new_vm(self, small_system):
        small_system.boot_vm(
            VmAllocationRequest("vm-0", vcpus=8, ram_bytes=gib(1)))
        small_system.terminate_vm("vm-0")
        info = small_system.boot_vm(
            VmAllocationRequest("vm-1", vcpus=8, ram_bytes=gib(1)))
        assert info.vm.is_running

    def test_terminate_unknown_rejected(self, small_system):
        with pytest.raises(OrchestrationError):
            small_system.terminate_vm("ghost")


class TestPowerManagement:
    def test_power_off_idle_spares_used_bricks(self, system_with_vm):
        off = system_with_vm.power_off_idle()
        hosted_brick = system_with_vm.hosting("vm-0").brick_id
        assert hosted_brick not in off
        # The second compute brick is idle and goes dark.
        assert any(brick_id.startswith("test-rack.cb") for brick_id in off)

    def test_power_draw_drops_after_power_off(self, system_with_vm):
        before = system_with_vm.total_power_w()
        system_with_vm.power_off_idle()
        assert system_with_vm.total_power_w() < before

    def test_booting_after_power_off_wakes_bricks(self, small_system):
        small_system.power_off_idle()
        info = small_system.boot_vm(
            VmAllocationRequest("vm-0", vcpus=2, ram_bytes=gib(6)))
        assert info.vm.is_running


class TestSnapshot:
    def test_snapshot_consistency(self, system_with_vm):
        from repro.core.metrics import snapshot
        snap = snapshot(system_with_vm)
        assert snap.vm_count == 1
        assert snap.cores_in_use == 2
        assert snap.cores_total == 16
        assert snap.core_utilization == pytest.approx(2 / 16)
        assert 0 <= snap.memory_utilization <= 1
        assert snap.power_draw_w == pytest.approx(
            system_with_vm.total_power_w())

    def test_snapshot_tracks_power_off(self, system_with_vm):
        from repro.core.metrics import snapshot
        system_with_vm.power_off_idle()
        snap = snapshot(system_with_vm)
        assert snap.compute_bricks_off + snap.memory_bricks_off > 0
        assert snap.bricks_off_fraction > 0


class TestBootRollback:
    """A boot that fails mid-pipeline must return every resource."""

    def _system(self):
        from repro.core.builder import RackBuilder
        return (RackBuilder("rollback")
                .with_compute_bricks(1, cores=8, local_memory=gib(2))
                .with_memory_bricks(1, modules=1, module_size=gib(8))
                .build())

    def test_attach_failure_releases_in_flight_segment(self):
        from repro.errors import HotplugError
        system = self._system()
        stack = system.stacks[0]
        original = stack.agent.attach_segment

        def injected(segment):
            raise HotplugError("injected attach failure")

        stack.agent.attach_segment = injected
        with pytest.raises(HotplugError, match="injected"):
            system.boot_vm(VmAllocationRequest(
                "vm-x", vcpus=1, ram_bytes=gib(4)))
        # Nothing leaked: no SDM record, no allocator bytes, no circuit,
        # no RMST entry, no VM.
        assert system.sdm.live_segments == []
        assert sum(e.allocator.allocated_bytes
                   for e in system.sdm.registry.memory_entries) == 0
        assert system.fabric.active_circuits == []
        assert len(stack.brick.rmst) == 0
        assert system.vms == []

        # The brick is fully reusable afterwards.
        stack.agent.attach_segment = original
        info = system.boot_vm(VmAllocationRequest(
            "vm-x", vcpus=1, ram_bytes=gib(4)))
        assert info.boot_segments
        system.terminate_vm("vm-x")
        assert system.sdm.live_segments == []

    def test_scale_up_rollback_on_hypervisor_failure(self):
        from repro.errors import HypervisorError
        system = self._system()
        system.boot_vm(VmAllocationRequest("vm-x", vcpus=1,
                                           ram_bytes=gib(1)))
        stack = system.stacks[0]
        allocated_before = sum(e.allocator.allocated_bytes
                               for e in system.sdm.registry.memory_entries)
        segments_before = len(system.sdm.live_segments)

        original = stack.hypervisor.hotplug_dimm

        def injected(vm_id, size_bytes, segment_id=None):
            raise HypervisorError("injected DIMM failure")

        stack.hypervisor.hotplug_dimm = injected
        with pytest.raises(HypervisorError, match="injected"):
            system.scale_up("vm-x", gib(1))
        assert len(system.sdm.live_segments) == segments_before
        assert sum(e.allocator.allocated_bytes
                   for e in system.sdm.registry.memory_entries) == \
            allocated_before
        assert stack.scaleup.attached_segments() == []

        stack.hypervisor.hotplug_dimm = original
        result = system.scale_up("vm-x", gib(1))
        assert result.segment.is_active
