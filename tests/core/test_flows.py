"""Unit tests for the timed scale-up harness and scale-out baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.builder import RackBuilder
from repro.core.flows import (
    SCALE_OUT_MEAN_S,
    TimedScaleUpHarness,
    scale_out_baseline_delays,
)
from repro.errors import SimulationError
from repro.orchestration.requests import VmAllocationRequest
from repro.units import gib


def build_loaded_system(vm_count=4):
    system = (RackBuilder("flows")
              .with_compute_bricks(vm_count, cores=8, local_memory=gib(2))
              .with_memory_bricks(2, modules=4, module_size=gib(16))
              .build())
    for index in range(vm_count):
        system.boot_vm(VmAllocationRequest(
            f"vm-{index}", vcpus=8, ram_bytes=gib(1)))
    return system


class TestTimedHarness:
    def test_single_scale_up_completes(self):
        system = build_loaded_system(1)
        harness = TimedScaleUpHarness(system)
        harness.post_scale_up("vm-0", gib(1))
        (sample,) = harness.run()
        assert sample.vm_id == "vm-0"
        assert sample.delay_s > 0
        assert set(sample.steps) >= {
            "controller", "sdm_queue", "sdm", "glue_config",
            "kernel_attach", "hypervisor"}

    def test_vm_actually_scaled(self):
        system = build_loaded_system(1)
        harness = TimedScaleUpHarness(system)
        harness.post_scale_up("vm-0", gib(2))
        harness.run()
        assert system.hosting("vm-0").vm.configured_ram_bytes == gib(3)

    def test_concurrency_queues_at_sdm(self):
        system = build_loaded_system(4)
        harness = TimedScaleUpHarness(system)
        for index in range(4):
            harness.post_scale_up(f"vm-{index}", gib(1), at=0.0)
        samples = harness.run()
        queues = sorted(s.steps["sdm_queue"] for s in samples)
        assert queues[0] == pytest.approx(0.0, abs=1e-9)
        assert queues[-1] > 0.0

    def test_concurrency_raises_mean_delay(self):
        lone_system = build_loaded_system(1)
        lone = TimedScaleUpHarness(lone_system)
        lone.post_scale_up("vm-0", gib(1))
        (lone_sample,) = lone.run()

        busy_system = build_loaded_system(6)
        busy = TimedScaleUpHarness(busy_system)
        for index in range(6):
            busy.post_scale_up(f"vm-{index}", gib(1), at=0.0)
        samples = busy.run()
        mean_busy = np.mean([s.delay_s for s in samples])
        assert mean_busy > lone_sample.delay_s

    def test_staggered_posting_times(self):
        system = build_loaded_system(2)
        harness = TimedScaleUpHarness(system)
        harness.post_scale_up("vm-0", gib(1), at=0.0)
        harness.post_scale_up("vm-1", gib(1), at=5.0)
        samples = harness.run()
        late = next(s for s in samples if s.vm_id == "vm-1")
        assert late.posted_at == 5.0
        # Posted after the rush: no queueing.
        assert late.steps["sdm_queue"] == pytest.approx(0.0, abs=1e-9)

    def test_posting_into_past_rejected(self):
        system = build_loaded_system(1)
        harness = TimedScaleUpHarness(system)
        harness.post_scale_up("vm-0", gib(1), at=1.0)
        harness.run()
        with pytest.raises(SimulationError):
            harness.post_scale_up("vm-0", gib(1), at=0.5)

    def test_delay_dominated_by_attach_for_big_requests(self):
        system = build_loaded_system(1)
        harness = TimedScaleUpHarness(system)
        harness.post_scale_up("vm-0", gib(8))
        (sample,) = harness.run()
        attach_cost = (sample.steps["kernel_attach"]
                       + sample.steps["hypervisor"])
        assert attach_cost > sample.steps["sdm"]


class TestScaleOutBaseline:
    def test_mean_near_reference(self):
        rng = np.random.default_rng(0)
        delays = scale_out_baseline_delays(200, rng,
                                           contention_s_per_vm=0.0)
        assert np.mean(delays) == pytest.approx(SCALE_OUT_MEAN_S, rel=0.3)

    def test_orders_of_magnitude_slower_than_scale_up(self):
        system = build_loaded_system(1)
        harness = TimedScaleUpHarness(system)
        harness.post_scale_up("vm-0", gib(1))
        (sample,) = harness.run()
        rng = np.random.default_rng(0)
        scale_out = np.mean(scale_out_baseline_delays(8, rng))
        assert scale_out / sample.delay_s > 10

    def test_floor_at_one_second(self):
        rng = np.random.default_rng(0)
        delays = scale_out_baseline_delays(100, rng, mean_s=0.5, sigma_s=0.1)
        assert min(delays) >= 1.0

    def test_contention_grows_with_count(self):
        rng = np.random.default_rng(0)
        delays = scale_out_baseline_delays(
            50, rng, sigma_s=0.0, contention_s_per_vm=1.0)
        assert delays[-1] > delays[0]

    def test_zero_count_rejected(self):
        with pytest.raises(SimulationError):
            scale_out_baseline_delays(0, np.random.default_rng(0))
