"""Rolling maintenance: verified drains, fencing, rollback, restore.

Exercises the MaintenanceSupervisor end to end on real federations:
rack drains relocate segments with read-back verification and retire
the rack; pod drains live-migrate tenants to peer pods while the
placer spills newcomers (zero admission downtime); a fault landing in
the drain scope fences the drain, which unwinds its moves and returns
the bricks to active; restore walks a maintained pod back to service.
"""

from __future__ import annotations

import pytest

from repro.errors import MaintenanceError
from repro.faults import FaultInjector
from repro.federation import build_federation
from repro.maintenance import BrickState, MaintenanceSupervisor
from repro.orchestration.requests import VmAllocationRequest
from repro.units import gib


def boot_tenant(fed, tenant_id, pod_id, ram_bytes=gib(2)):
    request = fed.pods[pod_id].plane.submit(
        "boot", tenant_id,
        request=VmAllocationRequest(vm_id=tenant_id, vcpus=1,
                                    ram_bytes=ram_bytes))
    fed._tenant_pod[tenant_id] = pod_id
    fed.sim.run()
    assert request.record.ok, request.record.note
    claim = fed.placer.reserve(pod_id, ram_bytes, 1,
                               tenant_id=tenant_id)
    fed.placer.commit(claim)


def pool_consistent(fed):
    for pod in fed.pods.values():
        entries = pod.system.sdm.registry.memory_entries
        allocated = sum(e.allocator.allocated_bytes for e in entries)
        live = sum(s.size for s in pod.system.sdm.live_segments)
        assert allocated == live, pod.pod_id
        for entry in entries:
            entry.allocator.check_invariants()
        assert getattr(pod.system.sdm, "pending_holds", []) == []
    assert fed.placer.pending_claims == []


def depart_all(fed, tenants):
    for tenant_id in tenants:
        fed.sim.process(fed.submit_process("depart", tenant_id))
    fed.sim.run()


def rack_states(fed, pod_id, rack):
    registry = fed.pods[pod_id].system.sdm.registry
    return {e.brick.brick_id: e.lifecycle.state
            for e in registry.memory_entries + registry.compute_entries
            if e.rack_id == rack}


def drain_rack(fed, sup, pod_id, rack):
    fed.sim.process(sup.drain_rack_process(pod_id, rack))
    fed.sim.run()
    return sup.reports[-1]


def drain_pod(fed, sup, pod_id):
    fed.sim.process(sup.drain_pod_process(pod_id))
    fed.sim.run()
    return sup.reports[-1]


class TestRackDrain:
    def test_idle_rack_retires_without_moving_anything(self):
        fed = build_federation(1, racks_per_pod=2)
        sup = MaintenanceSupervisor(fed)
        report = drain_rack(fed, sup, "pod0", "pod0.rack0")
        assert report.committed and not report.aborted
        assert report.racks_retired == ["pod0.rack0"]
        assert report.segments_moved == 0
        assert set(rack_states(fed, "pod0", "pod0.rack0").values()) == \
            {BrickState.MAINTENANCE}

    def test_loaded_rack_evacuates_with_verification(self):
        fed = build_federation(1, racks_per_pod=2)
        tenants = ["t0", "t1"]
        for tenant_id in tenants:
            boot_tenant(fed, tenant_id, "pod0")
        sup = MaintenanceSupervisor(fed)
        pod = fed.pods["pod0"]
        registry = pod.system.sdm.registry
        # Drain whichever rack actually hosts load.
        racks = sorted({e.rack_id for e in registry.memory_entries})
        loaded = next(
            rack for rack in racks
            if any(e.allocator.allocated_bytes
                   for e in registry.memory_entries
                   if e.rack_id == rack)
            or any(pod.system.hosting(t).brick_id
                   for t in tenants
                   if registry.rack_of(pod.system.hosting(t).brick_id)
                   == rack))
        report = drain_rack(fed, sup, "pod0", loaded)
        assert report.committed, report.abort_reason
        assert report.verify_failures == 0
        assert report.segments_moved + report.tenants_migrated > 0
        # Nothing lives on the retired rack any more.
        assert all(e.allocator.allocated_bytes == 0
                   for e in registry.memory_entries
                   if e.rack_id == loaded)
        for tenant_id in tenants:
            brick = pod.system.hosting(tenant_id).brick_id
            assert registry.rack_of(brick) != loaded
        pool_consistent(fed)
        depart_all(fed, tenants)
        pool_consistent(fed)

    def test_unknown_rack_and_overlap_are_rejected(self):
        fed = build_federation(1, racks_per_pod=2)
        sup = MaintenanceSupervisor(fed)
        with pytest.raises(MaintenanceError, match="unknown rack"):
            next(sup.drain_rack_process("pod0", "pod0.rack9"))
        with pytest.raises(MaintenanceError, match="unknown pod"):
            next(sup.drain_rack_process("pod9", "pod0.rack0"))
        fed.sim.process(sup.drain_rack_process("pod0", "pod0.rack0"))
        # Overlapping drain on the same pod is refused while in flight.
        fed.sim.process(sup.drain_rack_process("pod0", "pod0.rack1"))
        with pytest.raises(MaintenanceError, match="already running"):
            fed.sim.run()


class TestFencing:
    def test_fault_in_scope_aborts_and_rolls_back(self):
        fed = build_federation(1, racks_per_pod=2)
        tenants = ["t0", "t1", "t2"]
        for tenant_id in tenants:
            boot_tenant(fed, tenant_id, "pod0")
        injector = FaultInjector(fed, classes=(), self_heal=True)
        sup = MaintenanceSupervisor(fed, injector=injector)
        pod = fed.pods["pod0"]
        registry = pod.system.sdm.registry
        loaded = next(
            rack for rack in sorted({e.rack_id
                                     for e in registry.memory_entries})
            if any(e.allocator.allocated_bytes
                   for e in registry.memory_entries
                   if e.rack_id == rack))
        fed.sim.process(sup.drain_rack_process("pod0", loaded))

        def mid_drain_fault():
            yield fed.sim.timeout(0.01)
            injector.inject("rack_uplink", f"pod0:{loaded}",
                            repair_after_s=1.0, scripted=True)
        fed.sim.process(mid_drain_fault())
        fed.sim.run()
        report = sup.reports[-1]
        assert report.aborted and not report.committed
        assert "fault rack_uplink" in report.abort_reason
        # The rack is back in service, nothing left mid-flight.
        states = set(rack_states(fed, "pod0", loaded).values())
        assert states == {BrickState.ACTIVE}
        assert injector.quiescent
        pool_consistent(fed)
        for tenant_id in tenants:
            assert fed.pod_of(tenant_id) == "pod0"
        depart_all(fed, tenants)
        pool_consistent(fed)

    def test_out_of_scope_faults_do_not_fence(self):
        fed = build_federation(2, racks_per_pod=2)
        injector = FaultInjector(fed, classes=(), self_heal=True)
        sup = MaintenanceSupervisor(fed, injector=injector)
        fed.sim.process(sup.drain_rack_process("pod0", "pod0.rack0"))

        def other_pod_fault():
            yield fed.sim.timeout(0.01)
            injector.inject("switch", "pod1", repair_after_s=1.0,
                            scripted=True)
        fed.sim.process(other_pod_fault())
        fed.sim.run()
        assert sup.reports[-1].committed


class TestPodDrain:
    def test_full_pod_drain_migrates_tenants_and_retires_racks(self):
        fed = build_federation(2, racks_per_pod=2)
        tenants = [f"t{i}" for i in range(4)]
        for tenant_id in tenants:
            boot_tenant(fed, tenant_id, "pod0")
        sup = MaintenanceSupervisor(fed)
        report = drain_pod(fed, sup, "pod0")
        assert report.committed, report.abort_reason
        assert sorted(report.racks_retired) == ["pod0.rack0",
                                                "pod0.rack1"]
        assert report.tenants_migrated == len(tenants)
        for tenant_id in tenants:
            assert fed.pod_of(tenant_id) == "pod1"
            assert fed.placer.ledger_claim(tenant_id).pod_id == "pod1"
        registry = fed.pods["pod0"].system.sdm.registry
        assert all(e.lifecycle.state is BrickState.MAINTENANCE
                   for e in registry.memory_entries
                   + registry.compute_entries)
        assert all(e.allocator.allocated_bytes == 0
                   for e in registry.memory_entries)
        # Out of the admission pool, but not failed.
        assert not fed.placer.pod_accepting("pod0")
        assert fed.pods["pod0"].alive
        pool_consistent(fed)
        depart_all(fed, tenants)
        pool_consistent(fed)

    def test_draining_pod_spills_new_admissions_to_peers(self):
        fed = build_federation(2, racks_per_pod=2)
        fed.pods["pod0"].draining = True
        assert fed.placer.place("t0", gib(2), 1, home="pod0") == "pod1"

    def test_last_accepting_pod_refuses_to_drain(self):
        fed = build_federation(1, racks_per_pod=2)
        sup = MaintenanceSupervisor(fed)
        with pytest.raises(MaintenanceError, match="no other pod"):
            next(sup.drain_pod_process("pod0"))

    def test_restore_returns_the_pod_to_service(self):
        fed = build_federation(2, racks_per_pod=2)
        boot_tenant(fed, "t0", "pod0")
        sup = MaintenanceSupervisor(fed)
        assert drain_pod(fed, sup, "pod0").committed
        fed.sim.process(sup.restore_pod_process("pod0"))
        fed.sim.run()
        registry = fed.pods["pod0"].system.sdm.registry
        assert all(e.lifecycle.state is BrickState.ACTIVE
                   for e in registry.memory_entries
                   + registry.compute_entries)
        assert fed.placer.pod_accepting("pod0")
        # And it can admit again.
        request = fed.pods["pod0"].plane.submit(
            "boot", "t1", request=VmAllocationRequest(
                vm_id="t1", vcpus=1, ram_bytes=gib(2)))
        fed.sim.run()
        assert request.record.ok, request.record.note
