"""Brick lifecycle legality and its enforcement surfaces.

The Ironic-style state machine (``enrolled → available → active →
draining → cleaning → maintenance``) is only worth having if every
tier honours it: the registry's availability snapshots must hide
non-placeable bricks, the segment allocator must refuse grants in
cleaning/maintenance, and illegal transitions must fail loudly.
"""

from __future__ import annotations

import pytest

from repro.errors import AllocationError, LifecycleError, OrchestrationError
from repro.federation import build_federation
from repro.hardware.power import PowerState
from repro.maintenance import BrickLifecycle, BrickState, LEGAL_TRANSITIONS
from repro.units import mib


def registry_of(fed, pod_id="pod0"):
    return fed.pods[pod_id].system.sdm.registry


class TestStateMachine:
    def test_the_full_service_loop_is_legal(self):
        lifecycle = BrickLifecycle("mb0")
        for state in (BrickState.AVAILABLE, BrickState.ACTIVE,
                      BrickState.DRAINING, BrickState.CLEANING,
                      BrickState.MAINTENANCE, BrickState.AVAILABLE,
                      BrickState.ACTIVE):
            lifecycle.transition(state)
        assert lifecycle.state is BrickState.ACTIVE
        assert lifecycle.history[0] is BrickState.ENROLLED

    def test_drain_can_be_cancelled_back_to_active(self):
        lifecycle = BrickLifecycle("mb0")
        lifecycle.activate()
        lifecycle.transition(BrickState.DRAINING)
        lifecycle.transition(BrickState.ACTIVE)
        assert lifecycle.placeable

    @pytest.mark.parametrize("start, illegal", [
        (BrickState.ENROLLED, BrickState.ACTIVE),
        (BrickState.ACTIVE, BrickState.MAINTENANCE),
        (BrickState.DRAINING, BrickState.MAINTENANCE),
        (BrickState.CLEANING, BrickState.ACTIVE),
        (BrickState.MAINTENANCE, BrickState.DRAINING),
    ])
    def test_shortcuts_are_illegal(self, start, illegal):
        lifecycle = BrickLifecycle("mb0", state=start)
        assert not lifecycle.can_transition(illegal)
        with pytest.raises(LifecycleError) as err:
            lifecycle.transition(illegal)
        # The error names the legal escapes so operators can recover.
        for legal in LEGAL_TRANSITIONS[start]:
            assert legal.value in str(err.value)

    def test_activate_is_idempotent(self):
        lifecycle = BrickLifecycle("mb0")
        lifecycle.activate()
        lifecycle.activate()
        assert lifecycle.state is BrickState.ACTIVE

    def test_placeable_and_accepting_split_by_state(self):
        # Draining bricks accept writes (rollbacks must land) but get
        # no new placements; cleaning/maintenance accept nothing.
        by_state = {
            BrickState.ACTIVE: (True, True),
            BrickState.DRAINING: (False, True),
            BrickState.CLEANING: (False, False),
            BrickState.MAINTENANCE: (False, False),
        }
        for state, (placeable, accepting) in by_state.items():
            lifecycle = BrickLifecycle("mb0", state=state)
            assert lifecycle.placeable is placeable, state
            assert lifecycle.accepting is accepting, state


class TestRegistryEnforcement:
    def test_registration_walks_bricks_to_active(self):
        registry = registry_of(build_federation(1, racks_per_pod=1))
        for entry in registry.memory_entries + registry.compute_entries:
            assert entry.lifecycle.state is BrickState.ACTIVE

    def test_draining_brick_leaves_the_placement_pool(self):
        fed = build_federation(1, racks_per_pod=2)
        registry = registry_of(fed)
        brick_id = registry.memory_entries[0].brick.brick_id
        before = {a.brick_id for a in registry.memory_availability()}
        registry.transition_memory(brick_id, BrickState.DRAINING)
        after = {a.brick_id for a in registry.memory_availability()}
        assert before - after == {brick_id}
        # ... but its allocator still accepts (rollback landing zone).
        assert registry.memory(brick_id).allocator.accepting

    def test_cleaning_gates_the_allocator(self):
        fed = build_federation(1, racks_per_pod=1)
        registry = registry_of(fed)
        brick_id = registry.memory_entries[0].brick.brick_id
        registry.transition_memory(brick_id, BrickState.DRAINING)
        registry.transition_memory(brick_id, BrickState.CLEANING)
        allocator = registry.memory(brick_id).allocator
        assert not allocator.accepting
        with pytest.raises(AllocationError, match="not accepting"):
            allocator.allocate(mib(256))

    def test_maintenance_powers_the_brick_off_and_back(self):
        fed = build_federation(1, racks_per_pod=1)
        registry = registry_of(fed)
        entry = registry.memory_entries[0]
        brick_id = entry.brick.brick_id
        for state in (BrickState.DRAINING, BrickState.CLEANING,
                      BrickState.MAINTENANCE):
            registry.transition_memory(brick_id, state)
        assert entry.brick.power_state is PowerState.OFF
        registry.transition_memory(brick_id, BrickState.AVAILABLE)
        assert entry.brick.power_state is not PowerState.OFF
        registry.transition_memory(brick_id, BrickState.ACTIVE)
        assert entry.allocator.accepting

    def test_compute_transitions_are_legal_checked_too(self):
        fed = build_federation(1, racks_per_pod=1)
        registry = registry_of(fed)
        brick_id = registry.compute_entries[0].brick.brick_id
        with pytest.raises(LifecycleError):
            registry.transition_compute(brick_id, BrickState.CLEANING)
        registry.transition_compute(brick_id, BrickState.DRAINING)
        assert brick_id not in {a.brick_id
                                for a in registry.compute_availability()}

    def test_unknown_bricks_are_rejected(self):
        registry = registry_of(build_federation(1, racks_per_pod=1))
        with pytest.raises(OrchestrationError):
            registry.lifecycle_of("nope")
        with pytest.raises(OrchestrationError):
            registry.transition_memory("nope", BrickState.DRAINING)
