"""Property: a drain racing an arbitrary fault conserves everything.

The satellite the ISSUE names: start a full-pod rolling drain, let
hypothesis pick a fault class, target rack, and injection instant
anywhere in the drain window, and — commit or abort — once the dust
settles no segment capacity is leaked or double-booked, no ShardHold
or PodClaim is stranded, every tenant still runs somewhere with a
matching ledger claim, and full departure drains the pools to zero.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import FaultInjector
from repro.federation import build_federation
from repro.maintenance import MaintenanceSupervisor
from repro.orchestration.requests import VmAllocationRequest
from repro.units import gib


def boot_tenant(fed, tenant_id, pod_id, ram_bytes=gib(2)):
    request = fed.pods[pod_id].plane.submit(
        "boot", tenant_id,
        request=VmAllocationRequest(vm_id=tenant_id, vcpus=1,
                                    ram_bytes=ram_bytes))
    fed._tenant_pod[tenant_id] = pod_id
    fed.sim.run()
    assert request.record.ok, request.record.note
    claim = fed.placer.reserve(pod_id, ram_bytes, 1,
                               tenant_id=tenant_id)
    fed.placer.commit(claim)


def pool_consistent(fed):
    for pod in fed.pods.values():
        entries = pod.system.sdm.registry.memory_entries
        allocated = sum(e.allocator.allocated_bytes for e in entries)
        live = sum(s.size for s in pod.system.sdm.live_segments)
        assert allocated == live, pod.pod_id
        for entry in entries:
            entry.allocator.check_invariants()
        assert getattr(pod.system.sdm, "pending_holds", []) == []
    assert fed.placer.pending_claims == []


@settings(max_examples=20, deadline=None)
@given(tenant_count=st.integers(min_value=1, max_value=3),
       fault_at=st.floats(min_value=0.0, max_value=2.0,
                          allow_nan=False, allow_infinity=False),
       repair_after=st.floats(min_value=0.5, max_value=10.0,
                              allow_nan=False, allow_infinity=False),
       klass=st.sampled_from(["memory_brick", "rack_uplink", "shard",
                              "switch"]),
       rack_index=st.integers(min_value=0, max_value=1),
       self_heal=st.booleans())
def test_drain_racing_any_fault_conserves_capacity_and_claims(
        tenant_count, fault_at, repair_after, klass, rack_index,
        self_heal):
    fed = build_federation(2, racks_per_pod=2)
    tenants = [f"t{i}" for i in range(tenant_count)]
    for tenant_id in tenants:
        boot_tenant(fed, tenant_id, "pod0")
    injector = FaultInjector(fed, classes=(), self_heal=self_heal)
    sup = MaintenanceSupervisor(fed, injector=injector)
    fed.sim.process(sup.drain_pod_process("pod0"))

    rack = f"pod0.rack{rack_index}"
    if klass == "memory_brick":
        target = f"pod0:{rack}.mb0"
    elif klass == "rack_uplink":
        target = f"pod0:{rack}"
    elif klass == "shard":
        sdm = fed.pods["pod0"].system.sdm
        target = f"pod0:{sdm.shard_of_rack(rack)}"
    else:
        target = "pod0"

    def fault_proc():
        yield fed.sim.timeout(fault_at)
        injector.inject(klass, target, repair_after_s=repair_after,
                        scripted=True)
    fed.sim.process(fault_proc())
    fed.sim.run()

    assert injector.quiescent
    report = sup.reports[-1]
    assert report.committed != report.aborted  # exactly one outcome
    pool_consistent(fed)
    # Every tenant still runs on a live pod, backed by its ledger claim.
    for tenant_id in tenants:
        pod_id = fed.pod_of(tenant_id)
        assert fed.pods[pod_id].alive
        assert fed.placer.ledger_claim(tenant_id).pod_id == pod_id
    for tenant_id in tenants:
        fed.sim.process(fed.submit_process("depart", tenant_id))
    fed.sim.run()
    pool_consistent(fed)
    for pod in fed.pods.values():
        assert pod.system.vms == []
        assert all(e.allocator.allocated_bytes == 0
                   for e in pod.system.sdm.registry.memory_entries)
    assert all(fed.placer.ledger_claim(t) is None for t in tenants)
