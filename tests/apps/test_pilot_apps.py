"""Tests for the three §V pilot applications."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.base import AppReport, MemoryDemandPoint
from repro.apps.network_analytics import (
    LINE_RATE_BPS,
    NetworkAnalyticsScenario,
)
from repro.apps.nfv import DiurnalTrafficModel, KeyServerScenario
from repro.apps.video_analytics import (
    InvestigationEvent,
    VideoAnalyticsScenario,
    generate_investigations,
)
from repro.core.builder import RackBuilder
from repro.errors import ConfigurationError
from repro.orchestration.requests import VmAllocationRequest
from repro.units import gib


@pytest.fixture
def app_system():
    system = (RackBuilder("apps")
              .with_compute_bricks(2, cores=8, local_memory=gib(2))
              .with_memory_bricks(3, modules=4, module_size=gib(16))
              .with_accelerator_bricks(1)
              .build())
    system.boot_vm(VmAllocationRequest("app-vm", vcpus=4, ram_bytes=gib(2)))
    return system


class TestAppReport:
    def test_demand_satisfaction(self):
        report = AppReport("x")
        report.demand_trace = [
            MemoryDemandPoint(0.0, 100, 200),
            MemoryDemandPoint(1.0, 300, 200),
        ]
        assert report.demand_satisfaction == pytest.approx(0.5)

    def test_empty_trace_fully_satisfied(self):
        assert AppReport("x").demand_satisfaction == 1.0

    def test_mean_scale_latency(self):
        report = AppReport("x", scale_latencies_s=[1.0, 3.0])
        assert report.mean_scale_latency_s == 2.0

    def test_provisioning_efficiency(self):
        report = AppReport("x")
        report.demand_trace = [
            MemoryDemandPoint(0.0, 100, 50),
            MemoryDemandPoint(1.0, 100, 100),
        ]
        assert report.provisioning_efficiency() == pytest.approx(0.75)


class TestVideoAnalytics:
    def test_events_generated_sorted_and_positive(self):
        events = generate_investigations(20, np.random.default_rng(0))
        assert len(events) == 20
        arrivals = [event.arrival_s for event in events]
        assert arrivals == sorted(arrivals)
        assert all(event.video_hours >= 500 for event in events)

    def test_memory_demand_proportional_to_hours(self):
        small = InvestigationEvent("a", 0.0, 1000)
        large = InvestigationEvent("b", 0.0, 100_000)
        assert large.memory_demand_bytes == 100 * small.memory_demand_bytes

    def test_scenario_scales_up_and_back(self, app_system):
        scenario = VideoAnalyticsScenario(app_system, "app-vm")
        events = [InvestigationEvent("case-0", 0.0, 4000),
                  InvestigationEvent("case-1", 100.0, 8000)]
        report = scenario.run(events)
        assert report.scale_up_events == report.scale_down_events >= 2
        # Memory returned to baseline after the run.
        vm = app_system.hosting("app-vm").vm
        assert vm.configured_ram_bytes == vm.initial_ram_bytes

    def test_large_case_splits_segments(self, app_system):
        scenario = VideoAnalyticsScenario(app_system, "app-vm",
                                          max_segment_bytes=gib(4))
        events = [InvestigationEvent("huge", 0.0, 10_000)]  # 20 GiB demand
        report = scenario.run(events)
        assert report.scale_up_events >= 5

    def test_scale_latencies_recorded(self, app_system):
        scenario = VideoAnalyticsScenario(app_system, "app-vm")
        report = scenario.run([InvestigationEvent("c", 0.0, 2000)])
        assert all(latency > 0 for latency in report.scale_latencies_s)

    def test_invalid_event_rejected(self):
        with pytest.raises(ConfigurationError):
            InvestigationEvent("bad", 0.0, 0)


class TestNfv:
    def test_diurnal_shape(self):
        traffic = DiurnalTrafficModel(peak_rps=4000, trough_rps=400,
                                      night_hour=3.0)
        assert traffic.load_rps(3.0) == pytest.approx(400.0)
        assert traffic.load_rps(15.0) == pytest.approx(4000.0)
        assert traffic.load_rps(9.0) < traffic.load_rps(12.0)

    def test_invalid_traffic_rejected(self):
        with pytest.raises(ConfigurationError):
            DiurnalTrafficModel(peak_rps=100, trough_rps=200)

    def test_key_server_tracks_demand_without_scale_out(self, app_system):
        scenario = KeyServerScenario(app_system, "app-vm")
        report = scenario.run(hours=24, samples_per_hour=1)
        assert report.details["scale_out_vms_spawned"] == 0.0
        assert report.scale_up_events > 0
        assert report.scale_down_events > 0
        assert report.demand_satisfaction > 0.9

    def test_elasticity_beats_peak_provisioning(self, app_system):
        scenario = KeyServerScenario(app_system, "app-vm")
        report = scenario.run(hours=24, samples_per_hour=1)
        # Mean provisioned memory stays below a static peak deployment.
        assert report.provisioning_efficiency() < 1.0

    def test_headroom_validation(self, app_system):
        with pytest.raises(ConfigurationError):
            KeyServerScenario(app_system, "app-vm", headroom_fraction=1.5)


class TestNetworkAnalytics:
    def test_requires_accelerator_brick(self):
        bare = (RackBuilder("bare")
                .with_compute_bricks(1)
                .with_memory_bricks(1)
                .build())
        bare.boot_vm(VmAllocationRequest("vm", vcpus=1, ram_bytes=gib(1)))
        with pytest.raises(ConfigurationError, match="dACCELBRICK"):
            NetworkAnalyticsScenario(bare, "vm")

    def test_online_stage_line_rate(self, app_system):
        scenario = NetworkAnalyticsScenario(app_system, "app-vm")
        online = scenario.run_online(1.0, np.random.default_rng(0))
        assert online.keeps_line_rate
        assert online.frames_inspected > 1e6
        assert 0 < online.mark_fraction < 0.1
        assert online.reconfiguration_s > 0

    def test_slow_accelerator_detected(self, app_system):
        scenario = NetworkAnalyticsScenario(
            app_system, "app-vm",
            accelerator_throughput_bps=0.5 * LINE_RATE_BPS)
        online = scenario.run_online(0.5, np.random.default_rng(0))
        assert not online.keeps_line_rate

    def test_offline_stage_elastic_speedup(self, app_system):
        # A 10 s capture at 5% marking yields a working set several times
        # the VM's 2 GiB local DRAM: the fixed-node baseline must make
        # multiple passes while the elastic VM holds it all at once.
        scenario = NetworkAnalyticsScenario(app_system, "app-vm",
                                            mark_probability=0.05)
        online = scenario.run_online(10.0, np.random.default_rng(0))
        report = scenario.run_offline(online)
        assert report.details["speedup"] > 1.0
        assert report.scale_up_events == report.scale_down_events >= 1
        # Memory fully returned afterwards.
        vm = app_system.hosting("app-vm").vm
        assert vm.configured_ram_bytes == vm.initial_ram_bytes

    def test_bitstream_deployed_via_middleware(self, app_system):
        scenario = NetworkAnalyticsScenario(app_system, "app-vm")
        scenario.run_online(0.1, np.random.default_rng(0))
        assert scenario.middleware.stored_bitstreams == ["flow-classifier"]
        assert scenario.accel_brick.slot.is_configured

    def test_invalid_parameters(self, app_system):
        with pytest.raises(ConfigurationError):
            NetworkAnalyticsScenario(app_system, "app-vm",
                                     mark_probability=0.0)
        scenario = NetworkAnalyticsScenario(app_system, "app-vm")
        with pytest.raises(ConfigurationError):
            scenario.run_online(0.0, np.random.default_rng(0))
