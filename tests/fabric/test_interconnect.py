"""Unit tests for the unified interconnect hop model."""

from __future__ import annotations

import math

import pytest

from repro.errors import FabricError
from repro.fabric.interconnect import (
    Hop,
    HopKind,
    HopPath,
    Interconnect,
    PathScope,
)
from repro.hardware.rack import FibrePlan
from repro.units import fibre_propagation_delay


class TestHop:
    def test_propagation_is_fibre_plus_fixed(self):
        hop = Hop("x", HopKind.FIBRE, fibre_m=100.0, fixed_latency_s=1e-9)
        assert hop.propagation_delay_s == pytest.approx(
            fibre_propagation_delay(100.0) + 1e-9)

    def test_rejects_negative_fibre(self):
        with pytest.raises(FabricError):
            Hop("x", HopKind.FIBRE, fibre_m=-1.0)

    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(FabricError):
            Hop("x", HopKind.FIBRE, bandwidth_bps=0)


class TestHopPath:
    def path(self):
        return HopPath(
            hops=(
                Hop("up", HopKind.FIBRE, fibre_m=5.0, bandwidth_bps=10e9),
                Hop("sw", HopKind.SWITCH, switch_loss_db=1.0),
                Hop("down", HopKind.FIBRE, fibre_m=5.0, bandwidth_bps=40e9),
            ),
            scope=PathScope.RACK)

    def test_fibre_composes(self):
        assert self.path().fibre_length_m == 10.0

    def test_switch_hops_and_loss_compose(self):
        path = self.path()
        assert path.switch_hops == 1
        assert path.switch_loss_db == 1.0

    def test_propagation_composes_per_hop(self):
        path = self.path()
        assert path.propagation_delay_s == pytest.approx(
            fibre_propagation_delay(10.0))
        segments = path.propagation_segments()
        assert [name for name, _ in segments] == ["up", "down"]
        assert sum(s for _, s in segments) == pytest.approx(
            path.propagation_delay_s)

    def test_bottleneck_is_slowest_hop(self):
        assert self.path().bottleneck_bps == 10e9

    def test_all_passive_path_has_infinite_bottleneck(self):
        path = HopPath(hops=(Hop("up", HopKind.FIBRE, fibre_m=1.0),),
                       scope=PathScope.TRAY)
        assert path.bottleneck_bps == math.inf

    def test_scope_flags(self):
        assert not self.path().crosses_racks
        pod_path = Interconnect().inter_rack_path()
        assert pod_path.crosses_racks


class TestInterconnect:
    def test_intra_tray_is_electrical(self):
        path = Interconnect().intra_tray_path()
        assert path.scope is PathScope.TRAY
        assert path.switch_hops == 0
        assert path.fibre_length_m == 0.0

    def test_intra_rack_crosses_one_switch(self):
        path = Interconnect().intra_rack_path()
        assert path.scope is PathScope.RACK
        assert path.switch_hops == 1
        assert path.fibre_length_m == 10.0  # 2 x 5 m default

    def test_inter_rack_crosses_three_switches(self):
        path = Interconnect().inter_rack_path()
        assert path.scope is PathScope.POD
        assert path.switch_hops == 3
        # 2 x 5 m tray runs + 2 x 50 m rack-to-pod runs.
        assert path.fibre_length_m == 110.0

    def test_inter_rack_strictly_slower_than_intra(self):
        interconnect = Interconnect()
        assert (interconnect.inter_rack_path().propagation_delay_s
                > interconnect.intra_rack_path().propagation_delay_s)

    def test_custom_fibre_plan_propagates(self):
        plan = FibrePlan(tray_to_switch_m=2.0, rack_to_pod_switch_m=100.0)
        interconnect = Interconnect(plan)
        assert interconnect.intra_rack_path().fibre_length_m == 4.0
        assert interconnect.inter_rack_path().fibre_length_m == 204.0

    def test_same_tray_in_different_racks_rejected(self):
        with pytest.raises(FabricError):
            Interconnect().path(same_tray=True, same_rack=False)

    def test_path_dispatch(self):
        interconnect = Interconnect()
        assert interconnect.path(
            same_tray=True, same_rack=True).scope is PathScope.TRAY
        assert interconnect.path(
            same_tray=False, same_rack=True).scope is PathScope.RACK
        assert interconnect.path(
            same_tray=False, same_rack=False).scope is PathScope.POD
