"""Integration: a pod-built system placing VMs across racks.

The acceptance scenario of the pod-scale refactor: a pod of >= 2 racks,
a VM placed on rack A attaching a segment on rack B through an
inter-rack circuit, with strictly higher remote-memory latency than the
intra-rack case.
"""

from __future__ import annotations

import pytest

from repro import PodBuilder, VmAllocationRequest, gib
from repro.errors import ReproError
from repro.fabric.fabric import InterRackCircuit
from repro.memory.path import CircuitAccessPath
from repro.memory.transactions import MemoryTransaction


@pytest.fixture
def pod_system():
    """Two racks, deliberately memory-poor so boots spill across racks."""
    return (PodBuilder("tp")
            .with_racks(2)
            .with_compute_bricks(2, cores=8, local_memory=gib(2))
            .with_memory_bricks(1, modules=1, module_size=gib(8))
            .build())


def read_latency_ns(system, segment_id: str) -> float:
    record = system.sdm.segment_record(segment_id)
    compute = system.stack(record.segment.compute_brick_id).brick
    memory = system.sdm.registry.memory(
        record.segment.memory_brick_id).brick
    path = CircuitAccessPath(compute, memory, record.circuit)
    txn = MemoryTransaction.read(record.entry.base, 64)
    return path.access(txn).breakdown.total_ns


class TestPodSystem:
    def test_build_shape(self, pod_system):
        assert len(pod_system.racks) == 2
        assert pod_system.pod is not None
        assert pod_system.pod.rack_count == 2
        assert len(pod_system.compute_bricks) == 4
        assert len(pod_system.memory_bricks) == 2
        # Registry knows which rack each brick sits in.
        for entry in pod_system.sdm.registry.memory_entries:
            assert entry.rack_id.startswith("tp.rack")

    def test_local_rack_preferred(self, pod_system):
        info = pod_system.boot_vm(
            VmAllocationRequest("vm-local", vcpus=1, ram_bytes=gib(4)))
        compute_rack = pod_system.rack_of_brick(info.brick_id).rack_id
        for segment in info.boot_segments:
            segment_rack = pod_system.rack_of_brick(
                segment.memory_brick_id).rack_id
            assert segment_rack == compute_rack

    def test_spill_crosses_racks_with_higher_latency(self, pod_system):
        intra_segment = None
        inter_segment = None
        for index in range(8):
            try:
                info = pod_system.boot_vm(VmAllocationRequest(
                    f"vm-{index}", vcpus=1, ram_bytes=gib(4)))
            except ReproError:
                break
            compute_rack = pod_system.rack_of_brick(info.brick_id).rack_id
            for segment in info.boot_segments:
                segment_rack = pod_system.rack_of_brick(
                    segment.memory_brick_id).rack_id
                if segment_rack == compute_rack and intra_segment is None:
                    intra_segment = segment
                if segment_rack != compute_rack and inter_segment is None:
                    inter_segment = segment
        assert intra_segment is not None, "no rack-local placement"
        assert inter_segment is not None, "placement never spilled racks"

        record = pod_system.sdm.segment_record(inter_segment.segment_id)
        assert isinstance(record.circuit.circuit, InterRackCircuit)
        assert record.circuit.hop_path.crosses_racks

        intra_ns = read_latency_ns(pod_system, intra_segment.segment_id)
        inter_ns = read_latency_ns(pod_system, inter_segment.segment_id)
        assert inter_ns > intra_ns

        # The inter-rack read itemizes the pod-tier fibre runs.
        rec = pod_system.sdm.segment_record(inter_segment.segment_id)
        compute = pod_system.stack(rec.segment.compute_brick_id).brick
        memory = pod_system.sdm.registry.memory(
            rec.segment.memory_brick_id).brick
        result = CircuitAccessPath(compute, memory, rec.circuit).access(
            MemoryTransaction.read(rec.entry.base, 64))
        names = set(result.breakdown.by_name())
        assert "propagation:rack-uplink" in names
        assert "propagation:rack-downlink" in names

    def test_terminate_returns_uplinks(self, pod_system):
        pod = pod_system.pod
        total_uplinks = sum(len(pod.slot(r.rack_id).uplinks)
                            for r in pod.racks)
        vms = []
        for index in range(6):
            try:
                pod_system.boot_vm(VmAllocationRequest(
                    f"vm-{index}", vcpus=1, ram_bytes=gib(4)))
                vms.append(f"vm-{index}")
            except ReproError:
                break
        for vm_id in vms:
            pod_system.terminate_vm(vm_id)
        assert pod_system.sdm.live_segments == []
        assert pod_system.fabric.active_circuits == []
        free = sum(len(pod.free_uplinks(r.rack_id)) for r in pod.racks)
        assert free == total_uplinks

    def test_cross_rack_migration_repoints_segments(self, pod_system):
        info = pod_system.boot_vm(
            VmAllocationRequest("vm-m", vcpus=1, ram_bytes=gib(4)))
        source_rack = pod_system.rack_of_brick(info.brick_id).rack_id
        target = next(
            s.brick.brick_id for s in pod_system.stacks
            if pod_system.rack_of_brick(s.brick.brick_id).rack_id
            != source_rack)
        report = pod_system.migrate_vm("vm-m", target)
        assert report.target_brick_id == target
        # The segment content never moved; the circuit now spans racks.
        for segment in info.boot_segments:
            record = pod_system.sdm.segment_record(segment.segment_id)
            assert record.segment.compute_brick_id == target
            assert record.circuit.hop_path.crosses_racks
        hosted = pod_system.hosting("vm-m")
        assert hosted.vm.is_running

    def test_scale_up_spills_when_local_rack_drained(self, pod_system):
        info = pod_system.boot_vm(
            VmAllocationRequest("vm-s", vcpus=1, ram_bytes=gib(8)))
        compute_rack = pod_system.rack_of_brick(info.brick_id).rack_id
        # 8 GiB VM drains most of the local brick; a further 4 GiB must
        # come from the remote rack.
        result = pod_system.scale_up("vm-s", gib(4))
        segment_rack = pod_system.rack_of_brick(
            result.segment.memory_brick_id).rack_id
        assert segment_rack != compute_rack

    def test_affinity_hint_steers_vm_placement(self, pod_system):
        info = pod_system.boot_vm(VmAllocationRequest(
            "vm-aff", vcpus=1, ram_bytes=gib(2),
            affinity_rack_id="tp.rack1"))
        assert (pod_system.rack_of_brick(info.brick_id).rack_id
                == "tp.rack1")

    def test_pod_power_includes_inter_rack_switch(self, pod_system):
        baseline = sum(rack.total_power_draw_w()
                       for rack in pod_system.racks)
        assert pod_system.total_power_w() >= baseline
        for index in range(4):
            try:
                pod_system.boot_vm(VmAllocationRequest(
                    f"vm-{index}", vcpus=1, ram_bytes=gib(6)))
            except ReproError:
                break
        if pod_system.fabric.inter_rack_circuits:
            assert pod_system.pod.switch.power_draw_w > 0
