"""Unit tests for Pod / InterRackSwitch topology and the pod fabric."""

from __future__ import annotations

import pytest

from repro.errors import CircuitError, FabricError
from repro.fabric.fabric import InterRackCircuit, PodFabric
from repro.fabric.interconnect import PathScope
from repro.fabric.pod import InterRackSwitch, Pod
from repro.hardware.bricks import ComputeBrick, MemoryBrick
from repro.hardware.rack import Rack
from repro.network.optical.switch import OpticalCircuitSwitch
from repro.network.optical.topology import OpticalFabric


def build_pod(racks: int = 2, uplinks: int = 2, cbn_ports: int = 4):
    """A pod of *racks*, each with one compute and one memory brick."""
    pod = Pod("p0")
    fabrics: dict[str, OpticalFabric] = {}
    bricks: dict[str, tuple[ComputeBrick, MemoryBrick]] = {}
    for index in range(racks):
        rack = Rack(f"p0.rack{index}")
        switch = OpticalCircuitSwitch(f"{rack.rack_id}.switch",
                                      port_count=48)
        fabric = OpticalFabric(switch)
        pod.add_rack(rack, switch, uplinks=uplinks)
        tray = rack.new_tray()
        compute = ComputeBrick(f"{rack.rack_id}.cb0", cbn_ports=cbn_ports)
        memory = MemoryBrick(f"{rack.rack_id}.mb0", cbn_ports=cbn_ports)
        tray.plug(compute)
        tray.plug(memory)
        fabrics[rack.rack_id] = fabric
        bricks[rack.rack_id] = (compute, memory)
    pod_fabric = PodFabric(pod, fabrics)
    for compute, memory in bricks.values():
        pod_fabric.attach_brick(compute)
        pod_fabric.attach_brick(memory)
    return pod, pod_fabric, bricks


class TestInterRackSwitch:
    def test_pod_scale_defaults(self):
        switch = InterRackSwitch("pod.sw")
        assert switch.port_count == 192
        assert switch.switching_time_s > 0.025  # bigger matrix, slower

    def test_is_an_optical_circuit_switch(self):
        assert isinstance(InterRackSwitch("pod.sw"), OpticalCircuitSwitch)


class TestPodTopology:
    def test_racks_get_positions(self):
        pod, _fabric, _bricks = build_pod(racks=3)
        positions = [pod.slot(r.rack_id).position for r in pod.racks]
        assert positions == [0, 1, 2]
        for rack in pod.racks:
            assert rack.pod_id == "p0"
        assert pod.rack("p0.rack1").pod_position == 1

    def test_duplicate_rack_rejected(self):
        pod, _fabric, _bricks = build_pod()
        rack = pod.rack("p0.rack0")
        with pytest.raises(FabricError):
            pod.add_rack(rack, OpticalCircuitSwitch("again"))

    def test_rack_of_brick(self):
        pod, _fabric, bricks = build_pod()
        compute0, _ = bricks["p0.rack0"]
        assert pod.rack_of(compute0).rack_id == "p0.rack0"
        assert pod.rack_of_brick_id("p0.rack1.mb0").rack_id == "p0.rack1"
        with pytest.raises(FabricError):
            pod.rack_of(ComputeBrick("stranger"))

    def test_same_rack_and_tray_queries(self):
        pod, _fabric, bricks = build_pod()
        compute0, memory0 = bricks["p0.rack0"]
        _compute1, memory1 = bricks["p0.rack1"]
        assert pod.same_rack(compute0, memory0)
        assert pod.same_tray(compute0, memory0)
        assert not pod.same_rack(compute0, memory1)

    def test_hop_path_scopes(self):
        pod, _fabric, bricks = build_pod()
        compute0, memory0 = bricks["p0.rack0"]
        _c1, memory1 = bricks["p0.rack1"]
        assert pod.hop_path(compute0, memory0).scope is PathScope.TRAY
        assert pod.hop_path(compute0, memory1).scope is PathScope.POD
        # Circuits always cross the rack switch, even within a tray.
        assert (pod.circuit_hop_path(compute0, memory0).scope
                is PathScope.RACK)

    def test_fibre_length_composes_from_hop_table(self):
        pod, _fabric, bricks = build_pod()
        compute0, memory0 = bricks["p0.rack0"]
        _c1, memory1 = bricks["p0.rack1"]
        assert pod.fibre_length_m(compute0, memory0) == 0.0  # same tray
        assert pod.fibre_length_m(compute0, memory1) == 110.0

    def test_uplink_claim_and_exhaustion(self):
        pod, _fabric, _bricks = build_pod(uplinks=1)
        uplink = pod.claim_uplink("p0.rack0", "c-0")
        assert not uplink.is_free
        with pytest.raises(FabricError):
            pod.claim_uplink("p0.rack0", "c-1")
        pod.release_uplink(uplink)
        assert pod.claim_uplink("p0.rack0", "c-2") is uplink

    def test_inventory_spans_racks(self):
        pod, _fabric, _bricks = build_pod(racks=2)
        inventory = pod.inventory()
        assert inventory["dCOMPUBRICK"] == 2
        assert inventory["dMEMBRICK"] == 2


class TestPodFabric:
    def test_same_rack_connect_delegates_and_annotates(self):
        _pod, fabric, bricks = build_pod()
        compute0, memory0 = bricks["p0.rack0"]
        circuit = fabric.connect(compute0, memory0)
        assert circuit.hop_path is not None
        assert circuit.hop_path.scope is PathScope.RACK
        assert fabric.circuit_between(compute0, memory0) is circuit
        assert fabric.inter_rack_circuits == []

    def test_inter_rack_connect_spans_pod_switch(self):
        pod, fabric, bricks = build_pod()
        compute0, _memory0 = bricks["p0.rack0"]
        _c1, memory1 = bricks["p0.rack1"]
        circuit = fabric.connect(compute0, memory1)
        assert isinstance(circuit.circuit, InterRackCircuit)
        assert circuit.hop_path.scope is PathScope.POD
        assert circuit.circuit.hops == 3
        assert pod.switch.cross_connect_count == 1
        assert len(pod.free_uplinks("p0.rack0")) == 1
        assert len(pod.free_uplinks("p0.rack1")) == 1
        assert fabric.circuit_between(compute0, memory1) is circuit
        assert circuit in fabric.circuits_of(compute0)
        assert circuit in fabric.active_circuits

    def test_inter_rack_propagation_exceeds_intra(self):
        _pod, fabric, bricks = build_pod()
        compute0, memory0 = bricks["p0.rack0"]
        _c1, memory1 = bricks["p0.rack1"]
        intra = fabric.connect(compute0, memory0)
        inter = fabric.connect(compute0, memory1)
        assert (inter.propagation_delay_s > intra.propagation_delay_s)

    def test_inter_rack_link_budget_closes(self):
        _pod, fabric, bricks = build_pod()
        compute0, _m0 = bricks["p0.rack0"]
        _c1, memory1 = bricks["p0.rack1"]
        circuit = fabric.connect(compute0, memory1)
        # 3 switch hops + 4 connector pairs + 110 m of fibre still close
        # at the FEC-free target with default launch power.
        assert circuit.circuit.closes(1e-12)
        assert circuit.circuit.worst_ber < 1e-12

    def test_disconnect_releases_uplinks_and_ports(self):
        pod, fabric, bricks = build_pod()
        compute0, _m0 = bricks["p0.rack0"]
        _c1, memory1 = bricks["p0.rack1"]
        circuit = fabric.connect(compute0, memory1)
        port_a = circuit.port_a
        fabric.disconnect(circuit)
        assert port_a.is_free
        assert len(pod.free_uplinks("p0.rack0")) == 2
        assert len(pod.free_uplinks("p0.rack1")) == 2
        assert pod.switch.cross_connect_count == 0
        assert fabric.circuit_between(compute0, memory1) is None

    def test_uplink_exhaustion_raises_circuit_error(self):
        _pod, fabric, bricks = build_pod(uplinks=1)
        compute0, memory0 = bricks["p0.rack0"]
        compute1, memory1 = bricks["p0.rack1"]
        fabric.connect(compute0, memory1)  # consumes the only uplinks
        with pytest.raises(CircuitError):
            fabric.connect(compute1, memory0)

    def test_can_connect_accounts_for_uplinks(self):
        _pod, fabric, bricks = build_pod(uplinks=1)
        compute0, memory0 = bricks["p0.rack0"]
        compute1, memory1 = bricks["p0.rack1"]
        assert fabric.can_connect(compute0, memory1)
        fabric.connect(compute0, memory1)
        # The established pair stays reachable (live circuit) but a new
        # cross-rack pair cannot get an uplink.
        assert fabric.can_connect(compute0, memory1)
        assert not fabric.can_connect(compute1, memory0)
        # Same-rack connectivity is unaffected by uplink exhaustion.
        assert fabric.can_connect(compute1, memory1)

    def test_power_draw_includes_pod_switch(self):
        pod, fabric, bricks = build_pod()
        compute0, _m0 = bricks["p0.rack0"]
        _c1, memory1 = bricks["p0.rack1"]
        before = fabric.power_draw_w
        fabric.connect(compute0, memory1)
        # 2 ports on each rack switch + 2 on the pod switch light up.
        assert fabric.power_draw_w == pytest.approx(
            before + 6 * pod.switch.port_power_w)

    def test_budget_uses_each_traversed_switch_loss(self):
        """A lossier switch in rack B must not tax rack A's paths."""
        pod = Pod("p1")
        fabrics: dict[str, OpticalFabric] = {}
        bricks = {}
        for index, loss in ((0, 1.0), (1, 3.0)):
            rack = Rack(f"p1.rack{index}")
            switch = OpticalCircuitSwitch(f"{rack.rack_id}.switch",
                                          port_count=48, hop_loss_db=loss)
            fabric = OpticalFabric(switch)
            pod.add_rack(rack, switch, uplinks=2)
            tray = rack.new_tray()
            compute = ComputeBrick(f"{rack.rack_id}.cb0", cbn_ports=4)
            memory = MemoryBrick(f"{rack.rack_id}.mb0", cbn_ports=4)
            tray.plug(compute)
            tray.plug(memory)
            fabrics[rack.rack_id] = fabric
            bricks[rack.rack_id] = (compute, memory)
        pod_fabric = PodFabric(pod, fabrics)
        for compute, memory in bricks.values():
            pod_fabric.attach_brick(compute)
            pod_fabric.attach_brick(memory)
        # The nominal hop model is untouched by rack-switch diversity.
        assert pod.interconnect.rack_switch_loss_db == 1.0
        # Rack-local circuit in rack 0 pays 1 dB of switch loss.
        compute0, memory0 = bricks["p1.rack0"]
        intra = pod_fabric.connect(compute0, memory0)
        assert intra.circuit.link_ab.budget.switch_loss_db == \
            pytest.approx(1.0)
        # The inter-rack budget sums the switches actually traversed:
        # rack0 (1 dB) + pod (1 dB) + rack1 (3 dB).
        _c1, memory1 = bricks["p1.rack1"]
        inter = pod_fabric.connect(compute0, memory1)
        assert inter.circuit.link_ab.budget.switch_loss_db == \
            pytest.approx(5.0)

    def test_powered_off_brick_cannot_connect(self):
        _pod, fabric, bricks = build_pod()
        compute0, _m0 = bricks["p0.rack0"]
        _c1, memory1 = bricks["p0.rack1"]
        memory1.power_off()
        with pytest.raises(CircuitError):
            fabric.connect(compute0, memory1)
