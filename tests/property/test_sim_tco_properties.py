"""Property-based tests for the DES kernel and the TCO schedulers."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Simulator
from repro.sim.resources import Resource
from repro.tco.datacenter import (
    ConventionalDatacenter,
    DisaggregatedDatacenter,
)
from repro.tco.scheduler import FcfsScheduler
from repro.tco.workloads import TABLE_I, generate_vms


# ---------------------------------------------------------------------------
# DES kernel
# ---------------------------------------------------------------------------

@given(st.lists(st.floats(0.0, 100.0), min_size=1, max_size=30))
@settings(max_examples=150)
def test_events_processed_in_time_order(delays):
    sim = Simulator()
    seen: list[float] = []

    def proc(delay):
        yield sim.timeout(delay)
        seen.append(sim.now)

    for delay in delays:
        sim.process(proc(delay))
    sim.run()
    assert seen == sorted(seen)
    assert len(seen) == len(delays)


@given(st.lists(st.floats(0.001, 5.0), min_size=1, max_size=20),
       st.integers(1, 4))
@settings(max_examples=100)
def test_resource_never_exceeds_capacity(holds, capacity):
    sim = Simulator()
    resource = Resource(sim, capacity=capacity)
    peak = [0]

    def worker(hold):
        request = resource.request()
        yield request
        peak[0] = max(peak[0], resource.count)
        yield sim.timeout(hold)
        resource.release(request)

    for hold in holds:
        sim.process(worker(hold))
    sim.run()
    assert peak[0] <= capacity
    assert resource.count == 0
    assert resource.queue_length == 0


@given(st.lists(st.floats(0.0, 10.0), min_size=2, max_size=10))
@settings(max_examples=100)
def test_clock_is_monotone(delays):
    sim = Simulator()
    stamps: list[float] = []

    def proc(delay):
        yield sim.timeout(delay)
        stamps.append(sim.now)

    for delay in delays:
        sim.process(proc(delay))
    sim.run()
    for earlier, later in zip(stamps, stamps[1:]):
        assert later >= earlier


# ---------------------------------------------------------------------------
# TCO scheduling
# ---------------------------------------------------------------------------

workload_names = st.sampled_from(list(TABLE_I))


@given(workload_names, st.integers(1, 60), st.integers(0, 2**32 - 1))
@settings(max_examples=60, deadline=None)
def test_placements_never_exceed_capacity(name, count, seed):
    config = TABLE_I[name]
    workload = generate_vms(config, count, np.random.default_rng(seed))

    conventional = ConventionalDatacenter(8, 32, 32)
    disaggregated = DisaggregatedDatacenter(8, 32, 8, 32)
    scheduler = FcfsScheduler()
    conv = scheduler.schedule(conventional, workload)
    disagg = scheduler.schedule(disaggregated, workload)

    assert conventional.used_cores() <= conventional.total_cores
    assert conventional.used_ram_gib() <= conventional.total_ram_gib
    assert disaggregated.used_cores() <= disaggregated.total_cores
    assert disaggregated.used_ram_gib() <= disaggregated.total_ram_gib

    # Accounting closes: placed demand equals used resources.
    assert sum(p.vm.vcpus for p in conv.placed) == conventional.used_cores()
    assert sum(p.vm.ram_gib for p in disagg.placed) == \
        disaggregated.used_ram_gib()


@given(st.sampled_from(["High RAM", "More RAM"]),
       st.integers(1, 60), st.integers(0, 2**32 - 1))
@settings(max_examples=60, deadline=None)
def test_disaggregated_dominates_memory_bound_admission(name, count, seed):
    """Pooling dominance holds where memory is the binding resource.

    For memory-bound mixes (few cores, large RAM), conventional
    rejections come only from per-node memory fragmentation, which
    pooling eliminates — so the disaggregated DC admits at least as
    many VMs.  (For core-bound mixes, greedy packing can strand cores
    differently in *either* system, so strict dominance is not an
    invariant there — only a strong statistical tendency, tested
    separately.)
    """
    config = TABLE_I[name]
    workload = generate_vms(config, count, np.random.default_rng(seed))
    scheduler = FcfsScheduler()
    conv = scheduler.schedule(ConventionalDatacenter(8, 32, 32), workload)
    disagg = scheduler.schedule(
        DisaggregatedDatacenter(8, 32, 8, 32), workload)
    assert disagg.admitted_count >= conv.admitted_count


def test_disaggregated_admits_more_on_average():
    """Across all mixes and many seeds, pooling wins in expectation."""
    scheduler = FcfsScheduler()
    conv_total = 0
    disagg_total = 0
    for seed in range(25):
        for config in TABLE_I.values():
            workload = generate_vms(config, 40,
                                    np.random.default_rng(seed))
            conv_total += scheduler.schedule(
                ConventionalDatacenter(8, 32, 32), workload).admitted_count
            disagg_total += scheduler.schedule(
                DisaggregatedDatacenter(8, 32, 8, 32),
                workload).admitted_count
    assert disagg_total > conv_total


@given(workload_names, st.integers(1, 40), st.integers(0, 2**32 - 1))
@settings(max_examples=60, deadline=None)
def test_memory_shares_sum_to_demand(name, count, seed):
    config = TABLE_I[name]
    workload = generate_vms(config, count, np.random.default_rng(seed))
    dc = DisaggregatedDatacenter(8, 32, 8, 32)
    outcome = FcfsScheduler().schedule(dc, workload)
    for placement in outcome.placed:
        assert sum(placement.memory_shares.values()) == placement.vm.ram_gib
