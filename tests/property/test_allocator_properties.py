"""Property-based tests for the segment allocator.

The allocator's invariant set (disjoint spans exactly tiling the
capacity, coalesced free list) must hold under *any* interleaving of
allocations and frees — exactly what hypothesis is for.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.errors import AllocationError
from repro.memory.allocator import SegmentAllocator

CAPACITY = 1 << 20  # 1 MiB play-space keeps shrinking fast
ALIGNMENT = 1 << 12  # 4 KiB


@given(sizes=st.lists(st.integers(1, CAPACITY // 4), min_size=1,
                      max_size=20))
@settings(max_examples=200)
def test_allocations_never_overlap(sizes):
    allocator = SegmentAllocator(CAPACITY, alignment=ALIGNMENT)
    spans = []
    for size in sizes:
        try:
            offset = allocator.allocate(size)
        except AllocationError:
            break
        spans.append((offset, allocator.allocated_spans()))
    live = allocator.allocated_spans()
    for first, second in zip(live, live[1:]):
        assert first.end <= second.base
    allocator.check_invariants()


@given(sizes=st.lists(st.integers(1, CAPACITY // 8), min_size=1,
                      max_size=16))
@settings(max_examples=200)
def test_free_everything_restores_pristine_state(sizes):
    allocator = SegmentAllocator(CAPACITY, alignment=ALIGNMENT)
    offsets = []
    for size in sizes:
        try:
            offsets.append(allocator.allocate(size))
        except AllocationError:
            break
    for offset in offsets:
        allocator.free(offset)
    assert allocator.free_bytes == CAPACITY
    assert allocator.largest_free_span == CAPACITY
    assert allocator.fragmentation == 0.0
    allocator.check_invariants()


@given(data=st.data())
@settings(max_examples=100)
def test_conservation_of_bytes(data):
    allocator = SegmentAllocator(CAPACITY, alignment=ALIGNMENT)
    live = {}
    for _ in range(data.draw(st.integers(1, 30))):
        if live and data.draw(st.booleans()):
            offset = data.draw(st.sampled_from(sorted(live)))
            allocator.free(offset)
            del live[offset]
        else:
            size = data.draw(st.integers(1, CAPACITY // 8))
            try:
                offset = allocator.allocate(size)
            except AllocationError:
                continue
            live[offset] = size
        assert allocator.allocated_bytes + allocator.free_bytes == CAPACITY
    allocator.check_invariants()


class AllocatorMachine(RuleBasedStateMachine):
    """Stateful exploration of allocate/free interleavings."""

    def __init__(self):
        super().__init__()
        self.allocator = SegmentAllocator(CAPACITY, alignment=ALIGNMENT)
        self.live: list[int] = []

    @rule(size=st.integers(1, CAPACITY // 4))
    def allocate(self, size):
        try:
            offset = self.allocator.allocate(size)
        except AllocationError:
            return
        assert offset not in self.live
        self.live.append(offset)

    @precondition(lambda self: self.live)
    @rule(data=st.data())
    def free(self, data):
        index = data.draw(st.integers(0, len(self.live) - 1))
        offset = self.live.pop(index)
        self.allocator.free(offset)

    @invariant()
    def spans_tile_capacity(self):
        self.allocator.check_invariants()

    @invariant()
    def counts_agree(self):
        assert self.allocator.allocation_count == len(self.live)


TestAllocatorStateMachine = AllocatorMachine.TestCase
