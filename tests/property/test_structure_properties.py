"""Property-based tests for RMST, address map, hotplug and BER physics."""

from __future__ import annotations

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.errors import SegmentTableError
from repro.hardware.rmst import RemoteMemorySegmentTable, SegmentEntry
from repro.memory.address import AddressRange, PhysicalAddressMap, align_up
from repro.network.optical.ber import ReceiverModel, ber_for_q, q_for_ber
from repro.software.hotplug import MemoryHotplug
from repro.software.pages import SectionState
from repro.units import mib

MIB = 1 << 20


# ---------------------------------------------------------------------------
# RMST
# ---------------------------------------------------------------------------

segments = st.builds(
    lambda index, base, size: SegmentEntry(
        f"seg-{index}", base * MIB, size * MIB, "mb0", 0, "cb0.cbn0"),
    index=st.integers(0, 1000),
    base=st.integers(0, 512),
    size=st.integers(1, 64),
)


@given(st.lists(segments, max_size=12))
@settings(max_examples=200)
def test_rmst_never_holds_overlapping_entries(entries):
    table = RemoteMemorySegmentTable(capacity=32)
    for entry in entries:
        try:
            table.install(entry)
        except SegmentTableError:
            continue
    installed = list(table)
    for i, first in enumerate(installed):
        for second in installed[i + 1:]:
            assert not first.overlaps(second)


@given(st.lists(segments, max_size=12), st.integers(0, 600 * MIB))
@settings(max_examples=200)
def test_rmst_lookup_agrees_with_containment(entries, address):
    table = RemoteMemorySegmentTable(capacity=32)
    for entry in entries:
        try:
            table.install(entry)
        except SegmentTableError:
            continue
    hit = table.lookup_or_none(address)
    containing = [e for e in table if e.contains(address)]
    if hit is None:
        assert containing == []
    else:
        assert containing == [hit]
        # Translation stays inside the remote span.
        remote = hit.translate(address)
        assert hit.remote_offset <= remote < hit.remote_offset + hit.size


# ---------------------------------------------------------------------------
# Address map
# ---------------------------------------------------------------------------

@given(st.lists(st.integers(1, 48 * MIB), min_size=1, max_size=10),
       st.sampled_from([MIB, 2 * MIB, 16 * MIB]))
@settings(max_examples=200)
def test_address_map_windows_disjoint_and_aligned(sizes, alignment):
    pmap = PhysicalAddressMap(64 * MIB, window_alignment=alignment)
    for index, size in enumerate(sizes):
        pmap.map_window(f"w{index}", size)
    windows = sorted(pmap.remote_windows.values())
    for window in windows:
        assert window.base % alignment == 0
        assert window.size % alignment == 0
        assert window.base >= pmap.local_window.end
    for first, second in zip(windows, windows[1:]):
        assert first.end <= second.base


@given(st.integers(1, 10**9), st.sampled_from([1, 4096, MIB]))
def test_align_up_properties(value, alignment):
    aligned = align_up(value, alignment)
    assert aligned >= value
    assert aligned % alignment == 0
    assert aligned - value < alignment


@given(st.integers(0, 2**40), st.integers(1, 2**32))
def test_address_range_contains_iff_offset_valid(base, size):
    r = AddressRange(base, size)
    assert r.contains(base)
    assert not r.contains(base + size)
    assert r.offset_of(base) == 0


# ---------------------------------------------------------------------------
# Hotplug
# ---------------------------------------------------------------------------

@given(st.lists(st.tuples(st.integers(0, 31), st.integers(1, 8)),
                min_size=1, max_size=10))
@settings(max_examples=150)
def test_hotplug_online_bytes_never_exceed_present(operations):
    hotplug = MemoryHotplug(mib(128))
    for start, count in operations:
        base = start * mib(128)
        size = count * mib(128)
        try:
            hotplug.add_memory(base, size)
            hotplug.online(base, size)
        except Exception:
            continue
        assert hotplug.online_bytes() <= hotplug.present_bytes()


@given(st.integers(1, 16))
def test_hotplug_roundtrip_is_identity(section_count):
    hotplug = MemoryHotplug(mib(128))
    size = section_count * mib(128)
    hotplug.add_memory(0, size)
    hotplug.online(0, size)
    hotplug.offline(0, size)
    hotplug.remove_memory(0, size)
    assert hotplug.present_bytes() == 0
    assert hotplug.sections_in_state(SectionState.ONLINE) == []


# ---------------------------------------------------------------------------
# BER physics
# ---------------------------------------------------------------------------

@given(st.floats(1e-15, 1e-3))
def test_q_ber_roundtrip(ber):
    assert ber_for_q(q_for_ber(ber)) == pytest.approx(ber, rel=1e-6)


@given(st.floats(-30.0, 0.0), st.floats(-30.0, 0.0))
def test_ber_monotone_nonincreasing_in_power(power_a, power_b):
    assume(abs(power_a - power_b) > 1e-9)
    receiver = ReceiverModel(sensitivity_dbm=-15.0)
    low, high = sorted((power_a, power_b))
    assert receiver.ber(high) <= receiver.ber(low)


@given(st.floats(-20.0, -5.0))
def test_required_power_is_exact_inverse(sensitivity):
    receiver = ReceiverModel(sensitivity_dbm=sensitivity)
    for target in (1e-9, 1e-12, 1e-15):
        power = receiver.required_power_dbm(target)
        assert receiver.ber(power) == pytest.approx(target, rel=1e-6)
