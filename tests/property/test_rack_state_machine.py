"""Stateful property test of the full rack.

Hypothesis drives random interleavings of the rack's public operations
(boot, scale up, scale down, migrate, terminate, power management) and
checks the global conservation invariants after every step: no leaked
segments, circuits, reservations or RMST entries, and allocator books
that always balance.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.core.builder import RackBuilder
from repro.errors import ReproError
from repro.orchestration.requests import VmAllocationRequest
from repro.units import gib


class RackMachine(RuleBasedStateMachine):
    """Random walks over the rack's control plane."""

    def __init__(self):
        super().__init__()
        self.system = (RackBuilder("prop")
                       .with_compute_bricks(3, cores=8, local_memory=gib(2))
                       .with_memory_bricks(3, modules=2, module_size=gib(8))
                       .build())
        self.vm_counter = 0
        self.live_vms: list[str] = []
        #: vm_id -> list of scale-up segment ids still attached.
        self.runtime_segments: dict[str, list[str]] = {}

    # -- operations ---------------------------------------------------------

    @rule(vcpus=st.integers(1, 4), ram_gib=st.integers(1, 6))
    def boot(self, vcpus, ram_gib):
        vm_id = f"vm-{self.vm_counter}"
        try:
            self.system.boot_vm(VmAllocationRequest(
                vm_id, vcpus=vcpus, ram_bytes=gib(ram_gib)))
        except ReproError:
            return  # rack full — a legal outcome
        self.vm_counter += 1
        self.live_vms.append(vm_id)
        self.runtime_segments[vm_id] = []

    @precondition(lambda self: self.live_vms)
    @rule(data=st.data(), size_gib=st.integers(1, 3))
    def scale_up(self, data, size_gib):
        vm_id = data.draw(st.sampled_from(self.live_vms))
        try:
            result = self.system.scale_up(vm_id, gib(size_gib))
        except ReproError:
            return  # pool exhausted — legal
        self.runtime_segments[vm_id].append(result.segment.segment_id)

    @precondition(lambda self: any(self.runtime_segments.get(v)
                                   for v in self.live_vms))
    @rule(data=st.data())
    def scale_down(self, data):
        candidates = [v for v in self.live_vms if self.runtime_segments[v]]
        vm_id = data.draw(st.sampled_from(candidates))
        segment_id = self.runtime_segments[vm_id].pop()
        self.system.scale_down(vm_id, segment_id)

    @precondition(lambda self: self.live_vms)
    @rule(data=st.data())
    def migrate(self, data):
        vm_id = data.draw(st.sampled_from(self.live_vms))
        current = self.system.hosting(vm_id).brick_id
        others = [b.brick_id for b in self.system.compute_bricks
                  if b.brick_id != current]
        target = data.draw(st.sampled_from(others))
        try:
            self.system.migrate_vm(vm_id, target)
        except ReproError:
            # Target full or unreachable — the VM must still be intact.
            hosted = self.system.hosting(vm_id)
            assert hosted.vm.is_running

    @precondition(lambda self: self.live_vms)
    @rule(data=st.data())
    def terminate(self, data):
        vm_id = data.draw(st.sampled_from(self.live_vms))
        self.system.terminate_vm(vm_id)
        self.live_vms.remove(vm_id)
        del self.runtime_segments[vm_id]

    @rule()
    def power_off_idle(self):
        self.system.power_off_idle()

    @rule()
    def audit(self):
        assert self.system.audit_circuits() == 0.0  # nothing degraded

    # -- invariants ------------------------------------------------------------

    @invariant()
    def vm_set_agrees(self):
        assert sorted(v.vm_id for v in self.system.vms) == \
            sorted(self.live_vms)

    @invariant()
    def allocator_books_balance(self):
        for entry in self.system.sdm.registry.memory_entries:
            entry.allocator.check_invariants()
        allocated = sum(e.allocator.allocated_bytes
                        for e in self.system.sdm.registry.memory_entries)
        live = sum(s.size for s in self.system.sdm.live_segments)
        assert allocated == live

    @invariant()
    def circuits_match_refcounts(self):
        refs = self.system.sdm.circuit_utilization()
        active = {fc.circuit_id for fc in self.system.fabric.active_circuits}
        assert set(refs) <= active
        # Every referenced circuit carries at least one segment.
        assert all(count > 0 for count in refs.values())

    @invariant()
    def rmst_entries_match_segments(self):
        live_by_brick: dict[str, int] = {}
        for segment in self.system.sdm.live_segments:
            live_by_brick[segment.compute_brick_id] = \
                live_by_brick.get(segment.compute_brick_id, 0) + 1
        for stack in self.system.stacks:
            expected = live_by_brick.get(stack.brick.brick_id, 0)
            assert len(stack.brick.rmst) == expected

    @invariant()
    def reservations_match_guests(self):
        for stack in self.system.stacks:
            guest_ram = stack.hypervisor.guest_ram_bytes()
            assert stack.kernel.reserved_bytes == guest_ram
            assert stack.kernel.reserved_bytes <= stack.kernel.total_ram_bytes


TestRackStateMachine = RackMachine.TestCase
TestRackStateMachine.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None)
