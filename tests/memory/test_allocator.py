"""Unit tests for the dMEMBRICK segment allocator."""

from __future__ import annotations

import pytest

from repro.errors import AllocationError
from repro.memory.allocator import SegmentAllocator
from repro.units import gib, mib


class TestAllocate:
    def test_first_fit_from_zero(self):
        allocator = SegmentAllocator(gib(16))
        assert allocator.allocate(gib(1)) == 0
        assert allocator.allocate(gib(1)) == gib(1)

    def test_alignment_padding(self):
        allocator = SegmentAllocator(gib(16), alignment=mib(128))
        allocator.allocate(mib(100))
        assert allocator.allocated_bytes == mib(128)

    def test_exhaustion(self):
        allocator = SegmentAllocator(gib(1))
        allocator.allocate(gib(1))
        with pytest.raises(AllocationError, match="out of capacity"):
            allocator.allocate(1)

    def test_zero_size_rejected(self):
        with pytest.raises(AllocationError):
            SegmentAllocator(gib(1)).allocate(0)

    def test_adjacent_frees_coalesce_for_reuse(self):
        allocator = SegmentAllocator(300, alignment=1)
        a = allocator.allocate(100)
        b = allocator.allocate(100)
        allocator.allocate(100)
        allocator.free(a)
        allocator.free(b)
        # The first two spans coalesce into 200 contiguous bytes.
        assert allocator.allocate(200) == 0

    def test_fragmented_but_sufficient_total(self):
        allocator = SegmentAllocator(300, alignment=1)
        spans = [allocator.allocate(100) for _ in range(3)]
        allocator.free(spans[0])
        allocator.free(spans[2])
        # 200 free in two non-adjacent spans of 100.
        with pytest.raises(AllocationError, match="fragmented"):
            allocator.allocate(150)


class TestFree:
    def test_free_returns_size(self):
        allocator = SegmentAllocator(gib(4), alignment=mib(128))
        offset = allocator.allocate(mib(128))
        assert allocator.free(offset) == mib(128)
        assert allocator.free_bytes == gib(4)

    def test_double_free_rejected(self):
        allocator = SegmentAllocator(gib(1))
        offset = allocator.allocate(mib(1))
        allocator.free(offset)
        with pytest.raises(AllocationError, match="not allocated"):
            allocator.free(offset)

    def test_free_unknown_offset_rejected(self):
        with pytest.raises(AllocationError):
            SegmentAllocator(gib(1)).free(42)

    def test_coalescing_left_and_right(self):
        allocator = SegmentAllocator(300, alignment=1)
        a = allocator.allocate(100)
        b = allocator.allocate(100)
        c = allocator.allocate(100)
        allocator.free(a)
        allocator.free(c)
        allocator.free(b)  # merges with both neighbours
        assert len(allocator.free_spans()) == 1
        assert allocator.largest_free_span == 300

    def test_reuse_after_free(self):
        allocator = SegmentAllocator(gib(1), alignment=mib(128))
        offset = allocator.allocate(mib(512))
        allocator.free(offset)
        assert allocator.allocate(mib(512)) == offset


class TestStatistics:
    def test_utilization(self):
        allocator = SegmentAllocator(gib(4))
        allocator.allocate(gib(1))
        assert allocator.utilization == pytest.approx(0.25)

    def test_fragmentation_zero_when_contiguous(self):
        allocator = SegmentAllocator(gib(4))
        allocator.allocate(gib(1))
        assert allocator.fragmentation == 0.0

    def test_fragmentation_positive_with_holes(self):
        allocator = SegmentAllocator(400, alignment=1)
        spans = [allocator.allocate(100) for _ in range(4)]
        allocator.free(spans[0])
        allocator.free(spans[2])
        assert allocator.fragmentation == pytest.approx(0.5)

    def test_fragmentation_when_full(self):
        allocator = SegmentAllocator(100, alignment=1)
        allocator.allocate(100)
        assert allocator.fragmentation == 0.0

    def test_allocation_count(self):
        allocator = SegmentAllocator(gib(1))
        a = allocator.allocate(mib(1))
        allocator.allocate(mib(1))
        assert allocator.allocation_count == 2
        allocator.free(a)
        assert allocator.allocation_count == 1

    def test_allocated_spans_sorted(self):
        allocator = SegmentAllocator(gib(1), alignment=mib(1))
        offsets = [allocator.allocate(mib(1)) for _ in range(3)]
        spans = allocator.allocated_spans()
        assert [s.base for s in spans] == sorted(offsets)

    def test_invariants_hold(self):
        allocator = SegmentAllocator(gib(1), alignment=mib(64))
        offsets = [allocator.allocate(mib(64)) for _ in range(8)]
        for offset in offsets[::2]:
            allocator.free(offset)
        allocator.check_invariants()

    def test_invalid_construction(self):
        with pytest.raises(AllocationError):
            SegmentAllocator(0)
        with pytest.raises(AllocationError):
            SegmentAllocator(100, alignment=0)
