"""Unit tests for the remote-memory access paths (circuit and packet)."""

from __future__ import annotations

import pytest

from repro.errors import CircuitError, RoutingError
from repro.hardware.bricks import ComputeBrick, MemoryBrick
from repro.hardware.rmst import SegmentEntry
from repro.memory.path import (
    GROUP_COMPUTE,
    GROUP_MEMORY,
    GROUP_OPTICAL,
    CircuitAccessPath,
    PacketAccessPath,
    PacketPathBlocks,
)
from repro.memory.transactions import MemoryTransaction
from repro.network.optical.topology import OpticalFabric
from repro.units import gib


@pytest.fixture
def wired():
    """Compute + memory brick joined by a circuit with an RMST entry."""
    compute = ComputeBrick("cb0")
    memory = MemoryBrick("mb0")
    fabric = OpticalFabric()
    fabric.attach_brick(compute)
    fabric.attach_brick(memory)
    circuit = fabric.connect(compute, memory)
    entry = SegmentEntry(
        "seg0", base=compute.local_memory_bytes, size=gib(2),
        remote_brick_id="mb0", remote_offset=gib(1),
        egress_port_id=circuit.port_toward(compute).port_id)
    compute.rmst.install(entry)
    return compute, memory, circuit


REMOTE_BASE = ComputeBrick("tmp").local_memory_bytes


class TestCircuitPath:
    def test_read_round_trip_breakdown(self, wired):
        compute, memory, circuit = wired
        path = CircuitAccessPath(compute, memory, circuit)
        result = path.access(MemoryTransaction.read(REMOTE_BASE + 4096))
        assert result.remote_brick_id == "mb0"
        assert result.remote_offset == gib(1) + 4096
        groups = result.breakdown.by_group()
        assert set(groups) == {GROUP_COMPUTE, GROUP_OPTICAL, GROUP_MEMORY}
        assert 300e-9 < result.round_trip_s < 2e-6

    def test_write_serializes_payload_on_request(self, wired):
        compute, memory, circuit = wired
        path = CircuitAccessPath(compute, memory, circuit)
        read = path.access(MemoryTransaction.read(REMOTE_BASE, 4096))
        write = path.access(MemoryTransaction.write(REMOTE_BASE, 4096))
        # Both directions carry the payload exactly once, so totals match.
        assert write.round_trip_s == pytest.approx(read.round_trip_s)

    def test_rmst_miss_propagates(self, wired):
        compute, memory, circuit = wired
        path = CircuitAccessPath(compute, memory, circuit)
        from repro.errors import SegmentTableError
        with pytest.raises(SegmentTableError):
            path.access(MemoryTransaction.read(0))  # local address: no entry

    def test_wrong_circuit_rejected(self, wired):
        compute, memory, _circuit = wired
        other_memory = MemoryBrick("mb1")
        fabric2 = OpticalFabric()
        fabric2.attach_brick(compute)  # fresh fabric, ports still busy? no:
        with pytest.raises(CircuitError):
            CircuitAccessPath(compute, other_memory, _circuit)

    def test_steering_mismatch_detected(self, wired):
        compute, memory, circuit = wired
        # Install an entry steering to a port that is not the circuit's.
        rogue = SegmentEntry(
            "rogue", base=REMOTE_BASE + gib(2), size=gib(1),
            remote_brick_id="mb0", remote_offset=0,
            egress_port_id="cb0.cbn7")
        compute.rmst.install(rogue)
        path = CircuitAccessPath(compute, memory, circuit)
        with pytest.raises(CircuitError, match="terminates"):
            path.access(MemoryTransaction.read(REMOTE_BASE + gib(2)))

    def test_contention_with_now(self, wired):
        compute, memory, circuit = wired
        path = CircuitAccessPath(compute, memory, circuit)
        first = path.access(MemoryTransaction.read(REMOTE_BASE), now=0.0)
        second = path.access(MemoryTransaction.read(REMOTE_BASE), now=0.0)
        # The second arrival queues behind the first at the controller.
        assert second.round_trip_s > first.round_trip_s


class TestPacketPath:
    def test_breakdown_has_all_blocks(self, wired):
        compute, memory, _circuit = wired
        path = PacketAccessPath(compute, memory)
        path.ensure_routes()
        result = path.access(MemoryTransaction.read(REMOTE_BASE))
        blocks = result.breakdown.by_name()
        for expected in ("tgl", "ni", "switch", "mac_phy", "propagation",
                         "glue", "memory"):
            assert expected in blocks, expected

    def test_mac_phy_and_switch_dominate(self, wired):
        # The Fig. 8 shape: MAC/PHY + switches >> propagation.
        compute, memory, _circuit = wired
        path = PacketAccessPath(compute, memory)
        path.ensure_routes()
        result = path.access(MemoryTransaction.read(REMOTE_BASE))
        blocks = result.breakdown.by_name()
        assert blocks["mac_phy"] > blocks["propagation"]
        assert blocks["switch"] > blocks["propagation"]

    def test_slower_than_circuit_path(self, wired):
        compute, memory, circuit = wired
        packet = PacketAccessPath(compute, memory)
        packet.ensure_routes()
        circuit_path = CircuitAccessPath(compute, memory, circuit)
        txn = MemoryTransaction.read(REMOTE_BASE)
        assert (packet.access(txn).round_trip_s
                > circuit_path.access(txn).round_trip_s)

    def test_fec_penalty_exceeds_200ns_round_trip(self, wired):
        compute, memory, _circuit = wired
        plain = PacketAccessPath(compute, memory)
        plain.ensure_routes()
        fec = PacketAccessPath(
            compute, memory,
            compute_blocks=PacketPathBlocks.for_brick("cb0", fec_enabled=True),
            memory_blocks=PacketPathBlocks.for_brick("mb0", fec_enabled=True))
        fec.ensure_routes()
        txn = MemoryTransaction.read(REMOTE_BASE)
        penalty = fec.access(txn).round_trip_s - plain.access(txn).round_trip_s
        assert penalty > 200e-9

    def test_unrouted_switch_raises(self, wired):
        compute, memory, _circuit = wired
        path = PacketAccessPath(compute, memory)
        with pytest.raises(RoutingError):
            path.access(MemoryTransaction.read(REMOTE_BASE))

    def test_wrong_destination_brick_rejected(self, wired):
        compute, _memory, _circuit = wired
        stranger = MemoryBrick("mb9")
        path = PacketAccessPath(compute, stranger)
        path.ensure_routes()
        with pytest.raises(RoutingError, match="lives on"):
            path.access(MemoryTransaction.read(REMOTE_BASE))

    def test_negative_propagation_rejected(self, wired):
        compute, memory, _circuit = wired
        with pytest.raises(RoutingError):
            PacketAccessPath(compute, memory, propagation_delay_s=-1e-9)
