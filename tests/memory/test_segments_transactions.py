"""Unit tests for remote segments and memory transactions."""

from __future__ import annotations

import pytest

from repro.errors import AddressError, AllocationError
from repro.memory.segments import RemoteSegment, SegmentState
from repro.memory.transactions import (
    CACHE_LINE_BYTES,
    MemoryOp,
    MemoryTransaction,
)
from repro.units import gib


def make_segment(**kwargs) -> RemoteSegment:
    defaults = dict(segment_id="seg0", memory_brick_id="mb0", offset=0,
                    size=gib(1), compute_brick_id="cb0", vm_id="vm-0")
    defaults.update(kwargs)
    return RemoteSegment(**defaults)


class TestRemoteSegment:
    def test_starts_reserved(self):
        segment = make_segment()
        assert segment.state is SegmentState.RESERVED
        assert not segment.is_active

    def test_activate_then_release(self):
        segment = make_segment()
        segment.activate()
        assert segment.is_active
        segment.release()
        assert segment.state is SegmentState.RELEASED

    def test_reserved_can_be_released_directly(self):
        segment = make_segment()
        segment.release()
        assert segment.state is SegmentState.RELEASED

    def test_released_is_terminal(self):
        segment = make_segment()
        segment.release()
        with pytest.raises(AllocationError, match="illegal transition"):
            segment.activate()

    def test_double_activate_rejected(self):
        segment = make_segment()
        segment.activate()
        with pytest.raises(AllocationError):
            segment.activate()

    def test_end(self):
        segment = make_segment(offset=gib(2), size=gib(1))
        assert segment.end == gib(3)

    def test_invalid_size_rejected(self):
        with pytest.raises(AllocationError):
            make_segment(size=0)

    def test_negative_offset_rejected(self):
        with pytest.raises(AllocationError):
            make_segment(offset=-1)


class TestMemoryTransaction:
    def test_defaults_to_cache_line(self):
        txn = MemoryTransaction.read(0x1000)
        assert txn.size_bytes == CACHE_LINE_BYTES
        assert txn.op is MemoryOp.READ
        assert not txn.is_write

    def test_write_constructor(self):
        txn = MemoryTransaction.write(0x1000, 128)
        assert txn.is_write
        assert txn.size_bytes == 128

    def test_negative_address_rejected(self):
        with pytest.raises(AddressError):
            MemoryTransaction.read(-1)

    def test_zero_size_rejected(self):
        with pytest.raises(AddressError):
            MemoryTransaction.read(0, 0)

    def test_frozen(self):
        txn = MemoryTransaction.read(0)
        with pytest.raises(AttributeError):
            txn.address = 5  # type: ignore[misc]
