"""Unit tests for address ranges and physical address maps."""

from __future__ import annotations

import pytest

from repro.errors import AddressError
from repro.memory.address import AddressRange, PhysicalAddressMap, align_up
from repro.units import gib, mib


class TestAddressRange:
    def test_end_contains(self):
        r = AddressRange(0x1000, 0x1000)
        assert r.end == 0x2000
        assert r.contains(0x1000)
        assert r.contains(0x1FFF)
        assert not r.contains(0x2000)

    def test_contains_range(self):
        outer = AddressRange(0, 100)
        inner = AddressRange(10, 50)
        assert outer.contains_range(inner)
        assert not inner.contains_range(outer)

    def test_overlap(self):
        a = AddressRange(0, 100)
        b = AddressRange(99, 10)
        c = AddressRange(100, 10)
        assert a.overlaps(b)
        assert not a.overlaps(c)

    def test_intersection(self):
        a = AddressRange(0, 100)
        b = AddressRange(50, 100)
        overlap = a.intersection(b)
        assert overlap == AddressRange(50, 50)
        assert a.intersection(AddressRange(200, 10)) is None

    def test_offset_of(self):
        r = AddressRange(0x1000, 0x100)
        assert r.offset_of(0x1010) == 0x10
        with pytest.raises(AddressError):
            r.offset_of(0x2000)

    def test_aligned(self):
        assert AddressRange(mib(128), mib(256)).aligned(mib(128))
        assert not AddressRange(mib(64), mib(128)).aligned(mib(128))
        with pytest.raises(AddressError):
            AddressRange(0, 10).aligned(0)

    def test_invalid_construction(self):
        with pytest.raises(AddressError):
            AddressRange(-1, 10)
        with pytest.raises(AddressError):
            AddressRange(0, 0)

    def test_ordering(self):
        assert AddressRange(0, 10) < AddressRange(10, 10)


class TestAlignUp:
    def test_already_aligned(self):
        assert align_up(mib(256), mib(128)) == mib(256)

    def test_rounds_up(self):
        assert align_up(mib(129), mib(128)) == mib(256)

    def test_zero(self):
        assert align_up(0, mib(128)) == 0

    def test_bad_alignment(self):
        with pytest.raises(AddressError):
            align_up(1, 0)


class TestPhysicalAddressMap:
    def test_local_window_at_zero(self):
        pmap = PhysicalAddressMap(gib(4))
        assert pmap.local_window == AddressRange(0, gib(4))

    def test_map_window_above_local_aligned(self):
        pmap = PhysicalAddressMap(gib(4) + 1, window_alignment=mib(128))
        window = pmap.map_window("seg0", gib(1))
        assert window.base % mib(128) == 0
        assert window.base >= gib(4) + 1

    def test_window_size_padded(self):
        pmap = PhysicalAddressMap(gib(1), window_alignment=mib(128))
        window = pmap.map_window("seg0", mib(100))
        assert window.size == mib(128)

    def test_windows_stack(self):
        pmap = PhysicalAddressMap(gib(1), window_alignment=mib(128))
        first = pmap.map_window("a", gib(1))
        second = pmap.map_window("b", gib(1))
        assert second.base == first.end

    def test_duplicate_name_rejected(self):
        pmap = PhysicalAddressMap(gib(1))
        pmap.map_window("a", 100)
        with pytest.raises(AddressError):
            pmap.map_window("a", 100)

    def test_window_of_resolution(self):
        pmap = PhysicalAddressMap(gib(1), window_alignment=mib(128))
        window = pmap.map_window("a", gib(1))
        assert pmap.window_of(0) == (None, pmap.local_window)
        assert pmap.window_of(window.base) == ("a", window)
        with pytest.raises(AddressError):
            pmap.window_of(window.end)

    def test_is_remote(self):
        pmap = PhysicalAddressMap(gib(1), window_alignment=mib(128))
        window = pmap.map_window("a", mib(128))
        assert not pmap.is_remote(0)
        assert pmap.is_remote(window.base)

    def test_unmap(self):
        pmap = PhysicalAddressMap(gib(1), window_alignment=mib(128))
        pmap.map_window("a", mib(128))
        pmap.unmap_window("a")
        assert pmap.remote_windows == {}
        with pytest.raises(AddressError):
            pmap.unmap_window("a")

    def test_hole_not_reused(self):
        pmap = PhysicalAddressMap(gib(1), window_alignment=mib(128))
        first = pmap.map_window("a", mib(128))
        pmap.unmap_window("a")
        second = pmap.map_window("b", mib(128))
        assert second.base > first.base

    def test_total_mapped(self):
        pmap = PhysicalAddressMap(gib(2), window_alignment=mib(128))
        pmap.map_window("a", gib(1))
        assert pmap.total_mapped_bytes() == gib(3)

    def test_reserve_then_map_honours_address(self):
        pmap = PhysicalAddressMap(gib(1), window_alignment=mib(128))
        reserved = pmap.reserve_window("a", gib(1))
        # Another reservation claims the next range.
        other = pmap.reserve_window("b", gib(1))
        assert other.base == reserved.end
        mapped = pmap.map_window("a", gib(1))
        assert mapped == reserved

    def test_reserve_size_mismatch_rejected(self):
        pmap = PhysicalAddressMap(gib(1), window_alignment=mib(128))
        pmap.reserve_window("a", gib(1))
        with pytest.raises(AddressError, match="reserved with"):
            pmap.map_window("a", gib(2))

    def test_cancel_reservation(self):
        pmap = PhysicalAddressMap(gib(1), window_alignment=mib(128))
        pmap.reserve_window("a", mib(128))
        pmap.cancel_reservation("a")
        with pytest.raises(AddressError):
            pmap.cancel_reservation("a")
        # Name is usable again.
        pmap.reserve_window("a", mib(128))

    def test_reserve_duplicate_rejected(self):
        pmap = PhysicalAddressMap(gib(1))
        pmap.reserve_window("a", 100)
        with pytest.raises(AddressError):
            pmap.reserve_window("a", 100)

    def test_iter_windows_local_first(self):
        pmap = PhysicalAddressMap(gib(1), window_alignment=mib(128))
        pmap.map_window("a", mib(128))
        names = [name for name, _r in pmap.iter_windows()]
        assert names == [None, "a"]

    def test_highest_address(self):
        pmap = PhysicalAddressMap(gib(1), window_alignment=mib(128))
        window = pmap.map_window("a", mib(256))
        assert pmap.highest_address == window.end
