"""Tests for the timed memory-contention simulation."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.fabric.interconnect import Interconnect
from repro.hardware.bricks import MemoryBrick
from repro.hardware.memory_tech import HMC_GEN2
from repro.memory.contention import MemoryContentionSim, link_one_way_s
from repro.memory.path import TRANSCEIVER_LATENCY_S
from repro.units import gib


class TestContention:
    def test_single_client_unloaded_latency(self):
        sim = MemoryContentionSim(link_count=4)
        result = sim.run(client_count=1, window=1, duration_s=50e-6)
        # One outstanding transaction: latency = wire + flight + service,
        # well under a microsecond, with no queueing variance.
        assert result.completed > 10
        assert result.mean_latency_s < 1e-6
        assert result.latency_percentile(99) == pytest.approx(
            result.latency_percentile(50), rel=0.2)

    def test_throughput_scales_with_links(self):
        one = MemoryContentionSim(link_count=1).run(8, duration_s=100e-6)
        four = MemoryContentionSim(link_count=4).run(8, duration_s=100e-6)
        assert four.throughput_bps > 3 * one.throughput_bps

    def test_contention_raises_latency(self):
        sim = MemoryContentionSim(link_count=1)
        light = sim.run(client_count=1, window=1, duration_s=100e-6)
        heavy = MemoryContentionSim(link_count=1).run(
            client_count=8, window=4, duration_s=100e-6)
        assert heavy.mean_latency_s > 2 * light.mean_latency_s

    def test_throughput_bounded_by_wire(self):
        sim = MemoryContentionSim(link_count=1)
        result = sim.run(client_count=16, window=8, duration_s=100e-6)
        assert result.throughput_bps <= sim.link_saturation_bps()

    def test_every_client_makes_progress(self):
        sim = MemoryContentionSim(link_count=2)
        result = sim.run(client_count=4, window=2, duration_s=100e-6)
        assert all(c.completed > 0 for c in result.clients)

    def test_faster_memory_technology_helps_when_memory_bound(self):
        # With abundant links, the controller service time shows up.
        ddr_brick = MemoryBrick("ddr", module_count=1, module_bytes=gib(16))
        hmc_brick = MemoryBrick("hmc", module_count=1, module_bytes=gib(16),
                                technology=HMC_GEN2)
        ddr = MemoryContentionSim(ddr_brick, link_count=8).run(
            8, window=4, duration_s=100e-6)
        hmc = MemoryContentionSim(hmc_brick, link_count=8).run(
            8, window=4, duration_s=100e-6)
        # HMC's higher device latency costs it here (single module).
        assert hmc.mean_latency_s != ddr.mean_latency_s

    def test_percentiles_ordered(self):
        result = MemoryContentionSim(link_count=2).run(
            4, window=2, duration_s=100e-6)
        assert (result.latency_percentile(50)
                <= result.latency_percentile(95)
                <= result.latency_percentile(99))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MemoryContentionSim(link_count=0)
        with pytest.raises(ConfigurationError):
            MemoryContentionSim(transaction_bytes=0)
        sim = MemoryContentionSim()
        with pytest.raises(ConfigurationError):
            sim.run(client_count=0)
        with pytest.raises(ConfigurationError):
            sim.run(client_count=1, window=0)
        with pytest.raises(ConfigurationError):
            sim.run(client_count=1, duration_s=0)

    def test_link_latency_composed_from_hop_table(self):
        """The one-way figure derives from the fabric Interconnect, not
        a hardcoded constant — contention and access-path models share
        one hop model."""
        sim = MemoryContentionSim()
        intra = Interconnect().intra_rack_path()
        assert sim.link_one_way_s == pytest.approx(
            intra.propagation_delay_s + 2 * TRANSCEIVER_LATENCY_S)
        assert sim.link_one_way_s == pytest.approx(link_one_way_s(intra))

    def test_pod_spanning_links_cost_more_latency(self):
        interconnect = Interconnect()
        local = MemoryContentionSim(
            link_count=2, hop_path=interconnect.intra_rack_path())
        remote = MemoryContentionSim(
            link_count=2, hop_path=interconnect.inter_rack_path())
        assert remote.link_one_way_s > local.link_one_way_s
        local_run = local.run(client_count=1, window=1, duration_s=50e-6)
        remote_run = remote.run(client_count=1, window=1, duration_s=50e-6)
        # Unloaded latency reflects the extra pod-switch tier exactly:
        # two more fibre runs each way.
        assert (remote_run.mean_latency_s
                > local_run.mean_latency_s)

    def test_empty_result_properties(self):
        from repro.memory.contention import ContentionResult
        result = ContentionResult(duration_s=0, link_count=1,
                                  client_count=0, transaction_bytes=64)
        assert result.throughput_bps == 0.0
        assert result.mean_latency_s == 0.0
        assert result.latency_percentile(99) == 0.0
