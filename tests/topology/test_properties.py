"""Property tests: every valid spec compiles; canonical form is stable."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology import TopologySpec, compile_spec
from repro.units import gib, mib

rack_specs = st.fixed_dictionaries({
    "compute_bricks": st.integers(min_value=1, max_value=2),
    "compute_cores": st.sampled_from([8, 16]),
    "memory_bricks": st.integers(min_value=1, max_value=2),
    "memory_modules": st.integers(min_value=1, max_value=2),
    "module_bytes": st.sampled_from([gib(2), gib(4)]),
})

topology_specs = st.fixed_dictionaries({
    "name": st.just("prop"),
    "pods": st.integers(min_value=1, max_value=3),
    "racks_per_pod": st.integers(min_value=1, max_value=2),
    "rack": rack_specs,
    "section_bytes": st.sampled_from([mib(256), mib(512)]),
    "placement": st.sampled_from(["pack", "spread"]),
    "spill_policy": st.sampled_from(["least-loaded", "first-fit", "never"]),
    "control": st.fixed_dictionaries({
        "max_batch": st.integers(min_value=1, max_value=4),
    }),
})


@settings(max_examples=10, deadline=None)
@given(raw=topology_specs)
def test_every_valid_spec_compiles(raw):
    compiled = compile_spec(raw)
    try:
        spec = compiled.spec
        assert len(compiled.federation.pods) == spec.pods
        pod = next(iter(compiled.federation.pods.values()))
        assert len(pod.system.racks) == spec.racks_per_pod
    finally:
        compiled.close()


@settings(max_examples=25, deadline=None)
@given(raw=topology_specs)
def test_canonical_form_is_a_fixed_point(raw):
    canonical = TopologySpec.from_dict(raw).to_dict()
    assert TopologySpec.from_dict(canonical).to_dict() == canonical
