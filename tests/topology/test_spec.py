"""TopologySpec validation: coercion, canonical form, rejections.

Every invalid-spec case asserts both the typed
:class:`~repro.errors.TopologyError` and the offending spec path in
its message — the compiler's errors must point at the field, not just
describe the problem.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError, TopologyError
from repro.topology import (
    TEMPLATE_NAMES,
    TopologySpec,
    load_spec,
    merge_spec,
    template,
)
from repro.units import gib, mib


def spec_dict(**overrides) -> dict:
    """A small valid raw spec, adjustable per test."""
    return merge_spec({
        "name": "t",
        "pods": 3,
        "racks_per_pod": 2,
        "rack": {"compute_bricks": 1, "memory_bricks": 1},
    }, overrides)


class TestCoercion:
    def test_sizes_accept_strings_and_ints(self):
        spec = TopologySpec.from_dict(spec_dict(
            section_bytes="256MiB",
            rack={"compute_bricks": 1, "memory_bricks": 1,
                  "module_bytes": "4GiB", "local_memory_bytes": gib(1)}))
        assert spec.section_bytes == mib(256)
        assert spec.rack.module_bytes == gib(4)
        assert spec.rack.local_memory_bytes == gib(1)

    def test_bandwidth_accepts_gbps_strings(self):
        spec = TopologySpec.from_dict(spec_dict(
            fabric={"interpod_link_bps": "100Gbps"}))
        assert spec.fabric.interpod_link_bps == 100e9

    def test_malformed_size_names_the_path(self):
        with pytest.raises(TopologyError) as excinfo:
            TopologySpec.from_dict(spec_dict(section_bytes="256 acres"))
        assert "section_bytes" in str(excinfo.value)
        assert excinfo.value.path == "section_bytes"

    def test_defaults_fill_everything(self):
        spec = TopologySpec.from_dict({})
        assert spec.pods == 2
        assert spec.rack.compute_bricks == 2
        assert spec.control.max_batch == 4
        assert spec.fabric.sync_window_s is None
        assert spec.domains == ()
        assert spec.maintenance == ()


class TestCanonicalForm:
    @pytest.mark.parametrize("name", TEMPLATE_NAMES)
    def test_template_to_dict_is_a_fixed_point(self, name):
        spec = template(name)
        canonical = spec.to_dict()
        assert TopologySpec.from_dict(canonical).to_dict() == canonical

    def test_derived_facts(self):
        spec = template("M")
        assert spec.pod_ids == ("pod0", "pod1", "pod2")
        assert spec.bricks_per_rack == 4
        assert spec.total_bricks == 3 * 2 * 4
        assert spec.pool_bytes == 3 * 2 * 2 * 2 * gib(4)

    def test_override_merges_one_level_deep(self):
        spec = template("M").override(
            pods=4, rack={"memory_bricks": 3})
        assert spec.pods == 4
        assert spec.rack.memory_bricks == 3
        # Unmentioned rack fields survive the merge.
        assert spec.rack.compute_bricks == 2


class TestRejections:
    def test_zero_brick_rack(self):
        with pytest.raises(TopologyError) as excinfo:
            TopologySpec.from_dict(spec_dict(
                rack={"compute_bricks": 1, "memory_bricks": 0}))
        assert excinfo.value.path == "rack.memory_bricks"

    def test_zero_pods(self):
        with pytest.raises(TopologyError) as excinfo:
            TopologySpec.from_dict(spec_dict(pods=0))
        assert excinfo.value.path == "pods"

    def test_unknown_key(self):
        with pytest.raises(TopologyError) as excinfo:
            TopologySpec.from_dict(spec_dict(rakcs_per_pod=2))
        assert "rakcs_per_pod" in str(excinfo.value)

    def test_unknown_placement_and_spill(self):
        with pytest.raises(TopologyError) as excinfo:
            TopologySpec.from_dict(spec_dict(placement="stack"))
        assert excinfo.value.path == "placement"
        with pytest.raises(TopologyError) as excinfo:
            TopologySpec.from_dict(spec_dict(spill_policy="sometimes"))
        assert excinfo.value.path == "spill_policy"

    def test_overlapping_same_kind_domains(self):
        with pytest.raises(TopologyError) as excinfo:
            TopologySpec.from_dict(spec_dict(domains=[
                {"kind": "rack-power", "mtbf_s": 60, "mttr_s": 4},
                {"kind": "rack-power", "mtbf_s": 30, "mttr_s": 2},
            ]))
        assert excinfo.value.path == "domains[1]"
        assert "overlaps domains[0]" in str(excinfo.value)

    def test_disjoint_same_kind_domains_allowed(self):
        spec = TopologySpec.from_dict(spec_dict(domains=[
            {"kind": "rack-power", "mtbf_s": 60, "mttr_s": 4,
             "pods": ["pod0"]},
            {"kind": "rack-power", "mtbf_s": 30, "mttr_s": 2,
             "pods": ["pod1", "pod2"]},
        ]))
        assert len(spec.domains) == 2

    def test_different_kind_domains_may_share_pods(self):
        spec = TopologySpec.from_dict(spec_dict(domains=[
            {"kind": "rack-power", "mtbf_s": 60, "mttr_s": 4},
            {"kind": "pod-network", "mtbf_s": 60, "mttr_s": 4},
        ]))
        assert len(spec.domains) == 2

    def test_unknown_pod_in_domain_scope(self):
        with pytest.raises(TopologyError) as excinfo:
            TopologySpec.from_dict(spec_dict(domains=[
                {"kind": "rack-power", "mtbf_s": 60, "mttr_s": 4,
                 "pods": ["pod7"]}]))
        assert excinfo.value.path == "domains[0].pods"

    def test_malformed_hazard_names_the_path(self):
        with pytest.raises(TopologyError) as excinfo:
            TopologySpec.from_dict(spec_dict(domains=[
                {"kind": "rack-power", "mtbf_s": 60, "mttr_s": 4,
                 "hazard": "gamma:3"}]))
        assert excinfo.value.path == "domains[0].hazard"

    def test_unknown_pod_in_maintenance_window(self):
        with pytest.raises(TopologyError) as excinfo:
            TopologySpec.from_dict(spec_dict(maintenance={
                "windows": [{"pod": "pod9", "at_s": 1.0}]}))
        assert excinfo.value.path == "maintenance.windows[0].pod"

    def test_windows_must_be_time_ordered(self):
        with pytest.raises(TopologyError) as excinfo:
            TopologySpec.from_dict(spec_dict(maintenance={
                "windows": [{"pod": "pod0", "at_s": 5.0},
                            {"pod": "pod1", "at_s": 2.0}]}))
        assert excinfo.value.path == "maintenance.windows[1].at_s"

    def test_pod_drained_twice_rejected(self):
        with pytest.raises(TopologyError) as excinfo:
            TopologySpec.from_dict(spec_dict(maintenance={
                "windows": [{"pod": "pod0", "at_s": 1.0},
                            {"pod": "pod0", "at_s": 2.0}]}))
        assert excinfo.value.path == "maintenance.windows[1].pod"

    def test_draining_every_pod_rejected(self):
        with pytest.raises(TopologyError) as excinfo:
            TopologySpec.from_dict(spec_dict(pods=2, maintenance={
                "windows": [{"pod": "pod0", "at_s": 1.0},
                            {"pod": "pod1", "at_s": 2.0}]}))
        assert "last accepting pod" in str(excinfo.value)

    def test_topology_error_is_a_configuration_error(self):
        assert issubclass(TopologyError, ConfigurationError)


class TestTemplates:
    def test_unknown_template(self):
        with pytest.raises(TopologyError) as excinfo:
            template("XXL")
        assert excinfo.value.path == "template"
        assert "XXL" in str(excinfo.value)

    def test_template_overrides_revalidate(self):
        spec = template("S", {"pods": 5})
        assert spec.pods == 5
        with pytest.raises(TopologyError):
            template("S", {"pods": 0})

    def test_every_template_validates(self):
        for name in TEMPLATE_NAMES:
            assert template(name).name == name


class TestLoadSpec:
    def test_template_name(self):
        assert load_spec("M").pods == 3

    def test_mapping_and_spec_passthrough(self):
        spec = load_spec(spec_dict())
        assert load_spec(spec) is spec

    def test_json_file(self, tmp_path):
        path = tmp_path / "topo.json"
        path.write_text(json.dumps(spec_dict()))
        assert load_spec(str(path)).pods == 3

    def test_yaml_file(self, tmp_path):
        yaml = pytest.importorskip("yaml")
        path = tmp_path / "topo.yaml"
        path.write_text(yaml.safe_dump(spec_dict()))
        assert load_spec(str(path)).pods == 3

    def test_unknown_source_rejected(self):
        with pytest.raises(TopologyError) as excinfo:
            load_spec("no-such-template-or-file")
        assert "no template or spec file" in str(excinfo.value)

    def test_checked_in_examples_validate(self):
        from pathlib import Path
        examples = sorted(
            Path("examples/topologies").glob("*.json"))
        assert examples, "example specs missing"
        for path in examples:
            spec = load_spec(str(path))
            canonical = spec.to_dict()
            assert (TopologySpec.from_dict(canonical).to_dict()
                    == canonical), path
