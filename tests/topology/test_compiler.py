"""Compiler: spec → federation + operational surface.

The anchor test proves the compiled M template is bit-identical to the
hand-built three-pod federation — same fingerprint over a full trace —
so migrating the experiments to compiled specs cannot have moved any
number.
"""

from __future__ import annotations

import pytest

from repro.cluster.trace import poisson_trace, replica_group_of
from repro.errors import TopologyError
from repro.faults.domains import pod_network_domains, rack_power_domains
from repro.federation import build_federation
from repro.federation.parallel import federation_fingerprint
from repro.topology import (
    TEMPLATE_NAMES,
    compile_spec,
    template,
    validate_spec,
)


def _serve(federation, trace):
    return federation_fingerprint(federation.serve_trace(trace))


def _domain_facts(domains):
    return sorted(
        (d.name, d.mtbf_s, d.mttr_s, tuple(sorted(map(repr, d.members))))
        for d in domains)


class TestFidelity:
    def test_compiled_m_matches_hand_built_federation(self):
        def trace():
            return poisson_trace(
                40, 5.0, mean_lifetime_s=0.5, migrate_fraction=0.25,
                seed=7, name="topo-identity")

        hand = build_federation(3)
        compiled = compile_spec("M")
        assert (_serve(compiled.federation, trace())
                == _serve(hand, trace()))

    def test_emitted_domains_match_hand_built(self):
        compiled = compile_spec("M")
        hand = build_federation(3)
        expect = _domain_facts(
            rack_power_domains(hand, mtbf_s=60.0, mttr_s=4.0)
            + pod_network_domains(hand, mtbf_s=60.0, mttr_s=4.0))
        got = _domain_facts(compiled.failure_domains())
        assert got == expect

    @pytest.mark.parametrize("name", TEMPLATE_NAMES)
    def test_every_template_compiles(self, name):
        compiled = compile_spec(name)
        assert len(compiled.federation.pods) == compiled.spec.pods
        compiled.close()

    def test_describe_recompile_is_a_fixed_point(self):
        compiled = compile_spec("S")
        again = compile_spec(compiled.describe())
        assert again.describe() == compiled.describe()


class TestOperationalSurface:
    def test_kinds_filter(self):
        compiled = compile_spec("M")
        power = compiled.failure_domains(kinds=("rack-power",))
        assert power and all(d.name.startswith("power.") for d in power)
        net = compiled.failure_domains(kinds=("pod-network",))
        assert net and all(d.name.startswith("net.") for d in net)

    def test_unknown_kind_rejected(self):
        with pytest.raises(TopologyError) as excinfo:
            compile_spec("M").failure_domains(kinds=("cosmic-ray",))
        assert "cosmic-ray" in str(excinfo.value)

    def test_scoped_domains_cover_only_their_pods(self):
        spec = template("M", {"domains": [
            {"kind": "pod-network", "mtbf_s": 60, "mttr_s": 4,
             "pods": ["pod0", "pod2"]}]})
        domains = compile_spec(spec).failure_domains()
        assert sorted(d.name for d in domains) == ["net.pod0", "net.pod2"]

    def test_hazard_from_spec_and_override(self):
        spec = template("M", {"domains": [
            {"kind": "rack-power", "mtbf_s": 120, "mttr_s": 6,
             "hazard": "weibull:120:2.5"}]})
        compiled = compile_spec(spec)
        from_spec = compiled.failure_domains()
        assert all(d.hazard is not None for d in from_spec)
        overridden = compiled.failure_domains(hazard="exponential:50")
        assert all(d.hazard is not None for d in overridden)
        assert {d.hazard.mean_s for d in overridden} == {50.0}

    def test_maintenance_schedule_drives_supervisor(self):
        compiled = compile_spec("M")  # one pod0 window at t=4s
        supervisor = compiled.supervisor()
        reports = compiled.install_maintenance(supervisor)
        compiled.federation.sim.run()
        assert len(reports) == 1
        assert reports[0].pod_id == "pod0"
        assert reports[0].committed

    def test_replica_groups_wire_anti_affinity(self):
        spec = template("M", {"replica_groups": 3})
        compiled = compile_spec(spec)
        assert (compiled.federation.placer.anti_affinity
                is replica_group_of)
        plain = compile_spec("M")
        assert plain.federation.placer.anti_affinity is None


class TestParallelBackend:
    def test_parallel_compile_round_trips(self):
        compiled = compile_spec("S", workers=0)
        try:
            assert compiled.workers == 0
            assert sorted(compiled.federation.handles)
        finally:
            compiled.close()

    def test_operational_surface_needs_serial_backend(self):
        compiled = compile_spec("S", workers=0)
        try:
            with pytest.raises(TopologyError) as excinfo:
                compiled.failure_domains()
            assert excinfo.value.path == "domains"
            with pytest.raises(TopologyError):
                compiled.supervisor()
        finally:
            compiled.close()


class TestValidateSpec:
    def test_valid_passes(self):
        assert validate_spec("M").pods == 3

    def test_invalid_raises_with_path(self):
        with pytest.raises(TopologyError) as excinfo:
            validate_spec({"pods": 0})
        assert excinfo.value.path == "pods"
